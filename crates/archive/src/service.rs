//! [`ArchiveCluster`]: ingest, replication, and failover reads across a
//! set of archive sites.
//!
//! The cluster is the driver's-eye view of the data plane: it owns the
//! replica catalog, applies the placement policy when an artifact is
//! ingested, and pumps the shared event engine until the resulting
//! striped transfers resolve. Reads are served from the nearest replica
//! and **fail over** to the next-nearest when a site's links are faulted
//! — the deterministic analogue of the paper's repository mirroring.

use std::collections::BTreeMap;

use bytes::Bytes;

use neesgrid_gridsim::{FaultPlan, LatencyModel, LinkKey, NetworkError, SimTime, VirtualNetwork};
use neesgrid_repo::VirtualStore;
use neesgrid_telemetry::{Field, Telemetry};

use crate::cas::CasError;
use crate::replica::{PlacementPolicy, ReplicaCatalog};
use crate::stripe::{lane_node, ArchiveSite, StripeConfig, TransferFailure, TransferStatus};

/// Why a cluster operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    /// No archive site with that name is attached.
    UnknownSite(String),
    /// The catalog has no entry for that logical name.
    UnknownLogical(String),
    /// Every replica of the artifact was unreachable or corrupt.
    NoReplicas(String),
    /// A replication transfer failed outright.
    TransferFailed {
        /// Sending site.
        src: String,
        /// Receiving site.
        dst: String,
        /// Terminal failure reported by the transfer engine.
        why: TransferFailure,
    },
    /// The local store rejected the artifact.
    Cas(CasError),
    /// The engine went idle with transfers still unresolved — a protocol
    /// bug, surfaced loudly rather than spun on.
    Stalled,
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::UnknownSite(s) => write!(f, "unknown archive site {s}"),
            ArchiveError::UnknownLogical(l) => write!(f, "unknown logical name {l}"),
            ArchiveError::NoReplicas(l) => write!(f, "no reachable replica of {l}"),
            ArchiveError::TransferFailed { src, dst, why } => {
                write!(f, "transfer {src} -> {dst} failed: {why}")
            }
            ArchiveError::Cas(e) => write!(f, "cas error: {e}"),
            ArchiveError::Stalled => write!(f, "engine idle with transfers unresolved"),
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<CasError> for ArchiveError {
    fn from(e: CasError) -> Self {
        ArchiveError::Cas(e)
    }
}

/// Outcome of [`ArchiveCluster::ingest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Logical name ingested.
    pub logical: String,
    /// Whole-artifact CRC.
    pub digest: u32,
    /// Artifact length.
    pub total_len: u64,
    /// Site that chunked the original bytes.
    pub origin: String,
    /// Sites that now hold a sealed replica (excluding the origin).
    pub replicas: Vec<String>,
    /// Replication pushes that failed terminally, with why.
    pub failed: Vec<(String, TransferFailure)>,
    /// Virtual time the replication fan-out took.
    pub elapsed: SimTime,
}

/// Outcome of [`ArchiveCluster::fetch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchReport {
    /// Replica that ultimately served the read.
    pub served_by: String,
    /// Replicas tried (1 = nearest worked first time).
    pub attempts: u32,
    /// Artifact length.
    pub total_len: u64,
    /// Whole-artifact CRC, verified against the catalog entry.
    pub digest: u32,
}

/// A set of archive sites sharing one virtual network, plus the replica
/// catalog and placement policy that tie them into a coherent archive.
pub struct ArchiveCluster {
    sites: BTreeMap<String, ArchiveSite>,
    catalog: ReplicaCatalog,
    policy: PlacementPolicy,
    config: StripeConfig,
    telemetry: Telemetry,
}

impl ArchiveCluster {
    /// A cluster with no sites yet.
    pub fn new(policy: PlacementPolicy, config: StripeConfig, telemetry: Telemetry) -> Self {
        ArchiveCluster {
            sites: BTreeMap::new(),
            catalog: ReplicaCatalog::new(),
            policy,
            config,
            telemetry,
        }
    }

    /// Attach a new archive site backed by `store`.
    pub fn add_site(
        &mut self,
        net: &VirtualNetwork,
        name: &str,
        store: VirtualStore,
    ) -> Result<(), NetworkError> {
        let site = ArchiveSite::attach(net, name, store, self.config.clone(), &self.telemetry)?;
        self.sites.insert(name.to_string(), site);
        Ok(())
    }

    /// The site named `name`, if attached.
    pub fn site(&self, name: &str) -> Option<&ArchiveSite> {
        self.sites.get(name)
    }

    /// The replica catalog.
    pub fn catalog(&self) -> &ReplicaCatalog {
        &self.catalog
    }

    /// Attached site names, sorted.
    pub fn site_names(&self) -> Vec<String> {
        self.sites.keys().cloned().collect()
    }

    /// Per-site CAS digests — the determinism oracle: two same-seed runs
    /// of the same workload must produce identical maps.
    pub fn store_digests(&self) -> BTreeMap<String, u32> {
        self.sites
            .iter()
            .map(|(name, site)| (name.clone(), site.cas().store_digest()))
            .collect()
    }

    /// Ingest `content` under `logical` at `origin`, then replicate it
    /// according to the placement policy, pumping the engine until every
    /// push resolves. Failed pushes are reported, not fatal — the
    /// artifact is cataloged wherever it landed.
    pub fn ingest(
        &mut self,
        net: &VirtualNetwork,
        origin: &str,
        logical: &str,
        content: &Bytes,
    ) -> Result<IngestReport, ArchiveError> {
        let origin_site = self
            .sites
            .get(origin)
            .ok_or_else(|| ArchiveError::UnknownSite(origin.to_string()))?
            .clone();
        let started = net.clock().now();
        let manifest = origin_site.ingest_local(logical, content, started);
        let candidates = self.site_names();
        let targets = self.policy.place(net, origin, &candidates);
        let pushes: Vec<(String, u64)> = targets
            .iter()
            .map(|dst| (dst.clone(), origin_site.start_push(dst, manifest.clone())))
            .collect();
        self.pump(net, &origin_site, pushes.iter().map(|(_, id)| *id))?;
        let mut replicas = Vec::new();
        let mut failed = Vec::new();
        for (dst, id) in pushes {
            match origin_site.status(id) {
                Some(TransferStatus::Completed(_)) => {
                    self.catalog
                        .record(logical, manifest.digest, manifest.total_len, &dst);
                    replicas.push(dst);
                }
                Some(TransferStatus::Failed(why)) => failed.push((dst, why)),
                _ => return Err(ArchiveError::Stalled),
            }
        }
        self.catalog
            .record(logical, manifest.digest, manifest.total_len, origin);
        let elapsed = net.clock().now() - started;
        self.telemetry.instant(
            net.clock().now().as_nanos(),
            "archive",
            "ingest",
            [
                ("logical", Field::Str(logical.to_string())),
                ("replicas", Field::U64(replicas.len() as u64)),
                ("failed", Field::U64(failed.len() as u64)),
            ],
        );
        Ok(IngestReport {
            logical: logical.to_string(),
            digest: manifest.digest,
            total_len: manifest.total_len,
            origin: origin.to_string(),
            replicas,
            failed,
            elapsed,
        })
    }

    /// Read `logical` at `reader`, pulling it from the nearest replica
    /// first and failing over outward when a replica's links are down.
    /// On success the reader itself becomes a replica (pull-through
    /// caching), which is recorded in the catalog.
    pub fn fetch(
        &mut self,
        net: &VirtualNetwork,
        reader: &str,
        logical: &str,
    ) -> Result<(Bytes, FetchReport), ArchiveError> {
        let reader_site = self
            .sites
            .get(reader)
            .ok_or_else(|| ArchiveError::UnknownSite(reader.to_string()))?
            .clone();
        let entry = self
            .catalog
            .entry(logical)
            .ok_or_else(|| ArchiveError::UnknownLogical(logical.to_string()))?
            .clone();
        let order = PlacementPolicy::read_order(net, reader, &entry.sites);
        for (tried, replica) in order.into_iter().enumerate() {
            let attempts = tried as u32 + 1;
            if replica == reader {
                if let Ok(content) = reader_site.cas().read(logical) {
                    return Ok((
                        content,
                        FetchReport {
                            served_by: replica,
                            attempts,
                            total_len: entry.total_len,
                            digest: entry.digest,
                        },
                    ));
                }
                continue;
            }
            let Some(src_site) = self.sites.get(&replica).cloned() else {
                continue;
            };
            let Some(manifest) = src_site.cas().manifest(logical) else {
                continue;
            };
            let id = src_site.start_push(reader, manifest);
            self.pump(net, &src_site, [id])?;
            match src_site.status(id) {
                Some(TransferStatus::Completed(_)) => {
                    let content = reader_site.cas().read(logical)?;
                    self.catalog
                        .record(logical, entry.digest, entry.total_len, reader);
                    return Ok((
                        content,
                        FetchReport {
                            served_by: replica,
                            attempts,
                            total_len: entry.total_len,
                            digest: entry.digest,
                        },
                    ));
                }
                Some(TransferStatus::Failed(_)) => {
                    self.telemetry.instant(
                        net.clock().now().as_nanos(),
                        "archive",
                        "fetch_failover",
                        [
                            ("logical", Field::Str(logical.to_string())),
                            ("from", Field::Str(replica.clone())),
                        ],
                    );
                    continue;
                }
                _ => return Err(ArchiveError::Stalled),
            }
        }
        Err(ArchiveError::NoReplicas(logical.to_string()))
    }

    /// Run the engine until every listed transfer on `site` is terminal.
    /// Errors with [`ArchiveError::Stalled`] if the engine goes idle
    /// first.
    fn pump(
        &self,
        net: &VirtualNetwork,
        site: &ArchiveSite,
        ids: impl IntoIterator<Item = u64>,
    ) -> Result<(), ArchiveError> {
        let ids: Vec<u64> = ids.into_iter().collect();
        let engine = net.engine();
        loop {
            let unresolved = ids.iter().any(|id| {
                !matches!(
                    site.status(*id),
                    Some(TransferStatus::Completed(_)) | Some(TransferStatus::Failed(_)) | None
                )
            });
            if !unresolved {
                return Ok(());
            }
            if !engine.run_one() {
                return Err(ArchiveError::Stalled);
            }
        }
    }
}

/// Set the latency model for every link `a → b` uses to talk to `b`'s
/// archive site: the control link plus all `lanes` stripe links.
pub fn set_site_link(net: &VirtualNetwork, a: &str, b: &str, lanes: u32, model: LatencyModel) {
    net.set_link_latency(LinkKey::new(a, b), model.clone());
    for q in 0..lanes {
        net.set_link_latency(
            LinkKey::new(lane_node(a, q), lane_node(b, q)),
            model.clone(),
        );
    }
}

/// Partition every archive link between `a` and `b` (both directions,
/// control plus all stripes) from message index 0 onward — the "site
/// dropped off the WAN" fault used by the failover tests.
pub fn isolate_site_pair(plan: &mut FaultPlan, a: &str, b: &str, lanes: u32) {
    use neesgrid_gridsim::fault::PartitionWindow;
    let mut cut = |src: String, dst: String| {
        plan.partition(PartitionWindow {
            link: LinkKey::new(src, dst),
            from_index: 0,
            to_index: u64::MAX,
        });
    };
    cut(a.to_string(), b.to_string());
    cut(b.to_string(), a.to_string());
    for q in 0..lanes {
        cut(lane_node(a, q), lane_node(b, q));
        cut(lane_node(b, q), lane_node(a, q));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neesgrid_gridsim::NetworkConfig;

    fn cluster(net: &VirtualNetwork, names: &[&str], policy: PlacementPolicy) -> ArchiveCluster {
        let mut c = ArchiveCluster::new(
            policy,
            StripeConfig {
                lanes: 2,
                chunk_size: 1024,
                ..StripeConfig::default()
            },
            Telemetry::disabled(),
        );
        for n in names {
            c.add_site(net, n, VirtualStore::new())
                .expect("site attaches");
        }
        c
    }

    fn net(seed: u64) -> VirtualNetwork {
        VirtualNetwork::new(NetworkConfig {
            default_latency: LatencyModel::Fixed(SimTime::from_millis(10)),
            seed,
        })
    }

    fn payload(n: usize) -> Bytes {
        // Mixed so chunk-aligned blocks are all distinct (see cas tests).
        Bytes::from(
            (0..n)
                .map(|i| ((i as u32).wrapping_mul(2_654_435_761) >> 24) as u8)
                .collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn ingest_replicates_to_k_sites() {
        let net = net(1);
        let mut c = cluster(
            &net,
            &["a", "b", "c", "d"],
            PlacementPolicy::MirrorK { k: 2 },
        );
        let content = payload(5_000);
        let report = c.ingest(&net, "a", "/runs/x", &content).expect("ingest");
        assert_eq!(report.replicas, vec!["b".to_string(), "c".to_string()]);
        assert!(report.failed.is_empty());
        assert_eq!(c.catalog().sites("/runs/x"), vec!["a", "b", "c"]);
        assert_eq!(c.site("b").unwrap().cas().read("/runs/x").unwrap(), content);
        assert_eq!(c.site("c").unwrap().cas().read("/runs/x").unwrap(), content);
        assert!(c.site("d").unwrap().cas().read("/runs/x").is_err());
    }

    #[test]
    fn fetch_serves_local_replica_without_traffic() {
        let net = net(2);
        let mut c = cluster(&net, &["a", "b"], PlacementPolicy::MirrorK { k: 1 });
        let content = payload(2_000);
        c.ingest(&net, "a", "/runs/x", &content).expect("ingest");
        let (bytes, report) = c.fetch(&net, "a", "/runs/x").expect("fetch");
        assert_eq!(bytes, content);
        assert_eq!(report.served_by, "a");
        assert_eq!(report.attempts, 1);
    }

    #[test]
    fn fetch_fails_over_to_farther_replica_when_nearest_is_cut() {
        let net = net(3);
        // k = 1 keeps the reader replica-free: name order places on "b"
        // only, so the read must come over the wire.
        let mut c = cluster(
            &net,
            &["a", "b", "reader"],
            PlacementPolicy::MirrorK { k: 1 },
        );
        // a is close to the reader, b far — a would be tried first.
        set_site_link(
            &net,
            "a",
            "reader",
            2,
            LatencyModel::Fixed(SimTime::from_millis(5)),
        );
        set_site_link(
            &net,
            "b",
            "reader",
            2,
            LatencyModel::Fixed(SimTime::from_millis(60)),
        );
        let content = payload(4_000);
        c.ingest(&net, "a", "/runs/x", &content).expect("ingest");
        // Now cut the reader off from a entirely.
        let mut plan = FaultPlan::reliable();
        isolate_site_pair(&mut plan, "a", "reader", 2);
        net.set_fault_plan(plan);
        let (bytes, report) = c.fetch(&net, "reader", "/runs/x").expect("fetch");
        assert_eq!(bytes, content);
        assert_eq!(report.served_by, "b");
        assert!(report.attempts >= 2);
        // Pull-through: the reader is now a replica itself.
        assert!(c.catalog().sites("/runs/x").contains(&"reader".to_string()));
    }

    #[test]
    fn fetch_unknown_logical_errors() {
        let net = net(4);
        let mut c = cluster(&net, &["a"], PlacementPolicy::MirrorK { k: 0 });
        assert_eq!(
            c.fetch(&net, "a", "/nope"),
            Err(ArchiveError::UnknownLogical("/nope".to_string()))
        );
    }

    #[test]
    fn same_seed_cluster_runs_are_bit_identical() {
        let run = |seed: u64| {
            let net = net(seed);
            let mut c = cluster(&net, &["a", "b", "c"], PlacementPolicy::MirrorK { k: 2 });
            c.ingest(&net, "a", "/runs/x", &payload(6_000))
                .expect("ingest");
            c.ingest(&net, "b", "/runs/y", &payload(3_000))
                .expect("ingest");
            (c.store_digests(), net.clock().now())
        };
        assert_eq!(run(9), run(9));
    }
}
