//! Replica placement and the logical-name catalog.
//!
//! The NEESgrid repository kept each experiment's artifacts at the central
//! archive plus mirrors at participating sites. Here placement is a pure
//! function of the topology: policies rank candidate sites either by name
//! (mirror-k) or by the minimum latency of the virtual link from the
//! origin (nearest-by-latency), so the same topology always yields the
//! same replica set — placement is part of the deterministic replay.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use neesgrid_gridsim::{LinkKey, SimTime, VirtualNetwork};

/// How many replicas of an artifact to keep, and where.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Mirror to the first `k` candidate sites in name order. Predictable
    /// and topology-independent; the paper-era default of "central
    /// repository plus fixed mirrors".
    MirrorK {
        /// Replica count (excluding the origin).
        k: usize,
    },
    /// Mirror to the `k` candidates with the lowest minimum link latency
    /// from the origin, ties broken by name.
    NearestByLatency {
        /// Replica count (excluding the origin).
        k: usize,
    },
}

impl PlacementPolicy {
    /// Choose replica sites for an artifact ingested at `origin`.
    /// `candidates` is the universe of archive sites (the origin is
    /// excluded automatically). Deterministic for a given topology.
    pub fn place(&self, net: &VirtualNetwork, origin: &str, candidates: &[String]) -> Vec<String> {
        let mut pool: Vec<&String> = candidates.iter().filter(|c| *c != origin).collect();
        pool.sort();
        match self {
            PlacementPolicy::MirrorK { k } => pool.into_iter().take(*k).cloned().collect(),
            PlacementPolicy::NearestByLatency { k } => {
                let mut ranked: Vec<(SimTime, &String)> = pool
                    .into_iter()
                    .map(|c| (link_floor(net, origin, c), c))
                    .collect();
                ranked.sort();
                ranked
                    .into_iter()
                    .take(*k)
                    .map(|(_, c)| c.clone())
                    .collect()
            }
        }
    }

    /// Rank `replicas` for a reader at `site`, nearest first, ties broken
    /// by name. This is the read path's failover order.
    pub fn read_order(
        net: &VirtualNetwork,
        site: &str,
        replicas: &BTreeSet<String>,
    ) -> Vec<String> {
        let mut ranked: Vec<(SimTime, &String)> = replicas
            .iter()
            .map(|r| {
                let cost = if r == site {
                    SimTime::ZERO
                } else {
                    link_floor(net, site, r)
                };
                (cost, r)
            })
            .collect();
        ranked.sort();
        ranked.into_iter().map(|(_, r)| r.clone()).collect()
    }
}

/// The best-case (minimum) latency of the link `a → b`.
fn link_floor(net: &VirtualNetwork, a: &str, b: &str) -> SimTime {
    net.link_latency(&LinkKey::new(a, b)).min_latency()
}

/// One cataloged artifact: where its replicas live and what they must
/// hash to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaEntry {
    /// Logical name (e.g. `/runs/most-42/nsds.jsonl`).
    pub logical: String,
    /// Whole-artifact CRC from the manifest; every replica must agree.
    pub digest: u32,
    /// Artifact length in bytes.
    pub total_len: u64,
    /// Sites holding a sealed replica.
    pub sites: BTreeSet<String>,
}

/// Catalog mapping logical names to replica locations. Plain data — the
/// cluster layer in [`crate::service`] keeps it consistent with the
/// actual site stores.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaCatalog {
    entries: BTreeMap<String, ReplicaEntry>,
}

impl ReplicaCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `site` holds a sealed replica of `logical`.
    pub fn record(&mut self, logical: &str, digest: u32, total_len: u64, site: &str) {
        let entry = self
            .entries
            .entry(logical.to_string())
            .or_insert_with(|| ReplicaEntry {
                logical: logical.to_string(),
                digest,
                total_len,
                sites: BTreeSet::new(),
            });
        entry.sites.insert(site.to_string());
    }

    /// Forget `site`'s replica of `logical` (e.g. after a failed read).
    pub fn evict(&mut self, logical: &str, site: &str) {
        if let Some(entry) = self.entries.get_mut(logical) {
            entry.sites.remove(site);
        }
    }

    /// The catalog entry for `logical`.
    pub fn entry(&self, logical: &str) -> Option<&ReplicaEntry> {
        self.entries.get(logical)
    }

    /// Sites holding `logical`, in name order.
    pub fn sites(&self, logical: &str) -> Vec<String> {
        self.entries
            .get(logical)
            .map(|e| e.sites.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// All cataloged logical names, sorted.
    pub fn logicals(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Number of cataloged artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cataloged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neesgrid_gridsim::{LatencyModel, NetworkConfig};

    fn net() -> VirtualNetwork {
        VirtualNetwork::new(NetworkConfig {
            default_latency: LatencyModel::Fixed(SimTime::from_millis(30)),
            seed: 1,
        })
    }

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn mirror_k_is_name_ordered_and_skips_origin() {
        let net = net();
        let policy = PlacementPolicy::MirrorK { k: 2 };
        let picked = policy.place(&net, "ncsa", &names(&["uiuc", "ncsa", "boulder"]));
        assert_eq!(picked, names(&["boulder", "uiuc"]));
    }

    #[test]
    fn nearest_by_latency_prefers_fast_links() {
        let net = net();
        // boulder is 5ms away, uiuc 30ms (default), anchorage 90ms.
        net.set_link_latency(
            LinkKey::new("ncsa", "boulder"),
            LatencyModel::Fixed(SimTime::from_millis(5)),
        );
        net.set_link_latency(
            LinkKey::new("ncsa", "anchorage"),
            LatencyModel::Fixed(SimTime::from_millis(90)),
        );
        let policy = PlacementPolicy::NearestByLatency { k: 2 };
        let picked = policy.place(&net, "ncsa", &names(&["anchorage", "uiuc", "boulder"]));
        assert_eq!(picked, names(&["boulder", "uiuc"]));
    }

    #[test]
    fn nearest_ties_break_by_name() {
        let net = net();
        let policy = PlacementPolicy::NearestByLatency { k: 2 };
        let picked = policy.place(&net, "x", &names(&["c", "a", "b"]));
        assert_eq!(picked, names(&["a", "b"]));
    }

    #[test]
    fn read_order_puts_local_replica_first() {
        let net = net();
        net.set_link_latency(
            LinkKey::new("reader", "far"),
            LatencyModel::Fixed(SimTime::from_millis(80)),
        );
        let mut replicas = BTreeSet::new();
        replicas.insert("far".to_string());
        replicas.insert("reader".to_string());
        replicas.insert("near".to_string());
        let order = PlacementPolicy::read_order(&net, "reader", &replicas);
        assert_eq!(order, names(&["reader", "near", "far"]));
    }

    #[test]
    fn catalog_records_and_evicts() {
        let mut cat = ReplicaCatalog::new();
        cat.record("/runs/x", 0xdead_beef, 100, "a");
        cat.record("/runs/x", 0xdead_beef, 100, "b");
        assert_eq!(cat.sites("/runs/x"), names(&["a", "b"]));
        cat.evict("/runs/x", "a");
        assert_eq!(cat.sites("/runs/x"), names(&["b"]));
        assert_eq!(cat.entry("/runs/x").map(|e| e.digest), Some(0xdead_beef));
        assert_eq!(cat.logicals(), names(&["/runs/x"]));
        assert_eq!(cat.len(), 1);
        assert!(!cat.is_empty());
    }
}
