//! Service faults.
//!
//! The OGSI equivalent of a SOAP fault: a structured, serializable error a
//! service returns to its caller. The `retryable` flag drives client-side
//! fault tolerance — NTCP's "transient problems need not cause the
//! experiment to terminate" requirement needs the server to say which
//! failures are transient.

use serde::{Deserialize, Serialize};

/// A structured error returned by a grid service operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceFault {
    /// Machine-readable code, e.g. `"PolicyViolation"`, `"NoSuchTransaction"`.
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// Whether the caller may retry the identical request.
    pub retryable: bool,
}

impl ServiceFault {
    /// A non-retryable fault.
    pub fn permanent(code: impl Into<String>, message: impl Into<String>) -> Self {
        ServiceFault {
            code: code.into(),
            message: message.into(),
            retryable: false,
        }
    }

    /// A retryable (transient) fault.
    pub fn transient(code: impl Into<String>, message: impl Into<String>) -> Self {
        ServiceFault {
            code: code.into(),
            message: message.into(),
            retryable: true,
        }
    }

    /// The standard fault for an unknown operation name.
    pub fn no_such_operation(op: &str) -> Self {
        ServiceFault::permanent("NoSuchOperation", format!("unknown operation '{op}'"))
    }

    /// The standard fault for an unauthenticated or unauthorized caller.
    pub fn access_denied(detail: impl Into<String>) -> Self {
        ServiceFault::permanent("AccessDenied", detail)
    }
}

impl std::fmt::Display for ServiceFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for ServiceFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_retryability() {
        assert!(!ServiceFault::permanent("X", "y").retryable);
        assert!(ServiceFault::transient("X", "y").retryable);
    }

    #[test]
    fn display_format() {
        let f = ServiceFault::permanent("PolicyViolation", "force too large");
        assert_eq!(f.to_string(), "[PolicyViolation] force too large");
    }

    #[test]
    fn standard_faults() {
        assert_eq!(
            ServiceFault::no_such_operation("zap").code,
            "NoSuchOperation"
        );
        assert_eq!(ServiceFault::access_denied("nope").code, "AccessDenied");
    }

    #[test]
    fn serde_roundtrip() {
        let f = ServiceFault::transient("Busy", "try later");
        let s = serde_json::to_string(&f).unwrap();
        assert_eq!(serde_json::from_str::<ServiceFault>(&s).unwrap(), f);
    }
}
