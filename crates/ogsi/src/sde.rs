//! Service data elements (SDEs).
//!
//! OGSI's state-exposure mechanism: a service publishes named, timestamped
//! JSON values that any authorized party can inspect or subscribe to. The
//! paper leans on two patterns this module implements directly:
//!
//! * *one SDE per NTCP transaction* — name, state, requested actions,
//!   timeouts, results, and per-state-change timestamps (§2.1);
//! * *a "most recently changed" SDE* used "to monitor the behavior of the
//!   server as a whole".

use std::collections::BTreeMap;

use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};
use serde_json::Value;

use neesgrid_gridsim::SimTime;

/// One named piece of exposed service state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceDataElement {
    /// Element name, unique within a service.
    pub name: String,
    /// Current value.
    pub value: Value,
    /// When the element was created.
    pub created_at: SimTime,
    /// When the element last changed.
    pub modified_at: SimTime,
    /// Monotonic per-element version, bumped on every set.
    pub version: u64,
}

/// A change event delivered to subscribers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdeChange {
    /// Name of the element that changed.
    pub name: String,
    /// The new value.
    pub value: Value,
    /// Time of the change.
    pub at: SimTime,
    /// New version of the element.
    pub version: u64,
}

/// The service-data set of one grid service.
///
/// Not internally synchronized: the owning service (or its container thread)
/// is the single writer; remote reads arrive via service operations on the
/// same thread.
#[derive(Debug, Default)]
pub struct ServiceData {
    elements: BTreeMap<String, ServiceDataElement>,
    subscribers: Vec<(String, Sender<SdeChange>)>,
    most_recently_changed: Option<String>,
}

impl ServiceData {
    /// An empty service-data set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create or update an element, notifying subscribers.
    pub fn set(&mut self, name: impl Into<String>, value: Value, now: SimTime) {
        let name = name.into();
        let version;
        match self.elements.get_mut(&name) {
            Some(el) => {
                el.value = value.clone();
                el.modified_at = now;
                el.version += 1;
                version = el.version;
            }
            None => {
                self.elements.insert(
                    name.clone(),
                    ServiceDataElement {
                        name: name.clone(),
                        value: value.clone(),
                        created_at: now,
                        modified_at: now,
                        version: 1,
                    },
                );
                version = 1;
            }
        }
        self.most_recently_changed = Some(name.clone());
        self.subscribers.retain(|(pattern, tx)| {
            if name_matches(pattern, &name) {
                tx.send(SdeChange {
                    name: name.clone(),
                    value: value.clone(),
                    at: now,
                    version,
                })
                .is_ok()
            } else {
                true
            }
        });
    }

    /// Inspect one element.
    pub fn get(&self, name: &str) -> Option<&ServiceDataElement> {
        self.elements.get(name)
    }

    /// Remove an element (e.g. a destroyed transaction).
    pub fn remove(&mut self, name: &str) -> Option<ServiceDataElement> {
        self.elements.remove(name)
    }

    /// Names of all elements matching a pattern (`*` suffix wildcard).
    pub fn query(&self, pattern: &str) -> Vec<&ServiceDataElement> {
        let mut out: Vec<&ServiceDataElement> = self
            .elements
            .values()
            .filter(|el| name_matches(pattern, &el.name))
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// The element changed most recently, if any — the whole-server
    /// monitoring hook from §2.1.
    pub fn most_recently_changed(&self) -> Option<&ServiceDataElement> {
        self.most_recently_changed
            .as_deref()
            .and_then(|n| self.elements.get(n))
    }

    /// Subscribe to changes of elements matching `pattern`
    /// (exact name, or prefix ending in `*`).
    pub fn subscribe(&mut self, pattern: impl Into<String>) -> Receiver<SdeChange> {
        let (tx, rx) = unbounded();
        self.subscribers.push((pattern.into(), tx));
        rx
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

/// `pattern` matches `name` if equal, or if pattern ends in `*` and the rest
/// is a prefix of `name`.
fn name_matches(pattern: &str, name: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => pattern == name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn set_then_get() {
        let mut sd = ServiceData::new();
        sd.set(
            "transaction/t1",
            json!({"state": "Proposed"}),
            SimTime::from_secs(1),
        );
        let el = sd.get("transaction/t1").unwrap();
        assert_eq!(el.value["state"], "Proposed");
        assert_eq!(el.version, 1);
        assert_eq!(el.created_at, SimTime::from_secs(1));
    }

    #[test]
    fn update_bumps_version_and_modified() {
        let mut sd = ServiceData::new();
        sd.set("x", json!(1), SimTime::from_secs(1));
        sd.set("x", json!(2), SimTime::from_secs(5));
        let el = sd.get("x").unwrap();
        assert_eq!(el.version, 2);
        assert_eq!(el.created_at, SimTime::from_secs(1));
        assert_eq!(el.modified_at, SimTime::from_secs(5));
    }

    #[test]
    fn most_recently_changed_tracks_latest() {
        let mut sd = ServiceData::new();
        sd.set("a", json!(1), SimTime::from_secs(1));
        sd.set("b", json!(2), SimTime::from_secs(2));
        assert_eq!(sd.most_recently_changed().unwrap().name, "b");
        sd.set("a", json!(3), SimTime::from_secs(3));
        assert_eq!(sd.most_recently_changed().unwrap().name, "a");
    }

    #[test]
    fn query_with_wildcard() {
        let mut sd = ServiceData::new();
        sd.set("transaction/t1", json!(1), SimTime::ZERO);
        sd.set("transaction/t2", json!(2), SimTime::ZERO);
        sd.set("serverInfo", json!(3), SimTime::ZERO);
        let names: Vec<&str> = sd
            .query("transaction/*")
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(names, vec!["transaction/t1", "transaction/t2"]);
        assert_eq!(sd.query("*").len(), 3);
        assert_eq!(sd.query("serverInfo").len(), 1);
        assert_eq!(sd.query("nope").len(), 0);
    }

    #[test]
    fn subscription_receives_matching_changes() {
        let mut sd = ServiceData::new();
        let rx = sd.subscribe("transaction/*");
        sd.set(
            "transaction/t1",
            json!({"state": "Executing"}),
            SimTime::from_secs(2),
        );
        sd.set("other", json!(0), SimTime::from_secs(3));
        let ev = rx.try_recv().unwrap();
        assert_eq!(ev.name, "transaction/t1");
        assert_eq!(ev.version, 1);
        assert!(rx.try_recv().is_err(), "non-matching change not delivered");
    }

    #[test]
    fn dropped_subscriber_is_pruned() {
        let mut sd = ServiceData::new();
        let rx = sd.subscribe("*");
        drop(rx);
        // First set after drop prunes the dead subscriber.
        sd.set("a", json!(1), SimTime::ZERO);
        sd.set("a", json!(2), SimTime::ZERO);
        assert_eq!(sd.get("a").unwrap().version, 2);
    }

    #[test]
    fn remove_deletes_element() {
        let mut sd = ServiceData::new();
        sd.set("x", json!(1), SimTime::ZERO);
        assert!(sd.remove("x").is_some());
        assert!(sd.get("x").is_none());
        assert!(sd.is_empty());
    }
}
