//! # neesgrid-ogsi — OGSI-style grid-service hosting
//!
//! NEESgrid services are "OGSI compliant Grid Services" (paper §2.1) built
//! on the Globus Toolkit 3 container. The OGSI mechanisms the paper calls
//! out — and which this crate provides — are:
//!
//! * **Service data elements** ([`sde::ServiceData`]): named, timestamped,
//!   queryable state fragments. NTCP exposes one SDE per transaction plus a
//!   "most recently changed" SDE for whole-server monitoring.
//! * **Soft-state lifetime management** ([`lifetime::LifetimeManager`]):
//!   leases that expire unless refreshed, so crashed clients can't pin
//!   server state forever.
//! * **Inspection & notification** ([`sde::ServiceData::subscribe`]):
//!   remote observers watch SDE changes without polling.
//! * A **hosting container** ([`container::ServiceContainer`]) that owns a
//!   network endpoint, authenticates callers against established GSI
//!   security contexts, and dispatches operations to registered services.
//! * A typed **RPC layer** ([`rpc::RpcMux`]) with correlation-id
//!   multiplexing, timeout/retry, and distinct surfacing of *timeout*
//!   versus *link reset* — the two failure flavours whose different
//!   handling decided MOST's fate (§3.4).
//! * A reusable [`dedup::DedupCache`] giving services at-most-once
//!   execution under client retry.

pub mod container;
pub mod dedup;
pub mod fault;
pub mod lifetime;
pub mod rpc;
pub mod sde;
pub mod service;

pub use container::{AttachedContainer, ContainerHandle, ServiceContainer};
pub use dedup::DedupCache;
pub use fault::ServiceFault;
pub use lifetime::{Lease, LifetimeManager};
pub use rpc::{
    wait_all, RetryPolicy, RpcClient, RpcCompletion, RpcError, RpcMux, RpcReply, RpcRequest,
    RpcResponse,
};
pub use sde::{SdeChange, ServiceData, ServiceDataElement};
pub use service::{CallContext, GridService};
