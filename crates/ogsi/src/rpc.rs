//! RPC over the virtual grid network.
//!
//! A thin request/reply layer between endpoints: correlation-id
//! multiplexing, per-attempt timeouts, configurable retransmission, and
//! explicit surfacing of the three failure flavours a caller can observe —
//! **timeout** (message or reply silently lost), **link reset** (immediate
//! connection error), and **service fault** (the server answered with an
//! error). NTCP's at-most-once guarantee composes from this layer's stable
//! `request_id` across retransmissions plus the server-side
//! [`crate::dedup::DedupCache`].
//!
//! Virtual time: the mux advances the shared clock to each reply's
//! `delivered_at`, so end-to-end virtual round-trip times accumulate
//! without any real sleeping (bench `sec50_realtime_sweep` relies on this).

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use serde_json::Value;

use neesgrid_gridsim::{ControlNotice, Endpoint, Envelope, MessageKind, NodeId, SimTime};
use neesgrid_gsi::DistinguishedName;

use crate::fault::ServiceFault;

/// A serialized service request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpcRequest {
    /// Client-unique id, *stable across retransmissions* — the at-most-once
    /// key.
    pub request_id: u64,
    /// The authenticated caller (end-entity DN).
    pub caller: DistinguishedName,
    /// Operation name, e.g. `"propose"`.
    pub operation: String,
    /// Operation arguments.
    pub body: Value,
}

/// Outcome carried inside an [`RpcResponse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RpcOutcome {
    /// Success with a result document.
    Ok(Value),
    /// Failure with a structured fault.
    Fault(ServiceFault),
}

/// A serialized service response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpcResponse {
    /// Echoes the request id.
    pub request_id: u64,
    /// Result or fault.
    pub outcome: RpcOutcome,
}

/// Client-observed RPC failures.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcError {
    /// No reply within the per-attempt deadline, after all attempts.
    Timeout {
        /// How many attempts were made.
        attempts: u32,
    },
    /// The network reported a connection reset.
    LinkReset,
    /// The destination node does not exist.
    NoRoute,
    /// The service returned a fault.
    Fault(ServiceFault),
    /// The local mux has shut down.
    MuxClosed,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Timeout { attempts } => write!(f, "timed out after {attempts} attempt(s)"),
            RpcError::LinkReset => write!(f, "link reset"),
            RpcError::NoRoute => write!(f, "no route to destination"),
            RpcError::Fault(fault) => write!(f, "service fault: {fault}"),
            RpcError::MuxClosed => write!(f, "rpc mux closed"),
        }
    }
}

impl std::error::Error for RpcError {}

/// Retransmission policy for one logical call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries).
    pub max_attempts: u32,
    /// Retry after a silent timeout.
    pub retry_on_timeout: bool,
    /// Retry after an immediate link reset.
    pub retry_on_reset: bool,
}

impl RetryPolicy {
    /// One attempt, no retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            retry_on_timeout: false,
            retry_on_reset: false,
        }
    }

    /// Retry all transient failures up to `max_attempts` total attempts.
    pub fn transient(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            retry_on_timeout: true,
            retry_on_reset: true,
        }
    }

    /// Retry timeouts only — the incomplete policy the MOST coordinator
    /// shipped with (§3.4): a final link reset is fatal under this policy.
    pub fn timeouts_only(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            retry_on_timeout: true,
            retry_on_reset: false,
        }
    }
}

/// A successful reply plus its observed virtual round-trip time.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcReply {
    /// The service's result document.
    pub value: Value,
    /// Virtual time from first send to reply delivery.
    pub virtual_rtt: SimTime,
    /// Attempts actually used.
    pub attempts: u32,
}

enum Routed {
    Reply(Envelope),
    Notice(ControlNotice),
}

/// Correlation-id demultiplexer over one endpoint.
///
/// One mux serves any number of concurrent callers (the coordinator fans
/// proposals out to all sites in parallel through a single mux). Push-style
/// (one-way) traffic for a named local service can be claimed with
/// [`RpcMux::register_sink`].
pub struct RpcMux {
    endpoint: Endpoint,
    pending: Arc<Mutex<HashMap<u64, Sender<Routed>>>>,
    sinks: Arc<Mutex<HashMap<String, Sender<Envelope>>>>,
    reader: Option<JoinHandle<()>>,
}

impl RpcMux {
    /// Wrap an endpoint and start the reader thread.
    pub fn new(endpoint: Endpoint) -> Arc<Self> {
        let pending: Arc<Mutex<HashMap<u64, Sender<Routed>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let sinks: Arc<Mutex<HashMap<String, Sender<Envelope>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let reader_endpoint = endpoint.clone();
        let reader_pending = Arc::clone(&pending);
        let reader_sinks = Arc::clone(&sinks);
        let clock = Arc::clone(endpoint.clock());
        let reader = std::thread::Builder::new()
            .name(format!("rpc-mux-{}", endpoint.id()))
            .spawn(move || {
                while let Some(env) = reader_endpoint.recv() {
                    match env.kind {
                        MessageKind::Reply => {
                            clock.advance_to(env.delivered_at());
                            let tx = reader_pending.lock().get(&env.correlation_id).cloned();
                            if let Some(tx) = tx {
                                let _ = tx.send(Routed::Reply(env));
                            }
                        }
                        MessageKind::Control => {
                            if let Some(notice) = ControlNotice::from_bytes(&env.payload) {
                                let tx =
                                    reader_pending.lock().get(&notice.correlation_id()).cloned();
                                if let Some(tx) = tx {
                                    let _ = tx.send(Routed::Notice(notice));
                                }
                            }
                        }
                        MessageKind::Request | MessageKind::OneWay => {
                            clock.advance_to(env.delivered_at());
                            let tx = reader_sinks.lock().get(&env.service).cloned();
                            if let Some(tx) = tx {
                                let _ = tx.send(env);
                            }
                        }
                    }
                }
            })
            .expect("spawn rpc mux reader");
        Arc::new(RpcMux {
            endpoint,
            pending,
            sinks,
            reader: Some(reader),
        })
    }

    /// The underlying endpoint's node id.
    pub fn node(&self) -> &NodeId {
        self.endpoint.id()
    }

    /// The endpoint's correlation watermark (see
    /// [`Endpoint::correlation_watermark`]); recorded in checkpoints.
    pub fn correlation_watermark(&self) -> u64 {
        self.endpoint.correlation_watermark()
    }

    /// Fast-forward the endpoint's correlation counter past a restored
    /// checkpoint watermark (see [`Endpoint::advance_correlation_to`]).
    pub fn advance_correlation_to(&self, watermark: u64) {
        self.endpoint.advance_correlation_to(watermark);
    }

    /// Claim incoming one-way/request traffic addressed to local `service`.
    pub fn register_sink(&self, service: impl Into<String>) -> Receiver<Envelope> {
        let (tx, rx) = unbounded();
        self.sinks.lock().insert(service.into(), tx);
        rx
    }

    /// Fire-and-forget send.
    pub fn send_oneway(&self, dst: NodeId, service: &str, body: &Value) {
        let payload = Bytes::from(serde_json::to_vec(body).expect("serialize oneway body"));
        let corr = self.endpoint.next_correlation();
        self.endpoint
            .send(dst, service, MessageKind::OneWay, corr, payload);
    }

    /// Issue a request with retransmission per `policy`.
    ///
    /// (The argument list mirrors the wire fields; a params struct would
    /// just restate them.)
    ///
    /// The same `request_id` (also used as the correlation id) is reused on
    /// every attempt so the server's dedup cache can guarantee at-most-once
    /// execution.
    #[allow(clippy::too_many_arguments)]
    pub fn call(
        &self,
        dst: &NodeId,
        service: &str,
        caller: &DistinguishedName,
        operation: &str,
        body: Value,
        attempt_timeout: Duration,
        policy: RetryPolicy,
    ) -> Result<RpcReply, RpcError> {
        let request_id = self.endpoint.next_correlation();
        let request = RpcRequest {
            request_id,
            caller: caller.clone(),
            operation: operation.to_string(),
            body,
        };
        let payload = Bytes::from(serde_json::to_vec(&request).expect("serialize request"));
        let (tx, rx) = bounded::<Routed>(4);
        self.pending.lock().insert(request_id, tx);
        let first_send = self.endpoint.clock().now();
        let result = self.call_inner(
            dst,
            service,
            request_id,
            &payload,
            attempt_timeout,
            policy,
            &rx,
            first_send,
        );
        self.pending.lock().remove(&request_id);
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn call_inner(
        &self,
        dst: &NodeId,
        service: &str,
        request_id: u64,
        payload: &Bytes,
        attempt_timeout: Duration,
        policy: RetryPolicy,
        rx: &Receiver<Routed>,
        first_send: SimTime,
    ) -> Result<RpcReply, RpcError> {
        let mut attempts = 0;
        loop {
            attempts += 1;
            self.endpoint.send(
                dst.clone(),
                service,
                MessageKind::Request,
                request_id,
                payload.clone(),
            );
            // Model retransmission back-off in virtual time: each retry after
            // the first charges one attempt-timeout of virtual waiting.
            if attempts > 1 {
                self.endpoint
                    .clock()
                    .advance(SimTime::from_secs_f64(attempt_timeout.as_secs_f64()));
            }
            // The router reports losses deterministically (Dropped/LinkReset/
            // NoRoute notices), so the real-time wait is only a long-stop
            // fallback for a wedged peer — generous enough that scheduler
            // load cannot manufacture a spurious retransmission.
            let real_deadline = attempt_timeout.max(Duration::from_secs(2));
            match rx.recv_timeout(real_deadline) {
                Ok(Routed::Reply(env)) => {
                    let response: RpcResponse =
                        serde_json::from_slice(&env.payload).map_err(|_| {
                            RpcError::Fault(ServiceFault::permanent(
                                "BadResponse",
                                "undecodable response payload",
                            ))
                        })?;
                    return match response.outcome {
                        RpcOutcome::Ok(value) => Ok(RpcReply {
                            value,
                            virtual_rtt: env.delivered_at().saturating_sub(first_send),
                            attempts,
                        }),
                        RpcOutcome::Fault(fault) => Err(RpcError::Fault(fault)),
                    };
                }
                Ok(Routed::Notice(ControlNotice::LinkReset { .. })) => {
                    if policy.retry_on_reset && attempts < policy.max_attempts {
                        continue;
                    }
                    return Err(RpcError::LinkReset);
                }
                Ok(Routed::Notice(ControlNotice::NoRoute { .. })) => {
                    return Err(RpcError::NoRoute);
                }
                // A silent loss, surfaced deterministically: semantically
                // this *is* the attempt timeout (the caller waited out its
                // deadline), so it follows the timeout retry policy and
                // error shape exactly.
                Ok(Routed::Notice(ControlNotice::Dropped { .. })) => {
                    if policy.retry_on_timeout && attempts < policy.max_attempts {
                        continue;
                    }
                    return Err(RpcError::Timeout { attempts });
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if policy.retry_on_timeout && attempts < policy.max_attempts {
                        continue;
                    }
                    return Err(RpcError::Timeout { attempts });
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(RpcError::MuxClosed);
                }
            }
        }
    }
}

impl Drop for RpcMux {
    fn drop(&mut self) {
        // The reader thread exits when the endpoint's network shuts down;
        // detach rather than join to avoid ordering constraints.
        if let Some(h) = self.reader.take() {
            drop(h);
        }
    }
}

/// A client bound to one remote service.
#[derive(Clone)]
pub struct RpcClient {
    mux: Arc<RpcMux>,
    dst: NodeId,
    service: String,
    caller: DistinguishedName,
    /// Per-attempt real-time deadline (only reached when messages are lost).
    pub attempt_timeout: Duration,
    /// Default retry policy.
    pub policy: RetryPolicy,
}

impl RpcClient {
    /// Bind a client to `service` on node `dst`, calling as `caller`.
    pub fn new(
        mux: Arc<RpcMux>,
        dst: NodeId,
        service: impl Into<String>,
        caller: DistinguishedName,
    ) -> Self {
        RpcClient {
            mux,
            dst,
            service: service.into(),
            caller,
            attempt_timeout: Duration::from_millis(100),
            policy: RetryPolicy::transient(4),
        }
    }

    /// Override the retry policy (builder style).
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Override the per-attempt timeout (builder style).
    pub fn with_attempt_timeout(mut self, t: Duration) -> Self {
        self.attempt_timeout = t;
        self
    }

    /// The remote node this client talks to.
    pub fn destination(&self) -> &NodeId {
        &self.dst
    }

    /// The caller identity requests are issued under.
    pub fn caller(&self) -> &DistinguishedName {
        &self.caller
    }

    /// The shared mux this client issues requests through.
    pub fn mux(&self) -> &Arc<RpcMux> {
        &self.mux
    }

    /// Call `operation` with `body`.
    pub fn call(&self, operation: &str, body: Value) -> Result<RpcReply, RpcError> {
        self.mux.call(
            &self.dst,
            &self.service,
            &self.caller,
            operation,
            body,
            self.attempt_timeout,
            self.policy,
        )
    }

    /// Call and keep only the value (common case).
    pub fn call_value(&self, operation: &str, body: Value) -> Result<Value, RpcError> {
        self.call(operation, body).map(|r| r.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neesgrid_gridsim::{FaultPlan, LatencyModel, LinkKey, NetworkConfig, VirtualNetwork};

    /// A trivial echo responder running on its own thread.
    fn spawn_echo(net: &VirtualNetwork, name: &str) {
        let ep = net.endpoint(name);
        std::thread::spawn(move || {
            while let Some(env) = ep.recv() {
                if env.kind != MessageKind::Request {
                    continue;
                }
                // A real container advances the clock to the request's
                // arrival time; mirror that so virtual RTTs accumulate.
                ep.clock().advance_to(env.delivered_at());
                let req: RpcRequest = serde_json::from_slice(&env.payload).unwrap();
                let response = RpcResponse {
                    request_id: req.request_id,
                    outcome: if req.operation == "fail" {
                        RpcOutcome::Fault(ServiceFault::permanent("Oops", "asked to fail"))
                    } else {
                        RpcOutcome::Ok(serde_json::json!({
                            "echo": req.body,
                            "operation": req.operation,
                        }))
                    },
                };
                ep.send(
                    env.src,
                    &env.service,
                    MessageKind::Reply,
                    env.correlation_id,
                    Bytes::from(serde_json::to_vec(&response).unwrap()),
                );
            }
        });
    }

    fn caller() -> DistinguishedName {
        DistinguishedName::nees_user("NCSA", "tester")
    }

    #[test]
    fn echo_roundtrip() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mux = RpcMux::new(net.endpoint("client"));
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller());
        let reply = client.call("ping", serde_json::json!({"x": 1})).unwrap();
        assert_eq!(reply.value["echo"]["x"], 1);
        assert_eq!(reply.value["operation"], "ping");
        assert_eq!(reply.attempts, 1);
    }

    #[test]
    fn virtual_rtt_reflects_link_latency() {
        let net = VirtualNetwork::new(NetworkConfig {
            default_latency: LatencyModel::Fixed(SimTime::from_millis(40)),
            ..Default::default()
        });
        spawn_echo(&net, "server");
        let mux = RpcMux::new(net.endpoint("client"));
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller());
        let reply = client.call("ping", Value::Null).unwrap();
        // Request leg + reply leg.
        assert!(
            reply.virtual_rtt >= SimTime::from_millis(80),
            "rtt {}",
            reply.virtual_rtt
        );
    }

    #[test]
    fn fault_is_surfaced() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mux = RpcMux::new(net.endpoint("client"));
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller());
        match client.call("fail", Value::Null) {
            Err(RpcError::Fault(f)) => assert_eq!(f.code, "Oops"),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn retry_recovers_from_dropped_request() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mut plan = FaultPlan::reliable();
        plan.drop_at(LinkKey::new("client", "server"), 0);
        net.set_fault_plan(plan);
        let mux = RpcMux::new(net.endpoint("client"));
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller())
            .with_attempt_timeout(Duration::from_millis(50));
        let reply = client.call("ping", Value::Null).unwrap();
        assert_eq!(reply.attempts, 2);
    }

    #[test]
    fn retry_recovers_from_dropped_reply() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mut plan = FaultPlan::reliable();
        plan.drop_at(LinkKey::new("server", "client"), 0);
        net.set_fault_plan(plan);
        let mux = RpcMux::new(net.endpoint("client"));
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller())
            .with_attempt_timeout(Duration::from_millis(50));
        let reply = client.call("ping", Value::Null).unwrap();
        assert_eq!(reply.attempts, 2);
    }

    #[test]
    fn no_retry_policy_times_out() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mut plan = FaultPlan::reliable();
        plan.drop_at(LinkKey::new("client", "server"), 0);
        net.set_fault_plan(plan);
        let mux = RpcMux::new(net.endpoint("client"));
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller())
            .with_policy(RetryPolicy::none())
            .with_attempt_timeout(Duration::from_millis(30));
        assert_eq!(
            client.call("ping", Value::Null).unwrap_err(),
            RpcError::Timeout { attempts: 1 }
        );
    }

    #[test]
    fn reset_fails_fast_under_timeouts_only_policy() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mut plan = FaultPlan::reliable();
        plan.reset_at(LinkKey::new("client", "server"), 0);
        net.set_fault_plan(plan);
        let mux = RpcMux::new(net.endpoint("client"));
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller())
            .with_policy(RetryPolicy::timeouts_only(4));
        assert_eq!(
            client.call("ping", Value::Null).unwrap_err(),
            RpcError::LinkReset
        );
    }

    #[test]
    fn reset_recovered_under_transient_policy() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mut plan = FaultPlan::reliable();
        plan.reset_at(LinkKey::new("client", "server"), 0);
        net.set_fault_plan(plan);
        let mux = RpcMux::new(net.endpoint("client"));
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller());
        let reply = client.call("ping", Value::Null).unwrap();
        assert_eq!(reply.attempts, 2);
    }

    #[test]
    fn no_route_is_not_retried() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        let mux = RpcMux::new(net.endpoint("client"));
        let client = RpcClient::new(mux, NodeId::new("ghost"), "echo", caller());
        assert_eq!(
            client.call("ping", Value::Null).unwrap_err(),
            RpcError::NoRoute
        );
    }

    #[test]
    fn concurrent_calls_demultiplex() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mux = RpcMux::new(net.endpoint("client"));
        let mut handles = Vec::new();
        for i in 0..8 {
            let client = RpcClient::new(Arc::clone(&mux), NodeId::new("server"), "echo", caller());
            handles.push(std::thread::spawn(move || {
                let reply = client.call("ping", serde_json::json!({ "i": i })).unwrap();
                assert_eq!(reply.value["echo"]["i"], i);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn oneway_reaches_registered_sink() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        let server_mux = RpcMux::new(net.endpoint("server"));
        let sink = server_mux.register_sink("nsds");
        let client_mux = RpcMux::new(net.endpoint("client"));
        client_mux.send_oneway(
            NodeId::new("server"),
            "nsds",
            &serde_json::json!({"sample": 0.5}),
        );
        let env = sink.recv_timeout(Duration::from_secs(1)).unwrap();
        let v: Value = serde_json::from_slice(&env.payload).unwrap();
        assert_eq!(v["sample"], 0.5);
    }

    #[test]
    fn retransmission_charges_virtual_backoff() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mut plan = FaultPlan::reliable();
        plan.drop_at(LinkKey::new("client", "server"), 0);
        net.set_fault_plan(plan);
        let clock = net.clock();
        let mux = RpcMux::new(net.endpoint("client"));
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller())
            .with_attempt_timeout(Duration::from_millis(50));
        let before = clock.now();
        client.call("ping", Value::Null).unwrap();
        // One retransmission → at least one attempt-timeout of virtual wait.
        assert!(clock.now().saturating_sub(before) >= SimTime::from_millis(50));
    }
}
