//! RPC over the virtual grid network.
//!
//! A thin request/reply layer between endpoints: correlation-id
//! multiplexing, per-attempt timeouts, configurable retransmission, and
//! explicit surfacing of the three failure flavours a caller can observe —
//! **timeout** (message or reply silently lost), **link reset** (immediate
//! connection error), and **service fault** (the server answered with an
//! error). NTCP's at-most-once guarantee composes from this layer's stable
//! `request_id` across retransmissions plus the server-side
//! [`crate::dedup::DedupCache`].
//!
//! Virtual time: the mux runs in *handler mode* on the network's
//! [`EventEngine`] — replies and control notices are scheduled events, and
//! attempt timeouts are **virtual timers**, not wall-clock deadlines. A
//! caller blocked in [`RpcCompletion::wait`] pumps the engine: it runs
//! deliveries (advancing the shared clock to each event's timestamp) and,
//! only when no delivery is pending, lets the earliest timer fire. A
//! fault-schedule run with losses therefore completes in milliseconds of
//! wall time; the old 2-second real-time long-stop survives only as a grace
//! window for deployments that still host live threads (channel-mode
//! containers).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use serde_json::Value;

use neesgrid_gridsim::{
    ControlNotice, Endpoint, Envelope, EventEngine, MessageKind, NodeId, SimTime, TimerId,
};
use neesgrid_gsi::DistinguishedName;
use neesgrid_telemetry::{CounterHandle, Field, FieldList, HistogramHandle, SpanId, Telemetry};

use crate::fault::ServiceFault;

/// A serialized service request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpcRequest {
    /// Client-unique id, *stable across retransmissions* — the at-most-once
    /// key.
    pub request_id: u64,
    /// The authenticated caller (end-entity DN).
    pub caller: DistinguishedName,
    /// Operation name, e.g. `"propose"`.
    pub operation: String,
    /// Operation arguments.
    pub body: Value,
}

/// Outcome carried inside an [`RpcResponse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RpcOutcome {
    /// Success with a result document.
    Ok(Value),
    /// Failure with a structured fault.
    Fault(ServiceFault),
}

/// A serialized service response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpcResponse {
    /// Echoes the request id.
    pub request_id: u64,
    /// Result or fault.
    pub outcome: RpcOutcome,
}

/// Client-observed RPC failures.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcError {
    /// No reply within the per-attempt deadline, after all attempts.
    Timeout {
        /// How many attempts were made.
        attempts: u32,
    },
    /// The network reported a connection reset.
    LinkReset,
    /// The destination node does not exist.
    NoRoute,
    /// The service returned a fault.
    Fault(ServiceFault),
    /// The local mux has shut down.
    MuxClosed,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Timeout { attempts } => write!(f, "timed out after {attempts} attempt(s)"),
            RpcError::LinkReset => write!(f, "link reset"),
            RpcError::NoRoute => write!(f, "no route to destination"),
            RpcError::Fault(fault) => write!(f, "service fault: {fault}"),
            RpcError::MuxClosed => write!(f, "rpc mux closed"),
        }
    }
}

impl std::error::Error for RpcError {}

/// Retransmission policy for one logical call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries).
    pub max_attempts: u32,
    /// Retry after a silent timeout.
    pub retry_on_timeout: bool,
    /// Retry after an immediate link reset.
    pub retry_on_reset: bool,
}

impl RetryPolicy {
    /// One attempt, no retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            retry_on_timeout: false,
            retry_on_reset: false,
        }
    }

    /// Retry all transient failures up to `max_attempts` total attempts.
    pub fn transient(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            retry_on_timeout: true,
            retry_on_reset: true,
        }
    }

    /// Retry timeouts only — the incomplete policy the MOST coordinator
    /// shipped with (§3.4): a final link reset is fatal under this policy.
    pub fn timeouts_only(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            retry_on_timeout: true,
            retry_on_reset: false,
        }
    }
}

/// A successful reply plus its observed virtual round-trip time.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcReply {
    /// The service's result document.
    pub value: Value,
    /// Virtual time from first send to reply delivery.
    pub virtual_rtt: SimTime,
    /// Attempts actually used.
    pub attempts: u32,
}

/// Grace window granted to live threads (channel-mode containers, backend
/// ports) in a *mixed* deployment before a virtual timer verdict stands.
/// Mirrors the long-stop deadline of the retired blocking implementation.
/// Fully-virtual deployments never wait on it.
// analyzer:allow(no-wall-clock, reason = "the one sanctioned real-time constant: a grace window for live threads to inject traffic before a timer fires; fully-virtual (all-handler) deployments never reach it")
const MIXED_GRACE: Duration = Duration::from_secs(2);

/// Slice length for grace waiting, so pumpers re-check completion promptly.
const PUMP_SLICE: Duration = Duration::from_millis(25);

/// Pre-resolved RPC metric instruments, shared by every call slot so the
/// per-call hot path never locks the metrics registry or looks up a name.
/// Detached (updates discarded) until a recording telemetry handle is
/// installed.
#[derive(Clone)]
struct RpcInstruments {
    calls: CounterHandle,
    retries: CounterHandle,
    failures: CounterHandle,
    completion_waits: CounterHandle,
    rtt: HistogramHandle,
}

impl RpcInstruments {
    fn new(telemetry: &Telemetry) -> Self {
        RpcInstruments {
            calls: telemetry.counter_handle("rpc.calls"),
            retries: telemetry.counter_handle("rpc.retries"),
            failures: telemetry.counter_handle("rpc.failures"),
            completion_waits: telemetry.counter_handle("rpc.completion_waits"),
            rtt: telemetry.histogram_handle("rpc.rtt_ns"),
        }
    }
}

/// One in-flight logical call: the retransmission state machine.
///
/// Mutated from engine event actions (reply/notice deliveries, timer fires)
/// under its own lock; the lock is never held while waiting.
struct CallSlot {
    engine: Arc<EventEngine>,
    endpoint: Endpoint,
    dst: NodeId,
    service: String,
    operation: String,
    request_id: u64,
    payload: Bytes,
    attempt_timeout: Duration,
    policy: RetryPolicy,
    telemetry: Telemetry,
    instruments: RpcInstruments,
    span: SpanId,
    state: Mutex<SlotState>,
}

struct SlotState {
    attempts: u32,
    first_send: SimTime,
    timer: Option<TimerId>,
    result: Option<Result<RpcReply, RpcError>>,
}

impl CallSlot {
    fn attempt_timeout_virtual(&self) -> SimTime {
        SimTime::from_secs_f64(self.attempt_timeout.as_secs_f64())
    }

    /// Send one attempt and arm the virtual attempt timer. Retries charge
    /// one attempt-timeout of virtual back-off *after* the retransmission is
    /// posted, so the resent envelope carries the pre-advance timestamp
    /// (matching the retired blocking implementation exactly).
    fn send_attempt(self: &Arc<Self>, st: &mut SlotState) {
        st.attempts += 1;
        self.endpoint.send(
            self.dst.clone(),
            &self.service,
            MessageKind::Request,
            self.request_id,
            self.payload.clone(),
        );
        if st.attempts > 1 {
            self.endpoint
                .clock()
                .advance(self.attempt_timeout_virtual());
            if self.telemetry.enabled() {
                self.instruments.retries.add(1);
                self.telemetry.instant(
                    self.endpoint.clock().now().as_nanos(),
                    "rpc",
                    "retry",
                    [
                        ("dst", Field::Str(self.dst.to_string())),
                        ("op", Field::Str(self.operation.clone())),
                        ("attempt", Field::U64(st.attempts as u64)),
                        ("corr", Field::U64(self.request_id)),
                    ],
                );
            }
        }
        let deadline = self.endpoint.clock().now() + self.attempt_timeout_virtual();
        // First-attempt timers are implied by the open call span; only
        // retransmission timers are interesting enough for the trace (and
        // the flight-recorder "pending retransmission timers" story).
        if self.telemetry.enabled() && st.attempts > 1 {
            self.telemetry.instant(
                self.endpoint.clock().now().as_nanos(),
                "rpc",
                "timer_armed",
                [
                    ("corr", Field::U64(self.request_id)),
                    ("deadline_ns", Field::U64(deadline.as_nanos())),
                ],
            );
        }
        let slot = Arc::clone(self);
        st.timer = Some(
            self.engine
                .schedule_timer(deadline, move || slot.on_timer()),
        );
    }

    fn disarm(&self, st: &mut SlotState) {
        if let Some(id) = st.timer.take() {
            self.engine.cancel_timer(id);
        }
    }

    fn complete(&self, st: &mut SlotState, result: Result<RpcReply, RpcError>) {
        self.disarm(st);
        if self.telemetry.enabled() {
            self.note_completion(st.attempts, &result);
        }
        st.result = Some(result);
        // Wake concurrent pumpers blocked in a grace wait: their predicate
        // (slot done) changed without an engine event of their own.
        self.engine.notify();
    }

    /// Close the call's span and update RPC metrics; a terminal transport
    /// failure (retries exhausted, final reset, no route) additionally
    /// triggers a flight-recorder dump — this is the "RPC exhausts retries"
    /// trigger for the step-1493 post-mortem.
    fn note_completion(&self, attempts: u32, result: &Result<RpcReply, RpcError>) {
        let now_ns = self.endpoint.clock().now().as_nanos();
        // dst/op live on the span-start line; the end line carries only the
        // outcome, which keeps the per-call hot path free of string clones.
        let mut fields = FieldList::from([("attempts", Field::U64(attempts as u64))]);
        match result {
            Ok(reply) => {
                self.instruments
                    .rtt
                    .observe_ns(reply.virtual_rtt.as_nanos());
                fields.push("ok", Field::Bool(true));
            }
            Err(err) => {
                self.instruments.failures.add(1);
                fields.push("ok", Field::Bool(false));
                fields.push("error", Field::Str(err.to_string()));
            }
        }
        self.telemetry.span_end(now_ns, self.span, fields);
        if let Err(err @ (RpcError::Timeout { .. } | RpcError::LinkReset | RpcError::NoRoute)) =
            result
        {
            self.telemetry.flight_dump(
                now_ns,
                &format!(
                    "rpc {} to {} failed after {attempts} attempt(s): {err}",
                    self.operation, self.dst
                ),
            );
        }
    }

    fn on_reply(self: &Arc<Self>, env: Envelope) {
        let mut st = self.state.lock();
        if st.result.is_some() {
            return;
        }
        let response: Result<RpcResponse, _> = serde_json::from_slice(&env.payload);
        let result = match response {
            Err(_) => Err(RpcError::Fault(ServiceFault::permanent(
                "BadResponse",
                "undecodable response payload",
            ))),
            Ok(response) => match response.outcome {
                RpcOutcome::Ok(value) => Ok(RpcReply {
                    value,
                    virtual_rtt: env.delivered_at().saturating_sub(st.first_send),
                    attempts: st.attempts,
                }),
                RpcOutcome::Fault(fault) => Err(RpcError::Fault(fault)),
            },
        };
        self.complete(&mut st, result);
    }

    fn on_notice(self: &Arc<Self>, notice: ControlNotice) {
        let mut st = self.state.lock();
        if st.result.is_some() {
            return;
        }
        match notice {
            ControlNotice::LinkReset { .. } => {
                if self.policy.retry_on_reset && st.attempts < self.policy.max_attempts {
                    self.disarm(&mut st);
                    self.send_attempt(&mut st);
                } else {
                    self.complete(&mut st, Err(RpcError::LinkReset));
                }
            }
            ControlNotice::NoRoute { .. } => {
                self.complete(&mut st, Err(RpcError::NoRoute));
            }
            // A silent loss, surfaced deterministically: semantically this
            // *is* the attempt timeout (the caller waited out its deadline),
            // so it follows the timeout retry policy and error shape exactly.
            ControlNotice::Dropped { .. } => {
                let attempts = st.attempts;
                if self.policy.retry_on_timeout && attempts < self.policy.max_attempts {
                    self.disarm(&mut st);
                    self.send_attempt(&mut st);
                } else {
                    self.complete(&mut st, Err(RpcError::Timeout { attempts }));
                }
            }
        }
    }

    /// The virtual attempt timer fired: no reply and no loss notice inside
    /// the attempt window (a wedged or silent peer).
    fn on_timer(self: &Arc<Self>) {
        let mut st = self.state.lock();
        if st.result.is_some() {
            return;
        }
        st.timer = None;
        let attempts = st.attempts;
        if self.policy.retry_on_timeout && attempts < self.policy.max_attempts {
            self.send_attempt(&mut st);
        } else {
            self.complete(&mut st, Err(RpcError::Timeout { attempts }));
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().result.is_some()
    }
}

/// Handle to one in-flight [`RpcMux::call_async`] request.
///
/// Poll with [`RpcCompletion::is_done`], or block on
/// [`RpcCompletion::wait`] — waiting pumps the shared event engine, so a
/// single thread can drive any number of overlapping calls (see
/// [`wait_all`]). Dropping the handle abandons the call and releases its
/// timer and mux slot.
pub struct RpcCompletion {
    slot: Arc<CallSlot>,
    calls: Arc<Mutex<HashMap<u64, Arc<CallSlot>>>>,
}

impl RpcCompletion {
    /// Whether a result is available (reply, fault, or exhausted retries).
    pub fn is_done(&self) -> bool {
        self.slot.is_done()
    }

    /// The stable request id (also the correlation id on the wire).
    pub fn request_id(&self) -> u64 {
        self.slot.request_id
    }

    /// Block until this call completes, pumping the event engine.
    pub fn wait(self) -> Result<RpcReply, RpcError> {
        let engine = Arc::clone(&self.slot.engine);
        self.slot.instruments.completion_waits.add(1);
        pump_until(&engine, || self.slot.is_done());
        self.finish()
    }

    /// Take the result without pumping (used by [`wait_all`] after its own
    /// pump). An unfinished call yields [`RpcError::MuxClosed`].
    fn finish(self) -> Result<RpcReply, RpcError> {
        self.slot
            .state
            .lock()
            .result
            .take()
            .unwrap_or(Err(RpcError::MuxClosed))
    }
}

impl Drop for RpcCompletion {
    fn drop(&mut self) {
        self.calls.lock().remove(&self.slot.request_id);
        let mut st = self.slot.state.lock();
        self.slot.disarm(&mut st);
    }
}

/// Drive the engine until `done` holds.
///
/// The quiescence rule lives here: deliveries always run first; a timer may
/// fire only when no delivery is pending — and, if live threads are attached
/// (mixed deployment), only after [`MIXED_GRACE`] of engine inactivity, the
/// window those threads get to produce the traffic they owe. Returns `false`
/// if the engine went idle with no way for `done` to ever hold (fully
/// virtual, nothing scheduled).
fn pump_until(engine: &EventEngine, done: impl Fn() -> bool) -> bool {
    let mut idle = Duration::ZERO;
    loop {
        if done() {
            return true;
        }
        if engine.run_one() {
            idle = Duration::ZERO;
            continue;
        }
        if !engine.has_external_actors() {
            // Fully virtual: engine quiescence is authoritative.
            if engine.fire_next_timer() {
                continue;
            }
            if engine.has_deliveries() {
                continue;
            }
            return done();
        }
        // Mixed deployment: grant live threads their grace window, in
        // slices so this pumper notices completions filled by others.
        if engine.wait_activity(PUMP_SLICE) {
            idle = Duration::ZERO;
            continue;
        }
        idle += PUMP_SLICE;
        if idle >= MIXED_GRACE {
            idle = Duration::ZERO;
            engine.fire_next_timer();
        }
    }
}

/// Wait for a batch of completions, pumping their shared engine once.
///
/// Results come back in argument order. All completions must come from
/// muxes on the same [`VirtualNetwork`](neesgrid_gridsim::VirtualNetwork)
/// (they share its engine) — which is every deployment this repo builds.
pub fn wait_all(completions: Vec<RpcCompletion>) -> Vec<Result<RpcReply, RpcError>> {
    let Some(first) = completions.first() else {
        return Vec::new();
    };
    let engine = Arc::clone(&first.slot.engine);
    first.slot.instruments.completion_waits.add(1);
    pump_until(&engine, || completions.iter().all(|c| c.is_done()));
    completions.into_iter().map(|c| c.finish()).collect()
}

/// Correlation-id demultiplexer over one endpoint.
///
/// One mux serves any number of concurrent callers (the coordinator fans
/// proposals out to all sites through a single mux). Construction installs
/// an event-engine handler on the endpoint: replies and control notices
/// resolve in-flight [`CallSlot`]s, push-style (one-way) traffic for a named
/// local service can be claimed with [`RpcMux::register_sink`].
pub struct RpcMux {
    endpoint: Endpoint,
    engine: Arc<EventEngine>,
    calls: Arc<Mutex<HashMap<u64, Arc<CallSlot>>>>,
    sinks: Arc<Mutex<HashMap<String, Sender<Envelope>>>>,
    telemetry: Mutex<Telemetry>,
    instruments: Mutex<RpcInstruments>,
}

impl RpcMux {
    /// Wrap an endpoint, switching it to handler (event-scheduled) delivery.
    pub fn new(endpoint: Endpoint) -> Arc<Self> {
        let engine = endpoint.engine();
        let calls: Arc<Mutex<HashMap<u64, Arc<CallSlot>>>> = Arc::new(Mutex::new(HashMap::new()));
        let sinks: Arc<Mutex<HashMap<String, Sender<Envelope>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let handler_calls = Arc::clone(&calls);
        let handler_sinks = Arc::clone(&sinks);
        endpoint.install_handler(move |env| match env.kind {
            MessageKind::Reply => {
                let slot = handler_calls.lock().get(&env.correlation_id).cloned();
                if let Some(slot) = slot {
                    slot.on_reply(env);
                }
            }
            MessageKind::Control => {
                if let Some(notice) = ControlNotice::from_bytes(&env.payload) {
                    let slot = handler_calls.lock().get(&notice.correlation_id()).cloned();
                    if let Some(slot) = slot {
                        slot.on_notice(notice);
                    }
                }
            }
            MessageKind::Request | MessageKind::OneWay => {
                let tx = handler_sinks.lock().get(&env.service).cloned();
                if let Some(tx) = tx {
                    let _ = tx.send(env);
                }
            }
        });
        Arc::new(RpcMux {
            endpoint,
            engine,
            calls,
            sinks,
            telemetry: Mutex::new(Telemetry::disabled()),
            instruments: Mutex::new(RpcInstruments::new(&Telemetry::disabled())),
        })
    }

    /// Install a telemetry handle: subsequent calls get an `rpc/call` span
    /// (latency histogram, retry counters) and terminal transport failures
    /// trigger a flight-recorder dump. Defaults to disabled.
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        *self.instruments.lock() = RpcInstruments::new(&telemetry);
        *self.telemetry.lock() = telemetry;
    }

    /// The underlying endpoint's node id.
    pub fn node(&self) -> &NodeId {
        self.endpoint.id()
    }

    /// The event engine this mux schedules on.
    pub fn engine(&self) -> &Arc<EventEngine> {
        &self.engine
    }

    /// The endpoint's correlation watermark (see
    /// [`Endpoint::correlation_watermark`]); recorded in checkpoints.
    pub fn correlation_watermark(&self) -> u64 {
        self.endpoint.correlation_watermark()
    }

    /// Fast-forward the endpoint's correlation counter past a restored
    /// checkpoint watermark (see [`Endpoint::advance_correlation_to`]).
    pub fn advance_correlation_to(&self, watermark: u64) {
        self.endpoint.advance_correlation_to(watermark);
    }

    /// Claim incoming one-way/request traffic addressed to local `service`.
    pub fn register_sink(&self, service: impl Into<String>) -> Receiver<Envelope> {
        let (tx, rx) = unbounded();
        self.sinks.lock().insert(service.into(), tx);
        rx
    }

    /// Fire-and-forget send.
    pub fn send_oneway(&self, dst: NodeId, service: &str, body: &Value) {
        let payload = Bytes::from(serde_json::to_vec(body).expect("serialize oneway body"));
        let corr = self.endpoint.next_correlation();
        self.endpoint
            .send(dst, service, MessageKind::OneWay, corr, payload);
    }

    /// Run every currently runnable scheduled delivery (for push-style
    /// consumers that poll a [`RpcMux::register_sink`] receiver without an
    /// in-flight call to pump for them). Returns how many events ran.
    pub fn pump(&self) -> usize {
        self.engine.run_until_idle()
    }

    /// Start a request with retransmission per `policy`, returning a
    /// completion to poll or wait on.
    ///
    /// (The argument list mirrors the wire fields; a params struct would
    /// just restate them.)
    ///
    /// The same `request_id` (also used as the correlation id) is reused on
    /// every attempt so the server's dedup cache can guarantee at-most-once
    /// execution.
    #[allow(clippy::too_many_arguments)]
    pub fn call_async(
        &self,
        dst: &NodeId,
        service: &str,
        caller: &DistinguishedName,
        operation: &str,
        body: Value,
        attempt_timeout: Duration,
        policy: RetryPolicy,
    ) -> RpcCompletion {
        let request_id = self.endpoint.next_correlation();
        let request = RpcRequest {
            request_id,
            caller: caller.clone(),
            operation: operation.to_string(),
            body,
        };
        let payload = Bytes::from(serde_json::to_vec(&request).expect("serialize request"));
        let telemetry = self.telemetry.lock().clone();
        let instruments = self.instruments.lock().clone();
        let span = if telemetry.enabled() {
            instruments.calls.add(1);
            // Known NTCP/OGSI operations tag the span without allocating.
            let op_tag = match operation {
                "propose" => Field::Static("propose"),
                "execute" => Field::Static("execute"),
                "cancel" => Field::Static("cancel"),
                "getStatus" => Field::Static("getStatus"),
                "getTransaction" => Field::Static("getTransaction"),
                "snapshotSite" => Field::Static("snapshotSite"),
                "restoreSite" => Field::Static("restoreSite"),
                other => Field::Str(other.to_string()),
            };
            telemetry.span_start(
                self.endpoint.clock().now().as_nanos(),
                "rpc",
                "call",
                [
                    ("dst", Field::Str(dst.to_string())),
                    ("op", op_tag),
                    ("corr", Field::U64(request_id)),
                ],
            )
        } else {
            SpanId::NONE
        };
        let slot = Arc::new(CallSlot {
            engine: Arc::clone(&self.engine),
            endpoint: self.endpoint.clone(),
            dst: dst.clone(),
            service: service.to_string(),
            operation: operation.to_string(),
            request_id,
            payload,
            attempt_timeout,
            policy,
            telemetry,
            instruments,
            span,
            state: Mutex::new(SlotState {
                attempts: 0,
                first_send: self.endpoint.clock().now(),
                timer: None,
                result: None,
            }),
        });
        // Register before the first send: a zero-latency loss notice is a
        // scheduled event, but another pumper could run it immediately.
        self.calls.lock().insert(request_id, Arc::clone(&slot));
        {
            let mut st = slot.state.lock();
            slot.send_attempt(&mut st);
        }
        RpcCompletion {
            slot,
            calls: Arc::clone(&self.calls),
        }
    }

    /// Issue a request and wait for its outcome (blocking façade over
    /// [`RpcMux::call_async`]).
    #[allow(clippy::too_many_arguments)]
    pub fn call(
        &self,
        dst: &NodeId,
        service: &str,
        caller: &DistinguishedName,
        operation: &str,
        body: Value,
        attempt_timeout: Duration,
        policy: RetryPolicy,
    ) -> Result<RpcReply, RpcError> {
        self.call_async(
            dst,
            service,
            caller,
            operation,
            body,
            attempt_timeout,
            policy,
        )
        .wait()
    }
}

/// A client bound to one remote service.
#[derive(Clone)]
pub struct RpcClient {
    mux: Arc<RpcMux>,
    dst: NodeId,
    service: String,
    caller: DistinguishedName,
    /// Per-attempt timeout, charged in virtual time.
    pub attempt_timeout: Duration,
    /// Default retry policy.
    pub policy: RetryPolicy,
}

impl RpcClient {
    /// Bind a client to `service` on node `dst`, calling as `caller`.
    pub fn new(
        mux: Arc<RpcMux>,
        dst: NodeId,
        service: impl Into<String>,
        caller: DistinguishedName,
    ) -> Self {
        RpcClient {
            mux,
            dst,
            service: service.into(),
            caller,
            attempt_timeout: Duration::from_millis(100),
            policy: RetryPolicy::transient(4),
        }
    }

    /// Override the retry policy (builder style).
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Override the per-attempt timeout (builder style).
    pub fn with_attempt_timeout(mut self, t: Duration) -> Self {
        self.attempt_timeout = t;
        self
    }

    /// The remote node this client talks to.
    pub fn destination(&self) -> &NodeId {
        &self.dst
    }

    /// The caller identity requests are issued under.
    pub fn caller(&self) -> &DistinguishedName {
        &self.caller
    }

    /// The shared mux this client issues requests through.
    pub fn mux(&self) -> &Arc<RpcMux> {
        &self.mux
    }

    /// Call `operation` with `body`.
    pub fn call(&self, operation: &str, body: Value) -> Result<RpcReply, RpcError> {
        self.mux.call(
            &self.dst,
            &self.service,
            &self.caller,
            operation,
            body,
            self.attempt_timeout,
            self.policy,
        )
    }

    /// Start `operation` without waiting (completion-based fan-out).
    pub fn call_async(&self, operation: &str, body: Value) -> RpcCompletion {
        self.mux.call_async(
            &self.dst,
            &self.service,
            &self.caller,
            operation,
            body,
            self.attempt_timeout,
            self.policy,
        )
    }

    /// Call and keep only the value (common case).
    pub fn call_value(&self, operation: &str, body: Value) -> Result<Value, RpcError> {
        self.call(operation, body).map(|r| r.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neesgrid_gridsim::{FaultPlan, LatencyModel, LinkKey, NetworkConfig, VirtualNetwork};

    /// A trivial echo responder running on its own thread (channel mode —
    /// deliberately exercising the mixed deployment path).
    fn spawn_echo(net: &VirtualNetwork, name: &str) {
        let ep = net.endpoint(name).unwrap();
        std::thread::spawn(move || {
            while let Some(env) = ep.recv() {
                if env.kind != MessageKind::Request {
                    continue;
                }
                // A real container advances the clock to the request's
                // arrival time; mirror that so virtual RTTs accumulate.
                ep.clock().advance_to(env.delivered_at());
                let req: RpcRequest = serde_json::from_slice(&env.payload).unwrap();
                let response = RpcResponse {
                    request_id: req.request_id,
                    outcome: if req.operation == "fail" {
                        RpcOutcome::Fault(ServiceFault::permanent("Oops", "asked to fail"))
                    } else {
                        RpcOutcome::Ok(serde_json::json!({
                            "echo": req.body,
                            "operation": req.operation,
                        }))
                    },
                };
                ep.send(
                    env.src,
                    &env.service,
                    MessageKind::Reply,
                    env.correlation_id,
                    Bytes::from(serde_json::to_vec(&response).unwrap()),
                );
            }
        });
    }

    fn caller() -> DistinguishedName {
        DistinguishedName::nees_user("NCSA", "tester")
    }

    #[test]
    fn echo_roundtrip() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller());
        let reply = client.call("ping", serde_json::json!({"x": 1})).unwrap();
        assert_eq!(reply.value["echo"]["x"], 1);
        assert_eq!(reply.value["operation"], "ping");
        assert_eq!(reply.attempts, 1);
    }

    #[test]
    fn virtual_rtt_reflects_link_latency() {
        let net = VirtualNetwork::new(NetworkConfig {
            default_latency: LatencyModel::Fixed(SimTime::from_millis(40)),
            ..Default::default()
        });
        spawn_echo(&net, "server");
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller());
        let reply = client.call("ping", Value::Null).unwrap();
        // Request leg + reply leg.
        assert!(
            reply.virtual_rtt >= SimTime::from_millis(80),
            "rtt {}",
            reply.virtual_rtt
        );
    }

    #[test]
    fn fault_is_surfaced() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller());
        match client.call("fail", Value::Null) {
            Err(RpcError::Fault(f)) => assert_eq!(f.code, "Oops"),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn retry_recovers_from_dropped_request() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mut plan = FaultPlan::reliable();
        plan.drop_at(LinkKey::new("client", "server"), 0);
        net.set_fault_plan(plan);
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller())
            .with_attempt_timeout(Duration::from_millis(50));
        let reply = client.call("ping", Value::Null).unwrap();
        assert_eq!(reply.attempts, 2);
    }

    #[test]
    fn retry_recovers_from_dropped_reply() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mut plan = FaultPlan::reliable();
        plan.drop_at(LinkKey::new("server", "client"), 0);
        net.set_fault_plan(plan);
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller())
            .with_attempt_timeout(Duration::from_millis(50));
        let reply = client.call("ping", Value::Null).unwrap();
        assert_eq!(reply.attempts, 2);
    }

    #[test]
    fn no_retry_policy_times_out() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mut plan = FaultPlan::reliable();
        plan.drop_at(LinkKey::new("client", "server"), 0);
        net.set_fault_plan(plan);
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller())
            .with_policy(RetryPolicy::none())
            .with_attempt_timeout(Duration::from_millis(30));
        assert_eq!(
            client.call("ping", Value::Null).unwrap_err(),
            RpcError::Timeout { attempts: 1 }
        );
    }

    #[test]
    fn reset_fails_fast_under_timeouts_only_policy() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mut plan = FaultPlan::reliable();
        plan.reset_at(LinkKey::new("client", "server"), 0);
        net.set_fault_plan(plan);
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller())
            .with_policy(RetryPolicy::timeouts_only(4));
        assert_eq!(
            client.call("ping", Value::Null).unwrap_err(),
            RpcError::LinkReset
        );
    }

    #[test]
    fn reset_recovered_under_transient_policy() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mut plan = FaultPlan::reliable();
        plan.reset_at(LinkKey::new("client", "server"), 0);
        net.set_fault_plan(plan);
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller());
        let reply = client.call("ping", Value::Null).unwrap();
        assert_eq!(reply.attempts, 2);
    }

    #[test]
    fn no_route_is_not_retried() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let client = RpcClient::new(mux, NodeId::new("ghost"), "echo", caller());
        assert_eq!(
            client.call("ping", Value::Null).unwrap_err(),
            RpcError::NoRoute
        );
    }

    #[test]
    fn concurrent_calls_demultiplex() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let mut handles = Vec::new();
        for i in 0..8 {
            let client = RpcClient::new(Arc::clone(&mux), NodeId::new("server"), "echo", caller());
            handles.push(std::thread::spawn(move || {
                let reply = client.call("ping", serde_json::json!({ "i": i })).unwrap();
                assert_eq!(reply.value["echo"]["i"], i);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn batched_fan_out_over_completions() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        for name in ["s0", "s1", "s2"] {
            spawn_echo(&net, name);
        }
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let completions: Vec<RpcCompletion> = (0..3)
            .map(|i| {
                let client = RpcClient::new(
                    Arc::clone(&mux),
                    NodeId::new(format!("s{i}")),
                    "echo",
                    caller(),
                );
                client.call_async("ping", serde_json::json!({ "i": i }))
            })
            .collect();
        let results = wait_all(completions);
        assert_eq!(results.len(), 3);
        for (i, r) in results.into_iter().enumerate() {
            let reply = r.unwrap();
            assert_eq!(reply.value["echo"]["i"], i);
            assert_eq!(reply.attempts, 1);
        }
    }

    #[test]
    fn oneway_reaches_registered_sink() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        let server_mux = RpcMux::new(net.endpoint("server").unwrap());
        let sink = server_mux.register_sink("nsds");
        let client_mux = RpcMux::new(net.endpoint("client").unwrap());
        client_mux.send_oneway(
            NodeId::new("server"),
            "nsds",
            &serde_json::json!({"sample": 0.5}),
        );
        // One-way delivery is a scheduled event; pump it through.
        assert!(server_mux.pump() > 0);
        let env = sink.try_recv().unwrap();
        let v: Value = serde_json::from_slice(&env.payload).unwrap();
        assert_eq!(v["sample"], 0.5);
    }

    #[test]
    fn retransmission_charges_virtual_backoff() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mut plan = FaultPlan::reliable();
        plan.drop_at(LinkKey::new("client", "server"), 0);
        net.set_fault_plan(plan);
        let clock = net.clock();
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller())
            .with_attempt_timeout(Duration::from_millis(50));
        let before = clock.now();
        client.call("ping", Value::Null).unwrap();
        // One retransmission → at least one attempt-timeout of virtual wait.
        assert!(clock.now().saturating_sub(before) >= SimTime::from_millis(50));
    }

    #[test]
    fn all_drops_exhaust_retries_quickly() {
        // Regression guard on the removed 2-second real-time long-stop:
        // exhausting every retry against a fully lossy link must be a
        // virtual-time affair.
        let net = VirtualNetwork::new(NetworkConfig::default());
        spawn_echo(&net, "server");
        let mut plan = FaultPlan::reliable();
        for i in 0..64 {
            plan.drop_at(LinkKey::new("client", "server"), i);
        }
        net.set_fault_plan(plan);
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let client = RpcClient::new(mux, NodeId::new("server"), "echo", caller())
            .with_policy(RetryPolicy::transient(4))
            .with_attempt_timeout(Duration::from_millis(50));
        let t0 = std::time::Instant::now();
        assert_eq!(
            client.call("ping", Value::Null).unwrap_err(),
            RpcError::Timeout { attempts: 4 }
        );
        assert!(
            t0.elapsed() < Duration::from_millis(100),
            "took {:?}",
            t0.elapsed()
        );
    }
}
