//! The grid-service abstraction.
//!
//! A [`GridService`] is a named unit of server-side behaviour hosted in a
//! [`crate::container::ServiceContainer`]. The container handles transport,
//! authentication, and the generic OGSI inspection operations; the service
//! implements domain operations (NTCP's `propose`/`execute`/`cancel`, NMDS's
//! metadata CRUD, …) and exposes state through its [`ServiceData`].

use serde_json::Value;

use neesgrid_gridsim::SimTime;
use neesgrid_gsi::DistinguishedName;

use crate::fault::ServiceFault;
use crate::sde::ServiceData;

/// Per-call context the container passes to a service.
#[derive(Debug, Clone)]
pub struct CallContext {
    /// Authenticated end-entity identity of the caller.
    pub caller: DistinguishedName,
    /// Virtual time at which the request reached the service.
    pub now: SimTime,
    /// The request id (stable across client retransmissions).
    pub request_id: u64,
}

/// A hosted grid service.
pub trait GridService: Send {
    /// The service type name (diagnostics only; routing uses the
    /// registration name).
    fn service_type(&self) -> &'static str;

    /// Handle a domain operation.
    fn handle(
        &mut self,
        ctx: &CallContext,
        operation: &str,
        body: &Value,
    ) -> Result<Value, ServiceFault>;

    /// Expose service data for generic OGSI inspection, if any.
    fn sde(&mut self) -> Option<&mut ServiceData> {
        None
    }

    /// Periodic housekeeping hook (lease reaping etc.). Called by the
    /// container between requests.
    fn tick(&mut self, _now: SimTime) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    struct Counter {
        count: u64,
        sde: ServiceData,
    }

    impl GridService for Counter {
        fn service_type(&self) -> &'static str {
            "counter"
        }

        fn handle(
            &mut self,
            ctx: &CallContext,
            operation: &str,
            _body: &Value,
        ) -> Result<Value, ServiceFault> {
            match operation {
                "increment" => {
                    self.count += 1;
                    self.sde.set("count", json!(self.count), ctx.now);
                    Ok(json!({ "count": self.count }))
                }
                other => Err(ServiceFault::no_such_operation(other)),
            }
        }

        fn sde(&mut self) -> Option<&mut ServiceData> {
            Some(&mut self.sde)
        }
    }

    fn ctx() -> CallContext {
        CallContext {
            caller: DistinguishedName::nees_user("X", "tester"),
            now: SimTime::from_secs(1),
            request_id: 1,
        }
    }

    #[test]
    fn service_handles_operations_and_updates_sde() {
        let mut svc = Counter {
            count: 0,
            sde: ServiceData::new(),
        };
        let out = svc.handle(&ctx(), "increment", &Value::Null).unwrap();
        assert_eq!(out["count"], 1);
        assert_eq!(svc.sde().unwrap().get("count").unwrap().value, json!(1));
    }

    #[test]
    fn unknown_operation_faults() {
        let mut svc = Counter {
            count: 0,
            sde: ServiceData::new(),
        };
        let err = svc.handle(&ctx(), "zap", &Value::Null).unwrap_err();
        assert_eq!(err.code, "NoSuchOperation");
    }
}
