//! Request de-duplication for at-most-once semantics.
//!
//! Paper §2.1: *"The NTCP protocol supports at-most-once semantics, so that
//! if a client makes a request and does not receive a reply, the client can
//! re-send the request without any danger of the same action being executed
//! twice."* Servers achieve that by remembering the reply keyed by the
//! client's request id; a retransmission replays the remembered reply
//! instead of re-executing. The cache is bounded (LRU by insertion order) so
//! a five-hour experiment cannot grow it without limit.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A bounded map from request id to remembered response.
#[derive(Debug)]
pub struct DedupCache<K: Eq + Hash + Clone, V: Clone> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> DedupCache<K, V> {
    /// A cache remembering at most `capacity` responses.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "dedup cache capacity must be positive");
        DedupCache {
            map: HashMap::with_capacity(capacity.min(1024)),
            order: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a remembered response for `key`, counting hit/miss.
    pub fn check(&mut self, key: &K) -> Option<V> {
        match self.map.get(key) {
            Some(v) => {
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Remember the response for `key`, evicting the oldest entry if full.
    /// Re-remembering an existing key updates the value in place.
    pub fn remember(&mut self, key: K, value: V) {
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    /// Execute-once helper: returns the remembered response if `key` was
    /// seen, otherwise runs `f`, remembers, and returns its result along
    /// with whether this call actually executed `f`.
    pub fn run_once(&mut self, key: K, f: impl FnOnce() -> V) -> (V, bool) {
        if let Some(v) = self.check(&key) {
            return (v, false);
        }
        let v = f();
        self.remember(key, v.clone());
        (v, true)
    }

    /// Number of remembered responses.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// All remembered entries in insertion (eviction) order. Checkpoints
    /// persist this so a restarted server still replays responses for
    /// requests the client sent before the crash.
    pub fn entries(&self) -> Vec<(K, V)> {
        self.order
            .iter()
            .filter_map(|k| self.map.get(k).map(|v| (k.clone(), v.clone())))
            .collect()
    }

    /// Rebuild a cache from entries previously exported with
    /// [`DedupCache::entries`], preserving insertion order (and therefore
    /// future eviction order). Hit/miss counters restart at zero.
    pub fn from_entries(capacity: usize, entries: Vec<(K, V)>) -> Self {
        let mut cache = DedupCache::new(capacity);
        for (k, v) in entries {
            cache.remember(k, v);
        }
        cache.hits = 0;
        cache.misses = 0;
        cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remembers_and_replays() {
        let mut c: DedupCache<u64, String> = DedupCache::new(10);
        assert!(c.check(&1).is_none());
        c.remember(1, "reply".into());
        assert_eq!(c.check(&1).unwrap(), "reply");
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn run_once_executes_exactly_once() {
        let mut c: DedupCache<u64, u32> = DedupCache::new(10);
        let mut executions = 0;
        let (v1, ran1) = c.run_once(7, || {
            executions += 1;
            42
        });
        let (v2, ran2) = c.run_once(7, || {
            executions += 1;
            42
        });
        assert_eq!((v1, v2), (42, 42));
        assert!(ran1);
        assert!(!ran2);
        assert_eq!(executions, 1);
    }

    #[test]
    fn eviction_is_fifo() {
        let mut c: DedupCache<u64, u64> = DedupCache::new(3);
        for i in 0..5 {
            c.remember(i, i * 10);
        }
        assert_eq!(c.len(), 3);
        assert!(c.check(&0).is_none());
        assert!(c.check(&1).is_none());
        assert_eq!(c.check(&2).unwrap(), 20);
        assert_eq!(c.check(&4).unwrap(), 40);
    }

    #[test]
    fn re_remember_updates_without_duplicating_order() {
        let mut c: DedupCache<u64, u64> = DedupCache::new(2);
        c.remember(1, 10);
        c.remember(1, 11);
        c.remember(2, 20);
        assert_eq!(c.len(), 2);
        assert_eq!(c.check(&1).unwrap(), 11);
        // Capacity still respected after updates.
        c.remember(3, 30);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _c: DedupCache<u64, u64> = DedupCache::new(0);
    }

    #[test]
    fn entries_roundtrip_preserves_order_and_eviction() {
        let mut c: DedupCache<u64, u64> = DedupCache::new(3);
        for i in 0..3 {
            c.remember(i, i * 10);
        }
        let exported = c.entries();
        assert_eq!(exported, vec![(0, 0), (1, 10), (2, 20)]);
        let mut restored = DedupCache::from_entries(3, exported);
        assert_eq!(restored.check(&1).unwrap(), 10);
        assert_eq!(restored.stats(), (1, 0));
        // Eviction order carried over: next insert evicts key 0.
        restored.remember(3, 30);
        assert!(restored.check(&0).is_none());
        assert_eq!(restored.len(), 3);
    }
}
