//! Soft-state lifetime management.
//!
//! OGSI services are created with a *termination time* that the client must
//! periodically extend; if the client vanishes (crash, partition), the state
//! evaporates on its own. The paper cites "soft state management" as one of
//! the OGSI mechanisms NEESgrid services make good use of — NTCP transaction
//! records and NSDS subscriptions are both lease-bound.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use neesgrid_gridsim::SimTime;

/// A lease over one piece of server-side state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lease {
    /// When the lease was first granted.
    pub granted_at: SimTime,
    /// Current termination time.
    pub expires_at: SimTime,
}

impl Lease {
    /// Whether the lease is still live at `now`.
    pub fn alive_at(&self, now: SimTime) -> bool {
        now < self.expires_at
    }
}

/// Tracks leases for a family of named resources.
#[derive(Debug, Default)]
pub struct LifetimeManager {
    leases: BTreeMap<String, Lease>,
    /// Longest extension a single request may ask for; requests beyond it
    /// are clipped (OGSI lets the service negotiate down).
    pub max_extension: Option<SimTime>,
}

impl LifetimeManager {
    /// A manager with no extension cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A manager that clips each extension to `max_extension`.
    pub fn with_max_extension(max_extension: SimTime) -> Self {
        LifetimeManager {
            leases: BTreeMap::new(),
            max_extension: Some(max_extension),
        }
    }

    /// Grant a new lease for `name` lasting `lifetime` from `now`.
    /// Returns the granted lease (possibly clipped).
    pub fn grant(&mut self, name: impl Into<String>, now: SimTime, lifetime: SimTime) -> Lease {
        let lifetime = self.clip(lifetime);
        let lease = Lease {
            granted_at: now,
            expires_at: now + lifetime,
        };
        self.leases.insert(name.into(), lease);
        lease
    }

    /// Extend (or shorten) an existing lease to `now + lifetime`.
    /// OGSI allows requested termination times in the past as an explicit
    /// destroy idiom; `lifetime == 0` expires the lease immediately.
    pub fn set_termination(
        &mut self,
        name: &str,
        now: SimTime,
        lifetime: SimTime,
    ) -> Option<Lease> {
        let lifetime = self.clip(lifetime);
        let lease = self.leases.get_mut(name)?;
        lease.expires_at = now + lifetime;
        Some(*lease)
    }

    /// Current lease for `name`.
    pub fn get(&self, name: &str) -> Option<Lease> {
        self.leases.get(name).copied()
    }

    /// Whether `name` has a live lease at `now`.
    pub fn alive(&self, name: &str, now: SimTime) -> bool {
        self.leases
            .get(name)
            .map(|l| l.alive_at(now))
            .unwrap_or(false)
    }

    /// Remove and return every lease expired at `now` — the reaper hook a
    /// container calls periodically.
    pub fn reap(&mut self, now: SimTime) -> Vec<String> {
        let dead: Vec<String> = self
            .leases
            .iter()
            .filter(|(_, l)| !l.alive_at(now))
            .map(|(n, _)| n.clone())
            .collect();
        for n in &dead {
            self.leases.remove(n);
        }
        let mut sorted = dead;
        sorted.sort();
        sorted
    }

    /// Explicitly destroy a lease.
    pub fn destroy(&mut self, name: &str) -> bool {
        self.leases.remove(name).is_some()
    }

    /// Number of tracked leases (live or not yet reaped).
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// Whether no leases are tracked.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }

    fn clip(&self, lifetime: SimTime) -> SimTime {
        match self.max_extension {
            Some(max) if lifetime > max => max,
            _ => lifetime,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_and_query() {
        let mut lm = LifetimeManager::new();
        let lease = lm.grant("tx1", SimTime::from_secs(10), SimTime::from_secs(60));
        assert_eq!(lease.expires_at, SimTime::from_secs(70));
        assert!(lm.alive("tx1", SimTime::from_secs(69)));
        assert!(!lm.alive("tx1", SimTime::from_secs(70)));
        assert!(!lm.alive("never-granted", SimTime::ZERO));
    }

    #[test]
    fn keepalive_extends() {
        let mut lm = LifetimeManager::new();
        lm.grant("tx1", SimTime::ZERO, SimTime::from_secs(10));
        lm.set_termination("tx1", SimTime::from_secs(8), SimTime::from_secs(10));
        assert!(lm.alive("tx1", SimTime::from_secs(15)));
        assert!(!lm.alive("tx1", SimTime::from_secs(18)));
    }

    #[test]
    fn zero_lifetime_is_immediate_destroy() {
        let mut lm = LifetimeManager::new();
        lm.grant("tx1", SimTime::ZERO, SimTime::from_secs(10));
        lm.set_termination("tx1", SimTime::from_secs(1), SimTime::ZERO);
        assert!(!lm.alive("tx1", SimTime::from_secs(1)));
    }

    #[test]
    fn extension_clipped_to_max() {
        let mut lm = LifetimeManager::with_max_extension(SimTime::from_secs(30));
        let lease = lm.grant("s", SimTime::ZERO, SimTime::from_secs(3600));
        assert_eq!(lease.expires_at, SimTime::from_secs(30));
    }

    #[test]
    fn reap_removes_expired_only() {
        let mut lm = LifetimeManager::new();
        lm.grant("a", SimTime::ZERO, SimTime::from_secs(5));
        lm.grant("b", SimTime::ZERO, SimTime::from_secs(50));
        lm.grant("c", SimTime::ZERO, SimTime::from_secs(1));
        let dead = lm.reap(SimTime::from_secs(10));
        assert_eq!(dead, vec!["a".to_string(), "c".to_string()]);
        assert_eq!(lm.len(), 1);
        assert!(lm.alive("b", SimTime::from_secs(10)));
    }

    #[test]
    fn destroy_is_idempotent() {
        let mut lm = LifetimeManager::new();
        lm.grant("a", SimTime::ZERO, SimTime::from_secs(5));
        assert!(lm.destroy("a"));
        assert!(!lm.destroy("a"));
        assert!(lm.is_empty());
    }

    #[test]
    fn set_termination_on_unknown_is_none() {
        let mut lm = LifetimeManager::new();
        assert!(lm
            .set_termination("ghost", SimTime::ZERO, SimTime::from_secs(1))
            .is_none());
    }
}
