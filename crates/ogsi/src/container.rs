//! The service hosting container.
//!
//! The Rust analogue of the GT3 hosting environment each NEESgrid site ran:
//! it owns the site's network endpoint, authenticates callers against
//! established GSI security contexts, dispatches requests to registered
//! services, answers the generic OGSI inspection operations
//! (`ogsi:query`, `ogsi:mostRecentlyChanged`) for any service exposing
//! service data, and runs service housekeeping ticks.
//!
//! Security model: contexts are established out-of-band via
//! [`neesgrid_gsi::authenticate`] (the connection-setup handshake) and
//! installed with [`ServiceContainer::install_session`]. A request from an
//! identity with no live session is refused with `AccessDenied` — this is
//! the enforcement point the paper's §4 leans on, together with per-site
//! action limits checked inside the NTCP service itself.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use parking_lot::Mutex;
use serde_json::{json, Value};

use neesgrid_gridsim::{Endpoint, Envelope, MessageKind, SimTime};
use neesgrid_gsi::{DistinguishedName, SecurityContext};

use crate::fault::ServiceFault;
use crate::rpc::{RpcOutcome, RpcRequest, RpcResponse};
use crate::service::{CallContext, GridService};

/// A container hosting one or more grid services on a node.
pub struct ServiceContainer {
    endpoint: Endpoint,
    services: BTreeMap<String, Box<dyn GridService>>,
    sessions: BTreeMap<DistinguishedName, SecurityContext>,
    /// When true, requests from identities without an installed session are
    /// admitted (used by simulation-only phases and unit tests).
    pub allow_unauthenticated: bool,
}

impl ServiceContainer {
    /// Create a container on an endpoint.
    pub fn new(endpoint: Endpoint) -> Self {
        ServiceContainer {
            endpoint,
            services: BTreeMap::new(),
            sessions: BTreeMap::new(),
            allow_unauthenticated: false,
        }
    }

    /// Register a service under `name` (builder style).
    pub fn with_service(mut self, name: impl Into<String>, svc: Box<dyn GridService>) -> Self {
        self.services.insert(name.into(), svc);
        self
    }

    /// Register a service under `name`.
    pub fn add_service(&mut self, name: impl Into<String>, svc: Box<dyn GridService>) {
        self.services.insert(name.into(), svc);
    }

    /// Install an authenticated session for a client identity.
    pub fn install_session(&mut self, ctx: SecurityContext) {
        self.sessions.insert(ctx.client.clone(), ctx);
    }

    /// Allow unauthenticated callers (builder style).
    pub fn permissive(mut self) -> Self {
        self.allow_unauthenticated = true;
        self
    }

    /// Start the container's dispatch loop on its own thread (channel mode —
    /// the container is a live actor draining its inbox).
    pub fn run(self) -> ContainerHandle {
        let name = format!("container-{}", self.endpoint.id());
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || self.dispatch_loop())
            .expect("spawn container thread");
        ContainerHandle {
            thread: Some(handle),
        }
    }

    /// Attach the container to the network's event engine (handler mode):
    /// incoming envelopes become scheduled events dispatched when virtual
    /// time reaches their delivery timestamp, with no container thread at
    /// all. This is the fully-deterministic hosting mode used by the N-site
    /// scenarios — whoever pumps the engine runs this container.
    pub fn attach(self) -> AttachedContainer {
        let endpoint = self.endpoint.clone();
        let shared = Arc::new(Mutex::new(self));
        let dispatch = Arc::clone(&shared);
        endpoint.install_handler(move |env| dispatch.lock().handle_envelope(env));
        AttachedContainer { container: shared }
    }

    fn dispatch_loop(mut self) {
        while let Some(env) = self.endpoint.recv() {
            self.handle_envelope(env);
        }
    }

    /// Dispatch one envelope: answer requests, absorb one-ways, drop strays.
    fn handle_envelope(&mut self, env: Envelope) {
        match env.kind {
            MessageKind::Request => {
                let reply_to = env.src.clone();
                let correlation = env.correlation_id;
                let service_name = env.service.clone();
                self.endpoint.clock().advance_to(env.delivered_at());
                let now = self.endpoint.clock().now();
                let response = match serde_json::from_slice::<RpcRequest>(&env.payload) {
                    Ok(req) => RpcResponse {
                        request_id: req.request_id,
                        outcome: match self.process(&service_name, &req, now) {
                            Ok(v) => RpcOutcome::Ok(v),
                            Err(f) => RpcOutcome::Fault(f),
                        },
                    },
                    Err(_) => RpcResponse {
                        request_id: correlation,
                        outcome: RpcOutcome::Fault(ServiceFault::permanent(
                            "BadRequest",
                            "undecodable request payload",
                        )),
                    },
                };
                let payload =
                    Bytes::from(serde_json::to_vec(&response).expect("serialize response"));
                self.endpoint.send(
                    reply_to,
                    &service_name,
                    MessageKind::Reply,
                    correlation,
                    payload,
                );
                self.tick_services(now);
            }
            MessageKind::OneWay => {
                self.endpoint.clock().advance_to(env.delivered_at());
                let now = self.endpoint.clock().now();
                if let Ok(req) = serde_json::from_slice::<RpcRequest>(&env.payload) {
                    let _ = self.process(&env.service, &req, now);
                }
                self.tick_services(now);
            }
            MessageKind::Reply | MessageKind::Control => {
                // Containers are pure servers; stray replies/notices are
                // dropped.
            }
        }
    }

    fn process(
        &mut self,
        service_name: &str,
        req: &RpcRequest,
        now: SimTime,
    ) -> Result<Value, ServiceFault> {
        if !self.allow_unauthenticated {
            match self.sessions.get(&req.caller) {
                Some(session) if session.valid_at(now) => {}
                Some(_) => {
                    return Err(ServiceFault::access_denied(format!(
                        "security context for {} expired",
                        req.caller
                    )))
                }
                None => {
                    return Err(ServiceFault::access_denied(format!(
                        "no security context for {}",
                        req.caller
                    )))
                }
            }
        }
        let svc = self.services.get_mut(service_name).ok_or_else(|| {
            ServiceFault::permanent("NoSuchService", format!("no service '{service_name}'"))
        })?;
        let ctx = CallContext {
            caller: req.caller.clone(),
            now,
            request_id: req.request_id,
        };
        match req.operation.as_str() {
            // Generic OGSI inspection operations.
            "ogsi:query" => {
                let pattern = req.body["pattern"].as_str().unwrap_or("*");
                let sde = svc.sde().ok_or_else(|| {
                    ServiceFault::permanent("NoServiceData", "service exposes no SDEs")
                })?;
                let elements: Vec<Value> = sde
                    .query(pattern)
                    .into_iter()
                    .map(|el| serde_json::to_value(el).expect("serialize sde"))
                    .collect();
                Ok(json!({ "elements": elements }))
            }
            "ogsi:mostRecentlyChanged" => {
                let sde = svc.sde().ok_or_else(|| {
                    ServiceFault::permanent("NoServiceData", "service exposes no SDEs")
                })?;
                Ok(match sde.most_recently_changed() {
                    Some(el) => serde_json::to_value(el).expect("serialize sde"),
                    None => Value::Null,
                })
            }
            op => svc.handle(&ctx, op, &req.body),
        }
    }

    fn tick_services(&mut self, now: SimTime) {
        for svc in self.services.values_mut() {
            svc.tick(now);
        }
    }
}

/// Handle to a container attached to the event engine (handler mode).
///
/// Dropping the handle does not detach the container: the network registry
/// keeps the dispatch handler alive until network shutdown, matching how
/// [`ContainerHandle`] detaches its thread.
pub struct AttachedContainer {
    container: Arc<Mutex<ServiceContainer>>,
}

impl AttachedContainer {
    /// Access the hosted container (e.g. to install sessions after attach).
    pub fn with_container<R>(&self, f: impl FnOnce(&mut ServiceContainer) -> R) -> R {
        f(&mut self.container.lock())
    }
}

/// Handle to a running container.
pub struct ContainerHandle {
    thread: Option<JoinHandle<()>>,
}

impl ContainerHandle {
    /// Wait for the container to exit (it exits when its network endpoint
    /// closes, i.e. on network shutdown or node deregistration).
    pub fn join(mut self) {
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ContainerHandle {
    fn drop(&mut self) {
        // Detach; container lifetime is governed by the network.
        let _ = self.thread.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::{RpcClient, RpcError, RpcMux};
    use crate::sde::ServiceData;
    use neesgrid_gridsim::{NetworkConfig, NodeId, VirtualNetwork};
    use neesgrid_gsi::{authenticate, CertificateAuthority, Credential};

    struct Counter {
        count: u64,
        sde: ServiceData,
    }

    impl Counter {
        fn boxed() -> Box<dyn GridService> {
            Box::new(Counter {
                count: 0,
                sde: ServiceData::new(),
            })
        }
    }

    impl GridService for Counter {
        fn service_type(&self) -> &'static str {
            "counter"
        }

        fn handle(
            &mut self,
            ctx: &CallContext,
            operation: &str,
            _body: &Value,
        ) -> Result<Value, ServiceFault> {
            match operation {
                "increment" => {
                    self.count += 1;
                    self.sde.set("count", json!(self.count), ctx.now);
                    Ok(json!({ "count": self.count }))
                }
                other => Err(ServiceFault::no_such_operation(other)),
            }
        }

        fn sde(&mut self) -> Option<&mut ServiceData> {
            Some(&mut self.sde)
        }
    }

    fn caller() -> DistinguishedName {
        DistinguishedName::nees_user("NCSA", "tester")
    }

    fn permissive_setup() -> (VirtualNetwork, RpcClient) {
        let net = VirtualNetwork::new(NetworkConfig::default());
        let container = ServiceContainer::new(net.endpoint("site").unwrap())
            .with_service("counter", Counter::boxed())
            .permissive();
        let _handle = container.run();
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let client = RpcClient::new(mux, NodeId::new("site"), "counter", caller());
        (net, client)
    }

    #[test]
    fn dispatches_to_service() {
        let (_net, client) = permissive_setup();
        assert_eq!(
            client.call_value("increment", Value::Null).unwrap()["count"],
            1
        );
        assert_eq!(
            client.call_value("increment", Value::Null).unwrap()["count"],
            2
        );
    }

    #[test]
    fn unknown_service_faults() {
        let (net, _client) = permissive_setup();
        let mux = RpcMux::new(net.endpoint("client2").unwrap());
        let client = RpcClient::new(mux, NodeId::new("site"), "nope", caller());
        match client.call("x", Value::Null) {
            Err(RpcError::Fault(f)) => assert_eq!(f.code, "NoSuchService"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn generic_sde_query_works() {
        let (_net, client) = permissive_setup();
        client.call("increment", Value::Null).unwrap();
        let out = client
            .call_value("ogsi:query", json!({"pattern": "*"}))
            .unwrap();
        assert_eq!(out["elements"][0]["name"], "count");
        assert_eq!(out["elements"][0]["value"], 1);
        let mrc = client
            .call_value("ogsi:mostRecentlyChanged", Value::Null)
            .unwrap();
        assert_eq!(mrc["name"], "count");
    }

    #[test]
    fn unauthenticated_caller_refused_when_strict() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        let container = ServiceContainer::new(net.endpoint("site").unwrap())
            .with_service("counter", Counter::boxed());
        let _handle = container.run();
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let client = RpcClient::new(mux, NodeId::new("site"), "counter", caller());
        match client.call("increment", Value::Null) {
            Err(RpcError::Fault(f)) => assert_eq!(f.code, "AccessDenied"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn session_admits_caller_until_expiry() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        let ca = CertificateAuthority::nees(1);
        let user = Credential::issue(&ca, caller(), SimTime::ZERO, SimTime::from_secs(100), 1);
        let host = Credential::issue(
            &ca,
            DistinguishedName::nees_host("site", "container"),
            SimTime::ZERO,
            SimTime::from_secs(1000),
            2,
        );
        let session = authenticate(&user, &host, &ca.verifier(), SimTime::ZERO).unwrap();
        let mut container = ServiceContainer::new(net.endpoint("site").unwrap())
            .with_service("counter", Counter::boxed());
        container.install_session(session);
        let _handle = container.run();
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        let client = RpcClient::new(mux, NodeId::new("site"), "counter", caller());
        assert_eq!(
            client.call_value("increment", Value::Null).unwrap()["count"],
            1
        );
        // Push virtual time past context expiry; next call is refused.
        net.clock().advance_to(SimTime::from_secs(200));
        match client.call("increment", Value::Null) {
            Err(RpcError::Fault(f)) => {
                assert_eq!(f.code, "AccessDenied");
                assert!(f.message.contains("expired"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn oneway_requests_are_processed_without_reply() {
        let net = VirtualNetwork::new(NetworkConfig::default());
        let container = ServiceContainer::new(net.endpoint("site").unwrap())
            .with_service("counter", Counter::boxed())
            .permissive();
        let _handle = container.run();
        let mux = RpcMux::new(net.endpoint("client").unwrap());
        // Fire a one-way increment shaped like an RpcRequest.
        let req = RpcRequest {
            request_id: 1,
            caller: caller(),
            operation: "increment".into(),
            body: Value::Null,
        };
        mux.send_oneway(
            NodeId::new("site"),
            "counter",
            &serde_json::to_value(&req).unwrap(),
        );
        // Observe the effect through a normal call.
        let client = RpcClient::new(mux, NodeId::new("site"), "counter", caller());
        let mut last = 0;
        for _ in 0..50 {
            last = client.call_value("increment", Value::Null).unwrap()["count"]
                .as_u64()
                .unwrap();
            if last >= 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(last >= 2, "one-way increment not observed (count={last})");
    }
}
