//! The flight recorder: bounded rings of recent events per subsystem,
//! plus the post-mortem "step 1493 report".
//!
//! The paper's public MOST run died at step 1493 on an error whose cause
//! had to be reconstructed by hand. The flight recorder makes that
//! reconstruction automatic: every trace event is also appended to a small
//! per-subsystem ring buffer, and when the coordinator aborts (or an RPC
//! exhausts its retries) a dump is rendered from the rings, the in-flight
//! spans, and a metrics snapshot — the last N NTCP transactions, per-link
//! drop/reset counters, open proposals, and pending retransmission timers,
//! all at the virtual instant of the failure.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::lock;
use crate::metrics::MetricsSnapshot;
use crate::trace::TraceEvent;

/// Default ring capacity per subsystem: enough for the last ~10 steps of
/// a three-site run (each step is ~a dozen events per subsystem).
pub const DEFAULT_RING_CAPACITY: usize = 128;

/// The dump renderer and the collected dumps.
///
/// The recent-event rings themselves live inside the trace recorder (one
/// lock on the hot path, one `u64` per observation); this type turns the
/// rings, the open spans, and a metrics snapshot into the post-mortem
/// text and keeps every dump produced so far.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    dumps: Mutex<Vec<String>>,
}

impl FlightRecorder {
    /// Render and store a post-mortem dump. `open_spans` are the spans
    /// started but not yet ended at the moment of the failure (in-flight
    /// proposals, armed retransmission timers); `metrics` is the registry
    /// snapshot carrying the per-link counters; `events` is the full
    /// recorded trace, indexed by sequence number to resolve `rings`, the
    /// per-subsystem deques of recent event seqs.
    pub fn dump(
        &self,
        t_ns: u64,
        reason: &str,
        open_spans: &[TraceEvent],
        metrics: &MetricsSnapshot,
        events: &[TraceEvent],
        rings: &[(&'static str, VecDeque<u64>)],
    ) -> String {
        let mut out = String::new();
        out.push_str("==== FLIGHT RECORDER DUMP ====\n");
        out.push_str(&format!("reason: {reason}\n"));
        out.push_str(&format!(
            "virtual-time: {:.6}s ({t_ns} ns)\n",
            t_ns as f64 / 1e9
        ));

        out.push_str("-- in-flight spans (started, not ended) --\n");
        if open_spans.is_empty() {
            out.push_str("  (none)\n");
        }
        for span in open_spans {
            out.push_str("  ");
            out.push_str(&span.to_display_line());
            out.push('\n');
        }

        out.push_str("-- metrics --\n");
        let lines = metrics.to_display_lines();
        if lines.is_empty() {
            out.push_str("  (none)\n");
        }
        for line in &lines {
            out.push_str(line);
            out.push('\n');
        }

        let mut rings: Vec<&(&'static str, VecDeque<u64>)> = rings.iter().collect();
        rings.sort_by_key(|(name, _)| *name);
        for (subsystem, ring) in rings {
            out.push_str(&format!(
                "-- recent {subsystem} events (last {} of ring) --\n",
                ring.len()
            ));
            for seq in ring.iter() {
                if let Some(event) = events.get(*seq as usize) {
                    out.push_str("  ");
                    out.push_str(&event.to_display_line());
                    out.push('\n');
                }
            }
        }

        out.push_str("==== END DUMP ====\n");
        lock(&self.dumps).push(out.clone());
        out
    }

    /// All dumps collected so far, oldest first.
    pub fn dumps(&self) -> Vec<String> {
        lock(&self.dumps).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Field, TraceKind};

    fn event(seq: u64, name: &'static str) -> TraceEvent {
        TraceEvent {
            t_ns: seq * 1000,
            seq,
            kind: TraceKind::Instant,
            span: 0,
            subsystem: "ntcp",
            name,
            fields: [("site", Field::Str("cu".into()))].into(),
        }
    }

    #[test]
    fn ring_is_bounded_and_dump_reports_recent_events() {
        let rec = FlightRecorder::default();
        let events: Vec<TraceEvent> = (0..10).map(|i| event(i, "propose")).collect();
        // A capacity-3 ring: only the last three seqs survived.
        let rings = vec![("ntcp", events[7..].iter().map(|e| e.seq).collect())];
        let dump = rec.dump(
            10_000,
            "test abort",
            &[],
            &MetricsSnapshot::default(),
            &events,
            &rings,
        );
        assert!(dump.contains("reason: test abort"));
        assert!(dump.contains("seq=9"), "newest event kept");
        assert!(!dump.contains("seq=5"), "old events evicted");
        assert_eq!(rec.dumps().len(), 1);
    }
}
