//! CLI for the telemetry crate: `report` renders a trace JSONL file.

use std::process::ExitCode;

use neesgrid_telemetry::render_report;

const USAGE: &str = "\
neesgrid-telemetry — trace tooling for the NEESgrid stack

USAGE:
    neesgrid-telemetry report <trace.jsonl>

Renders a canonical trace (written by Telemetry::export_jsonl, or a
merge_resumed combination) as a per-site / per-step / per-link summary.

Exit codes: 0 ok, 2 usage or I/O error.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => {
            let path = match args.get(1) {
                Some(p) => p,
                None => return usage("report needs a trace file"),
            };
            let jsonl = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => return usage(&format!("cannot read {path}: {e}")),
            };
            match render_report(&jsonl) {
                Ok(report) => {
                    print!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => usage(&format!("{path}: {e}")),
            }
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("neesgrid-telemetry: {msg}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}
