//! Canonical failure signatures extracted from exported trace JSONL.
//!
//! A campaign sweeping hundreds of seeded runs needs to answer "is this
//! failure *new*?" without drowning in duplicates: the same injected
//! fault reproduced under ten seeds must collapse to one corpus entry.
//! Wall-clock-free traces make that possible — but raw trace bytes still
//! differ across seeds (virtual timestamps, sequence numbers, correlation
//! ids, sampled latencies all shift), so equality on bytes is useless.
//!
//! A [`TraceSignature`] is the *shape* of a run with the noise removed:
//!
//! * **termination class** — completed or aborted;
//! * **abort site** — step, site, and a digit-normalised error class from
//!   the `coordinator/abort` instant (the paper's step-1493 failure class
//!   keys on *where* and *why*, not on which seed triggered it);
//! * **aborted transactions** — NTCP spans still open when the trace
//!   ends, i.e. protocol work the abort orphaned;
//! * **injected faults** — every `net` drop/reset/dup instant with its
//!   link and message index (the fault plan as it actually fired);
//! * **phase fingerprint** — a multiset hash over the event skeleton
//!   (subsystem, name, kind, and the salient identifying fields) that
//!   distinguishes runs whose headline facts match but whose control
//!   flow diverged. The fold is commutative (a wrapping sum of per-event
//!   hashes): two seeds interleave concurrent sites differently without
//!   changing *what* happened, so emission order must not feed the
//!   fingerprint — only the set of events and their multiplicities.
//!
//! Explicitly *excluded* everywhere: `t` (virtual time), `seq`, `span`,
//! `corr` (correlation ids), latency samples, and metric snapshot lines.
//! Two runs of the same scenario under different seeds that fail the same
//! way produce the same signature; a genuinely different failure does not.

use std::collections::BTreeSet;

use crate::json::{self, JsonValue};

/// Where and why a run aborted, from the `coordinator/abort` instant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AbortSite {
    /// Integration step at which the coordinator gave up.
    pub step: u64,
    /// Site whose failure was terminal.
    pub site: String,
    /// Error string with runs of digits collapsed to `#` — "link reset
    /// between a and b at index 187" and "... at index 2041" are the same
    /// failure class.
    pub error_class: String,
}

/// One injected fault that actually fired, from a `net` instant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// `drop`, `reset`, or `dup`.
    pub action: String,
    /// Link label, `src->dst`.
    pub link: String,
    /// Per-link message index the fault selected.
    pub index: u64,
}

/// The deduplication key for a run: its failure shape, noise removed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceSignature {
    /// `"completed"` or `"aborted"`.
    pub termination: String,
    /// Present iff the trace carries a `coordinator/abort` instant.
    pub abort: Option<AbortSite>,
    /// NTCP transactions whose spans never closed (sorted, deduped).
    pub aborted_txs: Vec<String>,
    /// Every injected fault that fired, in sorted order.
    pub faults: Vec<FaultEvent>,
    /// Commutative multiset hash over the event skeleton.
    pub fingerprint: u64,
}

/// FNV-1a offset basis / prime (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Field separator so ("ab","c") and ("a","bc") hash apart.
    h ^= 0xff;
    h.wrapping_mul(FNV_PRIME)
}

/// Fields that identify *what* happened rather than *when*: everything
/// else (`t`, `seq`, `span`, `corr`, latency samples) is replay noise.
const SALIENT_FIELDS: [&str; 9] = [
    "step", "attempt", "tx", "site", "link", "index", "op", "ok", "outcome",
];

/// Collapse every run of ASCII digits to a single `#` so error strings
/// that differ only in embedded counters share a class.
fn normalize_digits(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_digits = false;
    for c in s.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
                in_digits = true;
            }
        } else {
            in_digits = false;
            out.push(c);
        }
    }
    out
}

fn field_str(v: &JsonValue) -> String {
    match v {
        JsonValue::Str(s) => s.clone(),
        JsonValue::U64(n) => n.to_string(),
        JsonValue::I64(n) => n.to_string(),
        JsonValue::F64(x) => format!("{x}"),
        JsonValue::Bool(b) => b.to_string(),
        _ => String::new(),
    }
}

impl TraceSignature {
    /// Extract a signature from canonical trace JSONL (the exact string
    /// [`crate::Telemetry::export_jsonl`] produces). Metric snapshot lines
    /// and unparseable lines are skipped; an empty trace yields the
    /// `"completed"` signature with a fixed fingerprint.
    pub fn from_jsonl(src: &str) -> TraceSignature {
        let mut abort: Option<AbortSite> = None;
        let mut faults: Vec<FaultEvent> = Vec::new();
        // span id -> tx name, for ntcp spans still open at trace end.
        let mut open_ntcp: Vec<(u64, String)> = Vec::new();
        let mut fingerprint = 0u64;

        for line in src.lines() {
            let doc = match json::parse(line) {
                Ok(doc) => doc,
                Err(_) => continue,
            };
            let kind = match doc.get("kind").and_then(|v| v.as_str()) {
                Some(k @ ("span_start" | "span_end" | "instant")) => k.to_string(),
                _ => continue, // metric snapshot line or foreign JSON
            };
            let sub = doc
                .get("sub")
                .and_then(|v| v.as_str())
                .unwrap_or_default()
                .to_string();
            let name = doc
                .get("name")
                .and_then(|v| v.as_str())
                .unwrap_or_default()
                .to_string();
            let fields = doc.get("fields");

            // Phase fingerprint: hash this event's skeleton on its own,
            // then fold commutatively — order must not matter.
            let mut h = fnv_bytes(FNV_OFFSET, sub.as_bytes());
            h = fnv_bytes(h, name.as_bytes());
            h = fnv_bytes(h, kind.as_bytes());
            if let Some(fields) = fields {
                for key in SALIENT_FIELDS {
                    if let Some(v) = fields.get(key) {
                        h = fnv_bytes(h, key.as_bytes());
                        h = fnv_bytes(h, field_str(v).as_bytes());
                    }
                }
            }
            fingerprint = fingerprint.wrapping_add(h);

            match (sub.as_str(), kind.as_str()) {
                ("coordinator", "instant") if name == "abort" => {
                    let step = fields
                        .and_then(|f| f.get("step"))
                        .and_then(|v| v.as_u64())
                        .unwrap_or(0);
                    let site = fields
                        .and_then(|f| f.get("site"))
                        .and_then(|v| v.as_str())
                        .unwrap_or("?")
                        .to_string();
                    let error = fields
                        .and_then(|f| f.get("error"))
                        .and_then(|v| v.as_str())
                        .unwrap_or("?");
                    abort = Some(AbortSite {
                        step,
                        site,
                        error_class: normalize_digits(error),
                    });
                }
                ("net", "instant") => {
                    if matches!(name.as_str(), "drop" | "reset" | "dup") {
                        let link = fields
                            .and_then(|f| f.get("link"))
                            .and_then(|v| v.as_str())
                            .unwrap_or("?")
                            .to_string();
                        let index = fields
                            .and_then(|f| f.get("index"))
                            .and_then(|v| v.as_u64())
                            .unwrap_or(0);
                        faults.push(FaultEvent {
                            action: name.clone(),
                            link,
                            index,
                        });
                    }
                }
                ("ntcp", "span_start") => {
                    let span = doc.get("span").and_then(|v| v.as_u64()).unwrap_or(0);
                    let tx = fields
                        .and_then(|f| f.get("tx"))
                        .and_then(|v| v.as_str())
                        .unwrap_or("?")
                        .to_string();
                    if span != 0 {
                        open_ntcp.push((span, tx));
                    }
                }
                ("ntcp", "span_end") => {
                    let span = doc.get("span").and_then(|v| v.as_u64()).unwrap_or(0);
                    open_ntcp.retain(|(id, _)| *id != span);
                }
                _ => {}
            }
        }

        let aborted_txs: Vec<String> = open_ntcp
            .into_iter()
            .map(|(_, tx)| tx)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        faults.sort();
        faults.dedup();

        TraceSignature {
            termination: if abort.is_some() {
                "aborted".to_string()
            } else {
                "completed".to_string()
            },
            abort,
            aborted_txs,
            faults,
            fingerprint,
        }
    }

    /// The run aborted (carried a `coordinator/abort` instant).
    pub fn is_abort(&self) -> bool {
        self.abort.is_some()
    }

    /// Any injected fault actually fired during the run.
    pub fn saw_faults(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Short canonical identifier: a 16-hex-digit hash over *every*
    /// signature component (not just the fingerprint), stable across
    /// processes and suitable as a corpus key or filename stem.
    pub fn id(&self) -> String {
        let mut h = fnv_bytes(FNV_OFFSET, self.termination.as_bytes());
        if let Some(abort) = &self.abort {
            h = fnv_bytes(h, &abort.step.to_le_bytes());
            h = fnv_bytes(h, abort.site.as_bytes());
            h = fnv_bytes(h, abort.error_class.as_bytes());
        }
        for tx in &self.aborted_txs {
            h = fnv_bytes(h, tx.as_bytes());
        }
        for fault in &self.faults {
            h = fnv_bytes(h, fault.action.as_bytes());
            h = fnv_bytes(h, fault.link.as_bytes());
            h = fnv_bytes(h, &fault.index.to_le_bytes());
        }
        h = fnv_bytes(h, &self.fingerprint.to_le_bytes());
        format!("{h:016x}")
    }

    /// Canonical single-line JSON rendering (fixed key order), for
    /// verdict tables and corpus manifests.
    pub fn to_canonical(&self) -> String {
        let mut pairs = vec![
            ("id".to_string(), JsonValue::Str(self.id())),
            (
                "termination".to_string(),
                JsonValue::Str(self.termination.clone()),
            ),
        ];
        if let Some(abort) = &self.abort {
            pairs.push((
                "abort".to_string(),
                JsonValue::Obj(vec![
                    ("step".to_string(), JsonValue::U64(abort.step)),
                    ("site".to_string(), JsonValue::Str(abort.site.clone())),
                    (
                        "error_class".to_string(),
                        JsonValue::Str(abort.error_class.clone()),
                    ),
                ]),
            ));
        }
        pairs.push((
            "aborted_txs".to_string(),
            JsonValue::Arr(
                self.aborted_txs
                    .iter()
                    .map(|tx| JsonValue::Str(tx.clone()))
                    .collect(),
            ),
        ));
        pairs.push((
            "faults".to_string(),
            JsonValue::Arr(
                self.faults
                    .iter()
                    .map(|f| {
                        JsonValue::Obj(vec![
                            ("action".to_string(), JsonValue::Str(f.action.clone())),
                            ("link".to_string(), JsonValue::Str(f.link.clone())),
                            ("index".to_string(), JsonValue::U64(f.index)),
                        ])
                    })
                    .collect(),
            ),
        ));
        pairs.push((
            "fingerprint".to_string(),
            JsonValue::Str(format!("{:016x}", self.fingerprint)),
        ));
        JsonValue::Obj(pairs).to_canonical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, Telemetry};

    fn traced_abort(t0: u64, index: u64, error: &str) -> String {
        let tel = Telemetry::recording();
        let step_span = tel.span_start(t0, "coordinator", "step", [("step", Field::U64(3))]);
        let tx = tel.span_start(
            t0 + 5,
            "ntcp",
            "execute",
            [
                ("site", Field::Str("site-000".into())),
                ("tx", Field::Str("step-000003-a0".into())),
                ("corr", Field::U64(index * 7 + 1)),
            ],
        );
        tel.instant(
            t0 + 9,
            "net",
            "reset",
            [
                ("link", Field::Str("coordinator->site-000".into())),
                ("index", Field::U64(index)),
                ("corr", Field::U64(index * 7 + 1)),
            ],
        );
        tel.instant(
            t0 + 12,
            "coordinator",
            "abort",
            [
                ("step", Field::U64(3)),
                ("site", Field::Str("site-000".into())),
                ("error", Field::Str(error.into())),
            ],
        );
        // Abort unwinds: the step span closes, the ntcp span does not.
        tel.span_end(t0 + 13, step_span, [("step", Field::U64(3))]);
        let _ = tx;
        tel.export_jsonl()
    }

    fn clean_run(t0: u64) -> String {
        let tel = Telemetry::recording();
        let span = tel.span_start(t0, "coordinator", "step", [("step", Field::U64(0))]);
        tel.span_end(t0 + 4, span, [("step", Field::U64(0))]);
        tel.export_jsonl()
    }

    #[test]
    fn clean_run_signature_is_completed_with_no_faults() {
        let sig = TraceSignature::from_jsonl(&clean_run(1_000));
        assert_eq!(sig.termination, "completed");
        assert!(sig.abort.is_none());
        assert!(sig.aborted_txs.is_empty());
        assert!(!sig.saw_faults());
        assert_eq!(sig.id().len(), 16);
    }

    #[test]
    fn abort_signature_captures_site_faults_and_orphaned_tx() {
        let sig = TraceSignature::from_jsonl(&traced_abort(1_000, 186, "link reset at index 186"));
        assert_eq!(sig.termination, "aborted");
        let abort = sig.abort.as_ref().expect("abort captured");
        assert_eq!(abort.step, 3);
        assert_eq!(abort.site, "site-000");
        assert_eq!(abort.error_class, "link reset at index #");
        assert_eq!(sig.aborted_txs, vec!["step-000003-a0".to_string()]);
        assert_eq!(
            sig.faults,
            vec![FaultEvent {
                action: "reset".into(),
                link: "coordinator->site-000".into(),
                index: 186,
            }]
        );
    }

    #[test]
    fn signature_ignores_wall_clock_and_correlation_noise() {
        // Same failure shape at different virtual times with different
        // correlation ids: identical signature and id.
        let a = TraceSignature::from_jsonl(&traced_abort(1_000, 186, "link reset at index 186"));
        let b = TraceSignature::from_jsonl(&traced_abort(77_000, 186, "link reset at index 186"));
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn error_class_normalisation_merges_seed_variant_messages() {
        let a = TraceSignature::from_jsonl(&traced_abort(1_000, 186, "link reset at index 186"));
        let b = TraceSignature::from_jsonl(&traced_abort(1_000, 186, "link reset at index 2041"));
        assert_eq!(a.abort, b.abort, "digit runs collapse to one class");
    }

    #[test]
    fn different_fault_sites_produce_different_ids() {
        let a = TraceSignature::from_jsonl(&traced_abort(1_000, 186, "link reset at index 186"));
        let b = TraceSignature::from_jsonl(&traced_abort(1_000, 187, "link reset at index 187"));
        assert_ne!(a.id(), b.id(), "fault index is part of the signature");
        let clean = TraceSignature::from_jsonl(&clean_run(1_000));
        assert_ne!(a.id(), clean.id());
    }

    #[test]
    fn fingerprint_is_insensitive_to_emission_interleaving() {
        // Two sites' spans interleaved differently (as different seeds'
        // latencies would) — same multiset of events, same fingerprint.
        let interleave = |first: &str, second: &str| {
            let tel = Telemetry::recording();
            let a = tel.span_start(
                10,
                "ntcp",
                "propose",
                [
                    ("site", Field::Str(first.into())),
                    ("tx", Field::Str("step-000001-a0".into())),
                ],
            );
            let b = tel.span_start(
                20,
                "ntcp",
                "propose",
                [
                    ("site", Field::Str(second.into())),
                    ("tx", Field::Str("step-000001-a0".into())),
                ],
            );
            tel.span_end(30, a, [("site", Field::Str(first.into()))]);
            tel.span_end(40, b, [("site", Field::Str(second.into()))]);
            TraceSignature::from_jsonl(&tel.export_jsonl())
        };
        let ab = interleave("site-000", "site-001");
        let ba = interleave("site-001", "site-000");
        assert_eq!(ab.fingerprint, ba.fingerprint);
        assert_eq!(ab.id(), ba.id());
    }

    #[test]
    fn metric_lines_and_garbage_are_skipped() {
        let mut src = clean_run(500);
        src.push_str("{\"kind\":\"counter\",\"name\":\"x\",\"value\":3}\n");
        src.push_str("not json at all\n");
        let sig = TraceSignature::from_jsonl(&src);
        assert_eq!(sig, TraceSignature::from_jsonl(&clean_run(500)));
    }

    #[test]
    fn canonical_rendering_is_stable_and_parseable() {
        let sig = TraceSignature::from_jsonl(&traced_abort(1_000, 186, "link reset at index 186"));
        let line = sig.to_canonical();
        assert_eq!(line, sig.to_canonical());
        let doc = json::parse(&line).expect("canonical form parses");
        assert_eq!(
            doc.get("termination").and_then(|v| v.as_str()),
            Some("aborted")
        );
        assert_eq!(
            doc.get("id").and_then(|v| v.as_str()),
            Some(sig.id().as_str())
        );
    }
}
