//! `neesgrid-telemetry` — deterministic virtual-time observability for the
//! NEESgrid stack: a trace recorder, a metrics registry, and a flight
//! recorder that explains failures like the paper's step-1493 abort.
//!
//! Three design rules keep traces golden-comparable:
//!
//! 1. **No clocks.** This crate never reads wall time or virtual time; the
//!    instrumented caller passes `t_ns` (nanoseconds of `SimTime`) into
//!    every call. The analyzer's `no-wall-clock` lint enforces this.
//! 2. **Total order.** Events carry `(t_ns, seq)` where `seq` is assigned
//!    under the recorder lock in emission order. In a fully-virtual run the
//!    emission order is deterministic, so exported JSONL is byte-identical
//!    across same-seed replays.
//! 3. **Pure observation.** Recording never schedules events, advances
//!    clocks, or perturbs the simulation — an instrumented run computes the
//!    same history as an uninstrumented one, so default goldens are
//!    untouched.
//!
//! The cheap entry point is [`Telemetry`], a cloneable handle that is a
//! no-op when built with [`Telemetry::disabled`] (one `Option` check per
//! call site, no locks, no allocation).

/// Bounded per-subsystem event rings and the post-mortem dump.
pub mod flight;
/// Dependency-free canonical JSON values, serializer, and parser.
pub mod json;
/// Counters, gauges, and fixed-bucket virtual-time histograms.
pub mod metrics;
/// The trace-JSONL → human-readable report renderer.
pub mod report;
/// Noise-free failure signatures for deduplicating campaign runs.
pub mod signature;
/// Trace events, spans, and their canonical wire form.
pub mod trace;

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

pub use flight::{FlightRecorder, DEFAULT_RING_CAPACITY};
pub use json::JsonValue;
pub use metrics::{
    CounterHandle, Histogram, HistogramHandle, MetricsRegistry, MetricsSnapshot, BUCKET_BOUNDS_MS,
};
pub use report::render_report;
pub use signature::{AbortSite, FaultEvent, TraceSignature};
pub use trace::{Field, FieldList, SpanId, TraceEvent, TraceKind, MAX_FIELDS};

/// Trace buffer slots reserved when a recording handle is created (~3 MB).
/// Paid once at startup so the per-event path never reallocates the trace.
const TRACE_PREALLOC_EVENTS: usize = 32 * 1024;

/// Poison-tolerant mutex acquisition: telemetry must keep working while a
/// panicking test thread unwinds, and a half-updated counter is still a
/// better post-mortem than none.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[derive(Debug, Default)]
struct Recorder {
    events: Vec<TraceEvent>,
    next_seq: u64,
    next_span: u64,
    /// Open spans as (span id, index into the append-only `events` vec):
    /// a span start is never cloned, and since only a handful of spans are
    /// ever in flight a linear scan beats a tree.
    open: Vec<(u64, usize)>,
    /// Flight-recorder rings: per-subsystem deques of recent event seqs
    /// (== indices into `events`). Kept inside the recorder so the hot
    /// path touches exactly one lock; there are only a handful of
    /// subsystems, so lookup is a short linear scan.
    rings: Vec<(&'static str, VecDeque<u64>)>,
    ring_capacity: usize,
}

#[derive(Debug)]
struct TelemetryInner {
    rec: Mutex<Recorder>,
    metrics: MetricsRegistry,
    flight: FlightRecorder,
}

/// The instrumentation handle threaded through the stack.
///
/// Clone freely — clones share one recorder. A handle built with
/// [`Telemetry::disabled`] (also the `Default`) makes every method a
/// no-op, which is how default runs keep their goldens byte-identical.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// The no-op handle. All methods return immediately.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A recording handle with the default flight-ring capacity.
    pub fn recording() -> Self {
        Telemetry::recording_with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A recording handle keeping the last `ring_capacity` events per
    /// subsystem in the flight recorder.
    pub fn recording_with_capacity(ring_capacity: usize) -> Self {
        // Reserve the trace buffer up front and fault every page of it in
        // now, like a real flight recorder formatting its ring at power-on:
        // growth reallocations or first-touch page faults mid-run would
        // stall the per-event hot path instead of startup.
        let mut events: Vec<TraceEvent> = Vec::with_capacity(TRACE_PREALLOC_EVENTS);
        events.resize_with(TRACE_PREALLOC_EVENTS, || TraceEvent {
            t_ns: 0,
            seq: 0,
            kind: TraceKind::Instant,
            span: 0,
            subsystem: "",
            name: "",
            fields: FieldList::new(),
        });
        std::hint::black_box(&mut events);
        events.clear();
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                rec: Mutex::new(Recorder {
                    events,
                    next_span: 1,
                    ring_capacity: ring_capacity.max(1),
                    ..Recorder::default()
                }),
                metrics: MetricsRegistry::default(),
                flight: FlightRecorder::default(),
            })),
        }
    }

    /// Whether this handle records anything. Hot paths may use this to
    /// skip building field payloads.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The hot path: one recorder lock, one `Vec` push, no event clones.
    /// The flight ring stores the sequence number (== index into the
    /// append-only event vec), not a copy of the event.
    fn record_locked(
        rec: &mut Recorder,
        t_ns: u64,
        kind: TraceKind,
        span: u64,
        subsystem: &'static str,
        name: &'static str,
        fields: FieldList,
    ) {
        let seq = rec.next_seq;
        rec.next_seq += 1;
        match kind {
            TraceKind::SpanStart => {
                let idx = rec.events.len();
                rec.open.push((span, idx));
            }
            TraceKind::SpanEnd => {
                if let Some(i) = rec.open.iter().position(|(s, _)| *s == span) {
                    rec.open.swap_remove(i);
                }
            }
            TraceKind::Instant => {}
        }
        let ring_idx = match rec.rings.iter().position(|(n, _)| *n == subsystem) {
            Some(i) => i,
            None => {
                rec.rings.push((subsystem, VecDeque::new()));
                rec.rings.len() - 1
            }
        };
        let capacity = rec.ring_capacity;
        let ring = &mut rec.rings[ring_idx].1;
        if ring.len() == capacity {
            ring.pop_front();
        }
        ring.push_back(seq);
        rec.events.push(TraceEvent {
            t_ns,
            seq,
            kind,
            span,
            subsystem,
            name,
            fields,
        });
    }

    /// Record a point event.
    pub fn instant(
        &self,
        t_ns: u64,
        subsystem: &'static str,
        name: &'static str,
        fields: impl Into<FieldList>,
    ) {
        if let Some(inner) = &self.inner {
            let mut rec = lock(&inner.rec);
            Self::record_locked(
                &mut rec,
                t_ns,
                TraceKind::Instant,
                0,
                subsystem,
                name,
                fields.into(),
            );
        }
    }

    /// Open a span. Returns [`SpanId::NONE`] when disabled. The caller is
    /// responsible for closing it on **every** return path — the
    /// analyzer's `telemetry-span-balance` rule checks instrumented
    /// functions for this.
    pub fn span_start(
        &self,
        t_ns: u64,
        subsystem: &'static str,
        name: &'static str,
        fields: impl Into<FieldList>,
    ) -> SpanId {
        match &self.inner {
            None => SpanId::NONE,
            Some(inner) => {
                let mut rec = lock(&inner.rec);
                let span = rec.next_span;
                rec.next_span += 1;
                Self::record_locked(
                    &mut rec,
                    t_ns,
                    TraceKind::SpanStart,
                    span,
                    subsystem,
                    name,
                    fields.into(),
                );
                SpanId(span)
            }
        }
    }

    /// Close a span opened by `span_start`. No-op for [`SpanId::NONE`].
    pub fn span_end(&self, t_ns: u64, span: SpanId, fields: impl Into<FieldList>) {
        if span == SpanId::NONE {
            return;
        }
        if let Some(inner) = &self.inner {
            let mut rec = lock(&inner.rec);
            let (subsystem, name) = match rec.open.iter().find(|(s, _)| *s == span.0) {
                Some(&(_, idx)) => (rec.events[idx].subsystem, rec.events[idx].name),
                None => ("telemetry", "orphan_span_end"),
            };
            Self::record_locked(
                &mut rec,
                t_ns,
                TraceKind::SpanEnd,
                span.0,
                subsystem,
                name,
                fields.into(),
            );
        }
    }

    /// Add `by` to counter `name`.
    pub fn counter_add(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter_add(name, by);
        }
    }

    /// Resolve a counter once for lock-free hot-path updates. On a
    /// disabled handle this returns a detached counter whose updates are
    /// simply discarded, so call sites need no `Option` plumbing.
    pub fn counter_handle(&self, name: &str) -> CounterHandle {
        match &self.inner {
            Some(inner) => inner.metrics.counter_handle(name),
            None => CounterHandle::default(),
        }
    }

    /// Resolve a histogram once for lookup-free hot-path observations.
    /// Detached (observations discarded) on a disabled handle.
    pub fn histogram_handle(&self, name: &str) -> HistogramHandle {
        match &self.inner {
            Some(inner) => inner.metrics.histogram_handle(name),
            None => HistogramHandle::default(),
        }
    }

    /// Read counter `name` (0 when disabled or absent).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            Some(inner) => inner.metrics.counter(name),
            None => 0,
        }
    }

    /// Set gauge `name`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        if let Some(inner) = &self.inner {
            inner.metrics.gauge_set(name, value);
        }
    }

    /// Record a virtual duration into histogram `name`.
    pub fn observe_ns(&self, name: &str, value_ns: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe_ns(name, value_ns);
        }
    }

    /// Snapshot the metrics registry (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Trigger a flight-recorder dump — the "step 1493 report". Renders
    /// the in-flight spans, the metrics snapshot, and the recent-event
    /// rings; stores the dump and returns it. `None` when disabled.
    pub fn flight_dump(&self, t_ns: u64, reason: &str) -> Option<String> {
        let inner = self.inner.as_ref()?;
        let snapshot = inner.metrics.snapshot();
        let rec = lock(&inner.rec);
        // Dump order must be deterministic: sort in-flight spans by id.
        let mut open_ids: Vec<(u64, usize)> = rec.open.clone();
        open_ids.sort_unstable();
        let open: Vec<TraceEvent> = open_ids
            .iter()
            .map(|&(_, idx)| rec.events[idx].clone())
            .collect();
        Some(
            inner
                .flight
                .dump(t_ns, reason, &open, &snapshot, &rec.events, &rec.rings),
        )
    }

    /// All flight dumps collected so far, oldest first.
    pub fn dumps(&self) -> Vec<String> {
        match &self.inner {
            Some(inner) => inner.flight.dumps(),
            None => Vec::new(),
        }
    }

    /// Number of recorded trace events.
    pub fn event_count(&self) -> usize {
        match &self.inner {
            Some(inner) => lock(&inner.rec).events.len(),
            None => 0,
        }
    }

    /// Spans currently open (started, not ended).
    pub fn open_span_count(&self) -> usize {
        match &self.inner {
            Some(inner) => lock(&inner.rec).open.len(),
            None => 0,
        }
    }

    /// Export the full trace as canonical JSONL: every event in emission
    /// order, then one line per metric (sorted by name). Byte-identical
    /// across same-seed fully-virtual replays.
    pub fn export_jsonl(&self) -> String {
        let inner = match &self.inner {
            Some(inner) => inner,
            None => return String::new(),
        };
        let mut out = String::new();
        {
            let rec = lock(&inner.rec);
            for event in &rec.events {
                out.push_str(&event.to_canonical_line());
                out.push('\n');
            }
        }
        for line in inner.metrics.snapshot().to_canonical_lines() {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Step number an exported trace line belongs to, if any: an explicit
/// `step` field, or the step encoded in a `tx` field of the canonical
/// `step-NNNNNN-aK` form.
fn line_step(doc: &JsonValue) -> Option<u64> {
    let fields = doc.get("fields")?;
    if let Some(step) = fields.get("step").and_then(|v| v.as_u64()) {
        return Some(step);
    }
    let tx = fields.get("tx").and_then(|v| v.as_str())?;
    let digits = tx.strip_prefix("step-")?.get(..6)?;
    digits.parse::<u64>().ok()
}

/// Merge the trace of a run that died with the trace of its
/// checkpoint-resumed continuation into one logical experiment trace.
///
/// The resumed trace must contain a `coordinator/resume` event carrying
/// the `step` the continuation restarts from. Primary events at or after
/// that step are dropped (the continuation re-executes them), as are the
/// primary's metric lines (the counters double-count re-executed work);
/// the resumed trace is kept whole. The result has no duplicate
/// transaction spans by construction.
pub fn merge_resumed(primary: &str, resumed: &str) -> Result<String, String> {
    let mut resume_step: Option<u64> = None;
    for line in resumed.lines() {
        let doc = json::parse(line)?;
        if doc.get("sub").and_then(|v| v.as_str()) == Some("coordinator")
            && doc.get("name").and_then(|v| v.as_str()) == Some("resume")
        {
            resume_step = doc
                .get("fields")
                .and_then(|f| f.get("step"))
                .and_then(|v| v.as_u64());
            break;
        }
    }
    let resume_step =
        resume_step.ok_or("resumed trace has no coordinator/resume event with a step field")?;

    let mut out = String::new();
    for line in primary.lines() {
        let doc = json::parse(line)?;
        let kind = doc.get("kind").and_then(|v| v.as_str()).unwrap_or("");
        if matches!(kind, "counter" | "gauge" | "histogram") {
            continue;
        }
        if let Some(step) = line_step(&doc) {
            if step >= resume_step {
                continue;
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    for line in resumed.lines() {
        out.push_str(line);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_no_op() {
        let t = Telemetry::disabled();
        let span = t.span_start(10, "ntcp", "propose", FieldList::new());
        assert_eq!(span, SpanId::NONE);
        t.span_end(20, span, FieldList::new());
        t.counter_add("x", 1);
        assert_eq!(t.counter("x"), 0);
        assert_eq!(t.event_count(), 0);
        assert!(t.export_jsonl().is_empty());
        assert!(t.flight_dump(30, "why").is_none());
    }

    #[test]
    fn spans_pair_and_seq_is_monotonic() {
        let t = Telemetry::recording();
        let a = t.span_start(
            100,
            "ntcp",
            "propose",
            FieldList::from([("tx", Field::U64(1))]),
        );
        t.instant(150, "net", "drop", FieldList::new());
        assert_eq!(t.open_span_count(), 1);
        t.span_end(200, a, FieldList::from([("ok", Field::Bool(true))]));
        assert_eq!(t.open_span_count(), 0);
        let jsonl = t.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"span_start\""));
        assert!(lines[2].contains("\"span_end\""));
        assert!(
            lines[2].contains("\"name\":\"propose\""),
            "end inherits name"
        );
    }

    #[test]
    fn merge_resumed_drops_reexecuted_steps() {
        let t1 = Telemetry::recording();
        for step in 0..4u64 {
            let s = t1.span_start(
                step * 100,
                "ntcp",
                "propose",
                FieldList::from([("tx", Field::Str(format!("step-{step:06}-a0")))]),
            );
            t1.span_end(step * 100 + 10, s, FieldList::new());
        }
        t1.counter_add("ntcp.proposes", 4);

        let t2 = Telemetry::recording();
        t2.instant(
            200,
            "coordinator",
            "resume",
            FieldList::from([("step", Field::U64(2))]),
        );
        for step in 2..5u64 {
            let s = t2.span_start(
                step * 100,
                "ntcp",
                "propose",
                FieldList::from([("tx", Field::Str(format!("step-{step:06}-a0")))]),
            );
            t2.span_end(step * 100 + 10, s, FieldList::new());
        }

        let merged = merge_resumed(&t1.export_jsonl(), &t2.export_jsonl()).expect("merges");
        let mut tx_starts = Vec::new();
        for line in merged.lines() {
            let doc = json::parse(line).expect("line parses");
            if doc.get("kind").and_then(|v| v.as_str()) == Some("span_start") {
                if let Some(tx) = doc
                    .get("fields")
                    .and_then(|f| f.get("tx"))
                    .and_then(|v| v.as_str())
                {
                    tx_starts.push(tx.to_string());
                }
            }
        }
        let mut deduped = tx_starts.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(tx_starts.len(), deduped.len(), "no duplicate tx spans");
        assert_eq!(tx_starts.len(), 5, "steps 0..5 present exactly once");
    }
}
