//! `-- report`: render a trace JSONL into a human-readable summary.
//!
//! The renderer is deliberately tolerant: it aggregates whatever events
//! and metric lines are present (a partial trace from an aborted run is
//! exactly the interesting case) and prints per-site, per-step, and
//! per-link tables.

use std::collections::BTreeMap;

use crate::json::{self, JsonValue};

#[derive(Debug, Default)]
struct SiteRow {
    proposes: u64,
    executes: u64,
    cancels: u64,
    failures: u64,
    dedup_hits: u64,
}

#[derive(Debug, Default)]
struct LinkRow {
    sent: u64,
    delivered: u64,
    dropped: u64,
    reset: u64,
    bytes: u64,
}

#[derive(Debug, Default)]
struct PhaseAgg {
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl PhaseAgg {
    fn add(&mut self, dur_ns: u64) {
        self.count += 1;
        self.sum_ns += dur_ns;
        self.max_ns = self.max_ns.max(dur_ns);
    }

    fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / 1e6
        }
    }
}

fn field_str<'a>(doc: &'a JsonValue, key: &str) -> Option<&'a str> {
    doc.get("fields")?.get(key)?.as_str()
}

fn field_u64(doc: &JsonValue, key: &str) -> Option<u64> {
    doc.get("fields")?.get(key)?.as_u64()
}

/// Split a metric name of the form `family.kind{label}` into
/// `(family.kind, label)`; label is empty when unlabelled.
fn split_label(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(open) => {
            let base = &name[..open];
            let label = name[open + 1..].trim_end_matches('}');
            (base, label)
        }
        None => (name, ""),
    }
}

/// Render a trace (the canonical JSONL produced by
/// [`crate::Telemetry::export_jsonl`], or a merged trace) into a
/// human-readable per-site / per-step / per-link summary.
pub fn render_report(jsonl: &str) -> Result<String, String> {
    let mut events = 0u64;
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    let mut sites: BTreeMap<String, SiteRow> = BTreeMap::new();
    let mut links: BTreeMap<String, LinkRow> = BTreeMap::new();
    let mut phases: BTreeMap<String, PhaseAgg> = BTreeMap::new();
    let mut span_starts: BTreeMap<u64, (u64, String)> = BTreeMap::new();
    let mut steps_completed = 0u64;
    let mut abort: Option<String> = None;
    let mut resumes = 0u64;
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut rtt: Option<(u64, u64, u64)> = None; // (count, sum_ns, max_ns)
    let mut checkpoint_bytes: Vec<u64> = Vec::new();

    for (lineno, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = doc.get("kind").and_then(|v| v.as_str()).unwrap_or("");
        match kind {
            "counter" => {
                if let (Some(name), Some(value)) = (
                    doc.get("name").and_then(|v| v.as_str()),
                    doc.get("value").and_then(|v| v.as_u64()),
                ) {
                    counters.insert(name.to_string(), value);
                    let (base, label) = split_label(name);
                    if let Some(stat) = base.strip_prefix("link.") {
                        let row = links.entry(label.to_string()).or_default();
                        match stat {
                            "sent" => row.sent = value,
                            "delivered" => row.delivered = value,
                            "dropped" => row.dropped = value,
                            "reset" => row.reset = value,
                            "bytes" => row.bytes = value,
                            _ => {}
                        }
                    }
                }
            }
            "gauge" => {}
            "histogram" => {
                if doc.get("name").and_then(|v| v.as_str()) == Some("rpc.rtt_ns") {
                    rtt = Some((
                        doc.get("count").and_then(|v| v.as_u64()).unwrap_or(0),
                        doc.get("sum_ns").and_then(|v| v.as_u64()).unwrap_or(0),
                        doc.get("max_ns").and_then(|v| v.as_u64()).unwrap_or(0),
                    ));
                }
            }
            "span_start" | "span_end" | "instant" => {
                events += 1;
                let t = doc.get("t").and_then(|v| v.as_u64()).unwrap_or(0);
                t_min = t_min.min(t);
                t_max = t_max.max(t);
                let sub = doc.get("sub").and_then(|v| v.as_str()).unwrap_or("");
                let name = doc.get("name").and_then(|v| v.as_str()).unwrap_or("");
                let span = doc.get("span").and_then(|v| v.as_u64()).unwrap_or(0);
                if kind == "span_start" {
                    span_starts.insert(span, (t, name.to_string()));
                }
                match (sub, name, kind) {
                    ("ntcp", "propose" | "execute" | "cancel", "span_end") => {
                        let site = field_str(&doc, "site").unwrap_or("?").to_string();
                        let row = sites.entry(site).or_default();
                        match name {
                            "propose" => row.proposes += 1,
                            "execute" => row.executes += 1,
                            _ => row.cancels += 1,
                        }
                        if field_str(&doc, "outcome")
                            .map(|o| o.starts_with("err") || o == "rejected" || o == "failed")
                            .unwrap_or(false)
                        {
                            row.failures += 1;
                        }
                    }
                    ("ntcp", "dedup_hit", _) => {
                        let site = field_str(&doc, "site").unwrap_or("?").to_string();
                        sites.entry(site).or_default().dedup_hits += 1;
                    }
                    ("coordinator", "step", "span_end") => steps_completed += 1,
                    ("coordinator", phase_name, "span_end") if phase_name.ends_with("_phase") => {
                        if let Some((start_t, _)) = span_starts.get(&span) {
                            phases
                                .entry(phase_name.to_string())
                                .or_default()
                                .add(t.saturating_sub(*start_t));
                        }
                    }
                    ("coordinator", "abort", _) => {
                        abort = Some(format!(
                            "step {} site {} ({})",
                            field_u64(&doc, "step").unwrap_or(0),
                            field_str(&doc, "site").unwrap_or("?"),
                            field_str(&doc, "error").unwrap_or("?"),
                        ));
                    }
                    ("coordinator", "resume", _) => resumes += 1,
                    ("checkpoint", "snapshot", _) => {
                        checkpoint_bytes.push(field_u64(&doc, "bytes").unwrap_or(0));
                    }
                    _ => {}
                }
            }
            other => return Err(format!("line {}: unknown kind '{other}'", lineno + 1)),
        }
    }

    let mut out = String::new();
    out.push_str("neesgrid trace report\n");
    out.push_str("=====================\n");
    if events == 0 {
        out.push_str("  (no trace events)\n");
        return Ok(out);
    }
    out.push_str(&format!(
        "  events: {events}   virtual span: {:.3}s -> {:.3}s\n",
        t_min as f64 / 1e9,
        t_max as f64 / 1e9
    ));
    out.push_str(&format!("  steps completed: {steps_completed}"));
    match &abort {
        Some(a) => out.push_str(&format!("   ABORTED at {a}\n")),
        None => out.push('\n'),
    }
    if resumes > 0 {
        out.push_str(&format!("  checkpoint resumes: {resumes}\n"));
    }

    if !sites.is_empty() {
        out.push_str("\nper-site NTCP activity\n");
        out.push_str(&format!(
            "  {:<14} {:>9} {:>9} {:>8} {:>9} {:>11}\n",
            "site", "proposes", "executes", "cancels", "failures", "dedup-hits"
        ));
        for (site, row) in &sites {
            out.push_str(&format!(
                "  {:<14} {:>9} {:>9} {:>8} {:>9} {:>11}\n",
                site, row.proposes, row.executes, row.cancels, row.failures, row.dedup_hits
            ));
        }
    }

    if !phases.is_empty() {
        out.push_str("\nper-step coordinator phases (virtual time)\n");
        for (phase, agg) in &phases {
            out.push_str(&format!(
                "  {:<16} n={:<7} mean={:.3}ms max={:.3}ms\n",
                phase,
                agg.count,
                agg.mean_ms(),
                agg.max_ns as f64 / 1e6
            ));
        }
    }

    if !links.is_empty() {
        out.push_str("\nper-link traffic\n");
        out.push_str(&format!(
            "  {:<28} {:>7} {:>9} {:>7} {:>6} {:>12}\n",
            "link", "sent", "delivered", "dropped", "reset", "bytes"
        ));
        for (link, row) in &links {
            out.push_str(&format!(
                "  {:<28} {:>7} {:>9} {:>7} {:>6} {:>12}\n",
                link, row.sent, row.delivered, row.dropped, row.reset, row.bytes
            ));
        }
    }

    let rpc_calls = counters.get("rpc.calls").copied().unwrap_or(0);
    if rpc_calls > 0 {
        out.push_str("\nrpc\n");
        out.push_str(&format!(
            "  calls={rpc_calls} retries={} failures={} completion-waits={}\n",
            counters.get("rpc.retries").copied().unwrap_or(0),
            counters.get("rpc.failures").copied().unwrap_or(0),
            counters.get("rpc.completion_waits").copied().unwrap_or(0),
        ));
        if let Some((count, sum_ns, max_ns)) = rtt {
            let mean_ms = if count == 0 {
                0.0
            } else {
                sum_ns as f64 / count as f64 / 1e6
            };
            out.push_str(&format!(
                "  rtt: n={count} mean={mean_ms:.3}ms max={:.3}ms\n",
                max_ns as f64 / 1e6
            ));
        }
    }

    let nsds: Vec<(&String, &u64)> = counters
        .iter()
        .filter(|(k, _)| k.starts_with("nsds."))
        .collect();
    if !nsds.is_empty() {
        out.push_str("\ndaq / NSDS subscribers\n");
        for (name, value) in nsds {
            out.push_str(&format!("  {name:<44} {value:>10}\n"));
        }
    }

    if !checkpoint_bytes.is_empty() {
        let total: u64 = checkpoint_bytes.iter().sum();
        out.push_str(&format!(
            "\ncheckpoint: {} snapshots, {} bytes total, last {} bytes\n",
            checkpoint_bytes.len(),
            total,
            checkpoint_bytes.last().copied().unwrap_or(0)
        ));
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Field;
    use crate::Telemetry;

    #[test]
    fn report_summarizes_sites_links_and_abort() {
        let t = Telemetry::recording();
        let s = t.span_start(
            1_000_000,
            "ntcp",
            "propose",
            [
                ("site", Field::Str("cu".into())),
                ("tx", Field::Str("step-000149-a0".into())),
            ],
        );
        t.span_end(
            2_000_000,
            s,
            [
                ("site", Field::Str("cu".into())),
                ("outcome", Field::Str("err_transport".into())),
            ],
        );
        t.instant(
            3_000_000,
            "coordinator",
            "abort",
            [
                ("step", Field::U64(149)),
                ("site", Field::Str("cu".into())),
                ("error", Field::Str("link reset by peer".into())),
            ],
        );
        t.counter_add("link.dropped{coordinator->cu}", 1);
        t.counter_add("link.sent{coordinator->cu}", 42);
        let report = render_report(&t.export_jsonl()).expect("renders");
        assert!(report.contains("ABORTED at step 149 site cu (link reset by peer)"));
        assert!(report.contains("coordinator->cu"));
        assert!(report.contains("cu"));
        assert!(report.contains("failures"));
    }

    #[test]
    fn empty_trace_is_not_an_error() {
        let report = render_report("").expect("renders");
        assert!(report.contains("no trace events"));
    }
}
