//! Metrics registry: counters, gauges, and fixed-bucket virtual-time
//! histograms.
//!
//! Designed for hot paths: a disabled [`crate::Telemetry`] handle never
//! reaches this module, and an enabled one pays one mutex acquisition and
//! one `BTreeMap` lookup per update. Histogram buckets are fixed at
//! compile time so that the exported form is identical across runs by
//! construction. All durations are **virtual** nanoseconds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::JsonValue;
use crate::lock;

/// Histogram bucket upper bounds, in virtual milliseconds. The final
/// implicit bucket is `+inf`. Chosen around the WAN latencies the paper's
/// testbed saw (tens to hundreds of milliseconds per two-phase exchange).
pub const BUCKET_BOUNDS_MS: [u64; 12] = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000];

/// A fixed-bucket histogram of virtual durations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts; index `i` counts values `<= BUCKET_BOUNDS_MS[i]`,
    /// with one trailing overflow bucket.
    pub buckets: [u64; BUCKET_BOUNDS_MS.len() + 1],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values, ns.
    pub sum_ns: u64,
    /// Largest observed value, ns.
    pub max_ns: u64,
}

impl Histogram {
    fn observe(&mut self, value_ns: u64) {
        let ms = value_ns / 1_000_000;
        let idx = BUCKET_BOUNDS_MS
            .iter()
            .position(|bound| ms <= *bound)
            .unwrap_or(BUCKET_BOUNDS_MS.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(value_ns);
        self.max_ns = self.max_ns.max(value_ns);
    }

    /// Mean observation in virtual milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_ns as f64 / self.count as f64) / 1e6
        }
    }
}

/// A pre-resolved counter: updates are one relaxed atomic add — no lock,
/// no name lookup. Obtain via [`MetricsRegistry::counter_handle`] (or
/// `Telemetry::counter_handle`) once, then use on the hot path.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Add `by` to the counter.
    pub fn add(&self, by: u64) {
        self.0.fetch_add(by, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A pre-resolved histogram: one small mutex per observation, no name
/// lookup. Obtain via [`MetricsRegistry::histogram_handle`] once.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Record one virtual duration.
    pub fn observe_ns(&self, value_ns: u64) {
        lock(&self.0).observe(value_ns);
    }
}

/// An immutable view of the registry at one moment.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Render as canonical JSON lines, one metric per line, sorted by
    /// kind then name (deterministic given deterministic values).
    pub fn to_canonical_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (name, value) in &self.counters {
            lines.push(
                JsonValue::Obj(vec![
                    ("kind".into(), JsonValue::Str("counter".into())),
                    ("name".into(), JsonValue::Str(name.clone())),
                    ("value".into(), JsonValue::U64(*value)),
                ])
                .to_canonical(),
            );
        }
        for (name, value) in &self.gauges {
            lines.push(
                JsonValue::Obj(vec![
                    ("kind".into(), JsonValue::Str("gauge".into())),
                    ("name".into(), JsonValue::Str(name.clone())),
                    ("value".into(), JsonValue::I64(*value)),
                ])
                .to_canonical(),
            );
        }
        for (name, h) in &self.histograms {
            lines.push(
                JsonValue::Obj(vec![
                    ("kind".into(), JsonValue::Str("histogram".into())),
                    ("name".into(), JsonValue::Str(name.clone())),
                    ("count".into(), JsonValue::U64(h.count)),
                    ("sum_ns".into(), JsonValue::U64(h.sum_ns)),
                    ("max_ns".into(), JsonValue::U64(h.max_ns)),
                    (
                        "buckets".into(),
                        JsonValue::Arr(h.buckets.iter().map(|n| JsonValue::U64(*n)).collect()),
                    ),
                ])
                .to_canonical(),
            );
        }
        lines
    }

    /// Render as aligned human-readable lines for reports and dumps.
    pub fn to_display_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (name, value) in &self.counters {
            lines.push(format!("  {name:<44} {value:>10}"));
        }
        for (name, value) in &self.gauges {
            lines.push(format!("  {name:<44} {value:>10}"));
        }
        for (name, h) in &self.histograms {
            lines.push(format!(
                "  {name:<44} n={:<7} mean={:.3}ms max={:.3}ms",
                h.count,
                h.mean_ms(),
                h.max_ns as f64 / 1e6
            ));
        }
        lines
    }
}

/// Counters, gauges, and histograms, keyed by name. Clone-free interior
/// mutability so one registry can be shared by every subsystem.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, CounterHandle>>,
    gauges: Mutex<BTreeMap<String, i64>>,
    histograms: Mutex<BTreeMap<String, HistogramHandle>>,
}

impl MetricsRegistry {
    /// Resolve (creating at zero) a counter once; the handle then updates
    /// without locking the registry.
    pub fn counter_handle(&self, name: &str) -> CounterHandle {
        let mut g = lock(&self.counters);
        match g.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = CounterHandle::default();
                g.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// Resolve (creating empty) a histogram once; the handle then records
    /// without locking the registry.
    pub fn histogram_handle(&self, name: &str) -> HistogramHandle {
        let mut g = lock(&self.histograms);
        match g.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = HistogramHandle::default();
                g.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// Add `by` to the counter `name`, creating it at zero.
    pub fn counter_add(&self, name: &str, by: u64) {
        let g = lock(&self.counters);
        match g.get(name) {
            Some(h) => h.add(by),
            None => {
                drop(g);
                self.counter_handle(name).add(by);
            }
        }
    }

    /// Set gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        lock(&self.gauges).insert(name.to_string(), value);
    }

    /// Record a virtual duration into histogram `name`.
    pub fn observe_ns(&self, name: &str, value_ns: u64) {
        let g = lock(&self.histograms);
        match g.get(name) {
            Some(h) => h.observe_ns(value_ns),
            None => {
                drop(g);
                self.histogram_handle(name).observe_ns(value_ns);
            }
        }
    }

    /// Read one counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        lock(&self.counters).get(name).map(|h| h.get()).unwrap_or(0)
    }

    /// Snapshot everything, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, h)| (k.clone(), h.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, h)| (k.clone(), lock(&h.0).clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_summary() {
        let reg = MetricsRegistry::default();
        reg.observe_ns("rpc.rtt", 500_000); // 0.5 ms → bucket 0 (<=1ms)
        reg.observe_ns("rpc.rtt", 45_000_000); // 45 ms → <=50ms bucket
        reg.observe_ns("rpc.rtt", 9_000_000_000); // 9 s → overflow
        let snap = reg.snapshot();
        let (_, h) = &snap.histograms[0];
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[5], 1);
        assert_eq!(h.buckets[BUCKET_BOUNDS_MS.len()], 1);
        assert_eq!(h.max_ns, 9_000_000_000);
    }

    #[test]
    fn counters_and_gauges_snapshot_sorted() {
        let reg = MetricsRegistry::default();
        reg.counter_add("z.later", 2);
        reg.counter_add("a.first", 1);
        reg.counter_add("z.later", 3);
        reg.gauge_set("depth", -4);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.first".to_string(), 1), ("z.later".to_string(), 5)]
        );
        assert_eq!(snap.gauges, vec![("depth".to_string(), -4)]);
        assert_eq!(reg.counter("z.later"), 5);
        assert!(snap.to_canonical_lines()[0].contains("\"counter\""));
    }
}
