//! Canonical JSON: a hand-rolled writer and a minimal parser.
//!
//! Trace files must be **byte-identical** across same-seed replays, so the
//! serialized form cannot depend on a serializer implementation detail
//! (hash-map iteration order, float formatting strategy, …). This module
//! pins the canonical form: objects preserve insertion order, strings are
//! escaped minimally (`"` `\` and control characters only), and floats use
//! Rust's shortest round-trip `Display` formatting. The parser accepts
//! exactly the subset the writer emits (plus whitespace), which is all the
//! `-- report` renderer needs.

/// A JSON value. Objects preserve insertion order — canonical output is
/// whatever order the producer chose, not an alphabetized or hashed one.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (only produced for values below zero).
    I64(i64),
    /// A finite float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::U64(n) => Some(*n as f64),
            JsonValue::I64(n) => Some(*n as f64),
            JsonValue::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Serialize to the canonical single-line form.
    pub fn to_canonical(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(n) => out.push_str(&n.to_string()),
            JsonValue::I64(n) => out.push_str(&n.to_string()),
            JsonValue::F64(x) => {
                // Shortest round-trip form; never NaN/inf (callers guard).
                if x.is_finite() {
                    let s = format!("{x}");
                    out.push_str(&s);
                    // `1.0f64` displays as "1"; that is still canonical and
                    // parses back as a number, so leave it.
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a single canonical JSON document.
pub fn parse(src: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.keyword("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected byte {other:?} at offset {}", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad keyword at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    if let Some(c) = s.chars().next() {
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(JsonValue::I64(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_forms_the_tracer_emits() {
        let doc = JsonValue::Obj(vec![
            ("t".into(), JsonValue::U64(1_500_000)),
            ("name".into(), JsonValue::Str("propose \"x\"\n".into())),
            ("ok".into(), JsonValue::Bool(true)),
            ("rtt".into(), JsonValue::F64(3.25)),
            (
                "arr".into(),
                JsonValue::Arr(vec![JsonValue::I64(-2), JsonValue::Null]),
            ),
        ]);
        let line = doc.to_canonical();
        let back = parse(&line).expect("canonical form parses");
        assert_eq!(back, doc);
        // Canonical means stable: serialize → parse → serialize is identity.
        assert_eq!(back.to_canonical(), line);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }
}
