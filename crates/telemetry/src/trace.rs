//! Structured trace events stamped from the simulation's virtual clock.
//!
//! Every event carries a virtual timestamp (`t_ns`, nanoseconds of
//! `SimTime`) supplied by the *caller* — this crate never reads a clock of
//! any kind, wall or virtual — plus a process-wide monotonic sequence
//! number that breaks ties between events emitted at the same virtual
//! instant. In a fully-virtual run (every actor attached to the event
//! engine) the emission order is deterministic, so the `(t_ns, seq)`
//! stamps — and therefore the exported JSONL bytes — are identical across
//! same-seed replays.

use crate::json::JsonValue;

/// A field value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (finite).
    F64(f64),
    /// String.
    Str(String),
    /// Static string: zero-alloc on the hot path (fixed taxonomy tags
    /// like outcomes); renders identically to [`Field::Str`].
    Static(&'static str),
    /// Shared string: zero-alloc clone for values fixed per component
    /// (site names); renders identically to [`Field::Str`].
    Shared(std::sync::Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Field {
    fn to_json(&self) -> JsonValue {
        match self {
            Field::U64(n) => JsonValue::U64(*n),
            Field::I64(n) => JsonValue::I64(*n),
            Field::F64(x) => JsonValue::F64(*x),
            Field::Str(s) => JsonValue::Str(s.clone()),
            Field::Static(s) => JsonValue::Str((*s).to_string()),
            Field::Shared(s) => JsonValue::Str(s.to_string()),
            Field::Bool(b) => JsonValue::Bool(*b),
        }
    }
}

/// What an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The opening edge of a span.
    SpanStart,
    /// The closing edge of a span.
    SpanEnd,
    /// A point event with no duration.
    Instant,
}

impl TraceKind {
    /// The canonical wire name.
    pub fn wire_name(&self) -> &'static str {
        match self {
            TraceKind::SpanStart => "span_start",
            TraceKind::SpanEnd => "span_end",
            TraceKind::Instant => "instant",
        }
    }
}

/// Maximum fields per trace event. The taxonomy's widest emitter (the RPC
/// retry instant) uses four; the cap lets events store fields inline, so
/// recording never heap-allocates a per-event field vector.
pub const MAX_FIELDS: usize = 4;

/// A fixed-capacity, inline key/value list.
///
/// Retaining tens of thousands of events must not mean tens of thousands
/// of live heap blocks: a growing heap stalls the record hot path on
/// allocator slow paths and first-touch page faults, which is exactly the
/// perturbation a tracer is not allowed to add. Fields beyond
/// [`MAX_FIELDS`] are debug-asserted and dropped in release builds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FieldList {
    slots: [Option<(&'static str, Field)>; MAX_FIELDS],
}

impl FieldList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a field (no-op past capacity; asserts in debug builds).
    pub fn push(&mut self, key: &'static str, value: Field) {
        for slot in self.slots.iter_mut() {
            if slot.is_none() {
                *slot = Some((key, value));
                return;
            }
        }
        debug_assert!(false, "trace event exceeds MAX_FIELDS={MAX_FIELDS}");
    }

    /// Iterate the fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(&'static str, Field)> {
        self.slots.iter().flatten()
    }
}

impl<const N: usize> From<[(&'static str, Field); N]> for FieldList {
    fn from(arr: [(&'static str, Field); N]) -> Self {
        let mut list = FieldList::new();
        for (key, value) in arr {
            list.push(key, value);
        }
        list
    }
}

/// Identifier tying a span's start and end edges together. `SpanId(0)`
/// is the null span returned by a disabled recorder; ending it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span.
    pub const NONE: SpanId = SpanId(0);
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual timestamp in nanoseconds (from `SimClock`, never wall time).
    pub t_ns: u64,
    /// Monotonic sequence number, unique per recorder.
    pub seq: u64,
    /// Start / end / instant.
    pub kind: TraceKind,
    /// Span identifier (0 for instants).
    pub span: u64,
    /// Which subsystem emitted it (`net`, `rpc`, `ntcp`, `coordinator`,
    /// `daq`, `checkpoint`).
    pub subsystem: &'static str,
    /// Event name within the subsystem's taxonomy. Names are static — the
    /// taxonomy is fixed at compile time — which keeps the record hot path
    /// free of a per-event allocation.
    pub name: &'static str,
    /// Ordered key/value payload (inline, at most [`MAX_FIELDS`]).
    pub fields: FieldList,
}

impl TraceEvent {
    /// The canonical single-line JSON form, with a fixed key order:
    /// `t, seq, kind, span, sub, name, fields`.
    pub fn to_canonical_line(&self) -> String {
        let mut pairs = vec![
            ("t".to_string(), JsonValue::U64(self.t_ns)),
            ("seq".to_string(), JsonValue::U64(self.seq)),
            (
                "kind".to_string(),
                JsonValue::Str(self.kind.wire_name().to_string()),
            ),
        ];
        if self.span != 0 {
            pairs.push(("span".to_string(), JsonValue::U64(self.span)));
        }
        pairs.push((
            "sub".to_string(),
            JsonValue::Str(self.subsystem.to_string()),
        ));
        pairs.push(("name".to_string(), JsonValue::Str(self.name.to_string())));
        let fields = self
            .fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_json()))
            .collect();
        pairs.push(("fields".to_string(), JsonValue::Obj(fields)));
        JsonValue::Obj(pairs).to_canonical()
    }

    /// A compact one-line human rendering (used by the flight recorder).
    pub fn to_display_line(&self) -> String {
        let mut line = format!(
            "t={:>12} seq={:<6} {:<10} {}/{}",
            self.t_ns,
            self.seq,
            self.kind.wire_name(),
            self.subsystem,
            self.name
        );
        for (k, v) in self.fields.iter() {
            let rendered = match v {
                Field::U64(n) => n.to_string(),
                Field::I64(n) => n.to_string(),
                Field::F64(x) => format!("{x}"),
                Field::Str(s) => s.clone(),
                Field::Static(s) => (*s).to_string(),
                Field::Shared(s) => s.to_string(),
                Field::Bool(b) => b.to_string(),
            };
            line.push_str(&format!(" {k}={rendered}"));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn canonical_line_has_fixed_key_order_and_parses() {
        let ev = TraceEvent {
            t_ns: 15_000_000,
            seq: 7,
            kind: TraceKind::SpanStart,
            span: 3,
            subsystem: "ntcp",
            name: "propose",
            fields: [
                ("site", Field::Str("cu".into())),
                ("tx", Field::Str("step-000149-a0".into())),
            ]
            .into(),
        };
        let line = ev.to_canonical_line();
        assert!(line.starts_with(r#"{"t":15000000,"seq":7,"kind":"span_start","span":3,"#));
        let doc = json::parse(&line).expect("line parses");
        assert_eq!(doc.get("sub").and_then(|v| v.as_str()), Some("ntcp"));
        assert_eq!(
            doc.get("fields")
                .and_then(|f| f.get("tx"))
                .and_then(|v| v.as_str()),
            Some("step-000149-a0")
        );
    }
}
