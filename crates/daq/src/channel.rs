//! DAQ channel configuration.
//!
//! §3.3: experimenters described "the structural configuration, material
//! properties, and instrumentation" so that "non-participants viewing the
//! stored data can understand the meaning of the sensor data". A
//! [`ChannelConfig`] is the instrumentation half of that: name, unit,
//! sampling rate, and the linear calibration applied to raw readings.

use serde::{Deserialize, Serialize};

/// Linear calibration `engineering = scale · raw + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Multiplicative factor.
    pub scale: f64,
    /// Additive offset.
    pub offset: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            scale: 1.0,
            offset: 0.0,
        }
    }
}

impl Calibration {
    /// Apply the calibration to a raw value.
    pub fn apply(&self, raw: f64) -> f64 {
        self.scale * raw + self.offset
    }

    /// Invert the calibration (engineering → raw).
    pub fn invert(&self, engineering: f64) -> f64 {
        (engineering - self.offset) / self.scale
    }
}

/// Configuration for one acquisition channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Globally unique channel name, e.g. `"uiuc/lvdt-1"`.
    pub name: String,
    /// Engineering unit after calibration.
    pub unit: String,
    /// Sampling rate, Hz.
    pub rate_hz: f64,
    /// Linear calibration.
    pub calibration: Calibration,
}

impl ChannelConfig {
    /// A channel with identity calibration.
    pub fn new(name: impl Into<String>, unit: impl Into<String>, rate_hz: f64) -> Self {
        assert!(rate_hz > 0.0, "sampling rate must be positive");
        ChannelConfig {
            name: name.into(),
            unit: unit.into(),
            rate_hz,
            calibration: Calibration::default(),
        }
    }

    /// Builder: set calibration.
    pub fn with_calibration(mut self, scale: f64, offset: f64) -> Self {
        self.calibration = Calibration { scale, offset };
        self
    }

    /// Sample interval in nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        (1e9 / self.rate_hz).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_roundtrip() {
        let c = Calibration {
            scale: 2.5,
            offset: -1.0,
        };
        let raw = 3.2;
        assert!((c.invert(c.apply(raw)) - raw).abs() < 1e-12);
        assert_eq!(c.apply(0.0), -1.0);
    }

    #[test]
    fn default_calibration_is_identity() {
        let c = Calibration::default();
        assert_eq!(c.apply(7.5), 7.5);
    }

    #[test]
    fn channel_interval() {
        let ch = ChannelConfig::new("uiuc/lvdt-1", "m", 100.0);
        assert_eq!(ch.interval_ns(), 10_000_000);
        let fast = ChannelConfig::new("x", "m", 1000.0);
        assert_eq!(fast.interval_ns(), 1_000_000);
    }

    #[test]
    fn builder_sets_calibration() {
        let ch = ChannelConfig::new("load", "N", 50.0).with_calibration(10.0, 5.0);
        assert_eq!(ch.calibration.apply(1.0), 15.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = ChannelConfig::new("x", "m", 0.0);
    }
}
