//! # neesgrid-daq — data acquisition and streaming
//!
//! The measurement path of Figure 10: sensors feed a site-local **DAQ
//! system** (both MOST sites ran LabVIEW); the DAQ periodically deposits
//! completed data windows into a network-mounted directory (the
//! **file-drop** stage), from which an uploader ships them to the
//! repository; in parallel, the **NEESgrid Streaming Data Service (NSDS)**
//! offers "a best-effort stream of real-time data" to remote observers —
//! best-effort meaning a slow subscriber loses old samples rather than
//! stalling the experiment.
//!
//! * [`timeseries`] — timestamped sample series with CSV encode/decode
//!   (the interchange format of the file-drop stage);
//! * [`channel`] — channel configuration and calibration;
//! * [`sampler`] — the sampling engine: polls signal sources at per-channel
//!   rates over a virtual-time window;
//! * [`filedrop`] — the shared-directory handoff between LabVIEW and the
//!   repository uploader;
//! * [`nsds`] — the streaming service with bounded, loss-counting
//!   subscriptions;
//! * [`capture`] — byte-stable JSONL encoding of captured NSDS samples,
//!   the durable form the archive stores and replicates.

pub mod capture;
pub mod channel;
pub mod filedrop;
pub mod nsds;
pub mod sampler;
pub mod timeseries;

pub use capture::{decode_jsonl, encode_jsonl};
pub use channel::{Calibration, ChannelConfig};
pub use filedrop::{DropFile, FileDropDir};
pub use nsds::{NsdsSample, NsdsServer, NsdsSubscription};
pub use sampler::{DaqSystem, SignalSource};
pub use timeseries::{Sample, TimeSeries};
