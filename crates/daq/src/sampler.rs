//! The sampling engine.
//!
//! Polls each channel's signal source at its configured rate across a
//! window of virtual time — the software analogue of the LabVIEW VI that
//! "periodically gathered data deposited by the DAQ". Sources are closures
//! or sensor adapters; in the MOST runner they read the specimen/actuator
//! state captured at each pseudo-dynamic step.

use std::collections::HashMap;

use neesgrid_gridsim::SimTime;

use crate::channel::ChannelConfig;
use crate::timeseries::TimeSeries;

/// A source of truth a channel samples.
pub trait SignalSource: Send {
    /// The physical value at virtual time `t` (pre-calibration raw units).
    fn value(&mut self, t: SimTime) -> f64;
}

impl<F: FnMut(SimTime) -> f64 + Send> SignalSource for F {
    fn value(&mut self, t: SimTime) -> f64 {
        self(t)
    }
}

/// A multi-channel data acquisition system.
pub struct DaqSystem {
    channels: Vec<(ChannelConfig, Box<dyn SignalSource>)>,
    /// Next sample time per channel.
    next_sample: HashMap<String, SimTime>,
}

impl DaqSystem {
    /// An empty DAQ.
    pub fn new() -> Self {
        DaqSystem {
            channels: Vec::new(),
            next_sample: HashMap::new(),
        }
    }

    /// Add a channel backed by a source.
    pub fn add_channel(&mut self, config: ChannelConfig, source: Box<dyn SignalSource>) {
        assert!(
            !self.next_sample.contains_key(&config.name),
            "duplicate channel {}",
            config.name
        );
        self.next_sample.insert(config.name.clone(), SimTime::ZERO);
        self.channels.push((config, source));
    }

    /// Channel count.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Sample every channel across `[from, to)` at its own rate, applying
    /// calibration, and return one series per channel (channel order).
    pub fn acquire(&mut self, from: SimTime, to: SimTime) -> Vec<TimeSeries> {
        let mut out = Vec::with_capacity(self.channels.len());
        for (config, source) in self.channels.iter_mut() {
            let mut ts = TimeSeries::new(config.name.clone(), config.unit.clone());
            let interval = SimTime::from_nanos(config.interval_ns());
            let mut t = *self
                .next_sample
                .get(&config.name)
                .expect("channel registered");
            if t < from {
                t = from;
            }
            while t < to {
                let raw = source.value(t);
                ts.push(t, config.calibration.apply(raw));
                t += interval;
            }
            self.next_sample.insert(config.name.clone(), t);
            out.push(ts);
        }
        out
    }
}

impl Default for DaqSystem {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_at_configured_rate() {
        let mut daq = DaqSystem::new();
        daq.add_channel(
            ChannelConfig::new("sine", "m", 100.0),
            Box::new(|t: SimTime| (t.as_secs_f64() * 10.0).sin()),
        );
        let series = daq.acquire(SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].len(), 100);
        assert_eq!(series[0].samples[1].t, SimTime::from_millis(10));
    }

    #[test]
    fn successive_windows_do_not_duplicate_samples() {
        let mut daq = DaqSystem::new();
        daq.add_channel(
            ChannelConfig::new("c", "m", 100.0),
            Box::new(|_t: SimTime| 1.0),
        );
        let a = daq.acquire(SimTime::ZERO, SimTime::from_millis(105));
        let b = daq.acquire(SimTime::from_millis(105), SimTime::from_millis(200));
        // 0..105 ms at 10 ms → 11 samples (0,10,…,100); next starts at 110.
        assert_eq!(a[0].len(), 11);
        assert_eq!(b[0].samples[0].t, SimTime::from_millis(110));
        let total = a[0].len() + b[0].len();
        assert_eq!(total, 20);
    }

    #[test]
    fn calibration_applied() {
        let mut daq = DaqSystem::new();
        daq.add_channel(
            ChannelConfig::new("c", "N", 10.0).with_calibration(2.0, 1.0),
            Box::new(|_t: SimTime| 5.0),
        );
        let series = daq.acquire(SimTime::ZERO, SimTime::from_millis(100));
        assert_eq!(series[0].samples[0].value, 11.0);
    }

    #[test]
    fn channels_sample_at_independent_rates() {
        let mut daq = DaqSystem::new();
        daq.add_channel(
            ChannelConfig::new("fast", "m", 1000.0),
            Box::new(|_t: SimTime| 0.0),
        );
        daq.add_channel(
            ChannelConfig::new("slow", "m", 10.0),
            Box::new(|_t: SimTime| 0.0),
        );
        let series = daq.acquire(SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(series[0].len(), 1000);
        assert_eq!(series[1].len(), 10);
    }

    #[test]
    #[should_panic(expected = "duplicate channel")]
    fn duplicate_channel_rejected() {
        let mut daq = DaqSystem::new();
        daq.add_channel(
            ChannelConfig::new("c", "m", 10.0),
            Box::new(|_t: SimTime| 0.0),
        );
        daq.add_channel(
            ChannelConfig::new("c", "m", 20.0),
            Box::new(|_t: SimTime| 0.0),
        );
    }

    #[test]
    fn source_sees_sample_times() {
        let mut daq = DaqSystem::new();
        daq.add_channel(
            ChannelConfig::new("t", "s", 100.0),
            Box::new(|t: SimTime| t.as_secs_f64()),
        );
        let series = daq.acquire(SimTime::from_millis(500), SimTime::from_millis(530));
        assert_eq!(series[0].len(), 3);
        assert!((series[0].samples[0].value - 0.5).abs() < 1e-12);
    }
}
