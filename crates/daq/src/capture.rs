//! Durable NSDS capture encoding.
//!
//! The paper's repository archived each experiment's streamed sensor data
//! as flat files. This module is the wire-neutral serialization used by
//! that path: one JSON object per line (JSONL), so captures are
//! appendable, greppable, and — crucially for the archive's dedup store —
//! byte-stable: the same samples always encode to the same bytes.

use bytes::Bytes;

use crate::nsds::NsdsSample;

/// Encode samples as JSONL, one sample per line, in input order.
pub fn encode_jsonl(samples: &[NsdsSample]) -> Bytes {
    let mut out = Vec::new();
    for s in samples {
        // NsdsSample is a plain derive(Serialize) struct of JSON-safe
        // fields; self-serialization is infallible.
        let line = serde_json::to_vec(s).expect("sample serializes");
        out.extend_from_slice(&line);
        out.push(b'\n');
    }
    Bytes::from(out)
}

/// Decode a JSONL capture. Returns `None` if any line is malformed —
/// a truncated or corrupted capture should fail loudly, not partially.
pub fn decode_jsonl(bytes: &[u8]) -> Option<Vec<NsdsSample>> {
    let mut samples = Vec::new();
    for line in bytes.split(|b| *b == b'\n') {
        if line.is_empty() {
            continue;
        }
        samples.push(serde_json::from_slice(line).ok()?);
    }
    Some(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neesgrid_gridsim::SimTime;

    fn sample(i: u64) -> NsdsSample {
        NsdsSample {
            channel: format!("most.bldg.disp{i}"),
            t: SimTime::from_millis(i * 10),
            value: i as f64 * 0.25,
        }
    }

    #[test]
    fn jsonl_roundtrips() {
        let samples: Vec<NsdsSample> = (0..5).map(sample).collect();
        let bytes = encode_jsonl(&samples);
        assert_eq!(decode_jsonl(&bytes), Some(samples));
    }

    #[test]
    fn encoding_is_byte_stable() {
        let samples: Vec<NsdsSample> = (0..16).map(sample).collect();
        assert_eq!(encode_jsonl(&samples), encode_jsonl(&samples));
    }

    #[test]
    fn empty_capture_is_empty_bytes() {
        assert_eq!(encode_jsonl(&[]).len(), 0);
        assert_eq!(decode_jsonl(b""), Some(vec![]));
    }

    #[test]
    fn corrupt_line_fails_whole_decode() {
        let mut bytes = encode_jsonl(&[sample(1)]).to_vec();
        bytes.extend_from_slice(b"{not json\n");
        assert_eq!(decode_jsonl(&bytes), None);
    }
}
