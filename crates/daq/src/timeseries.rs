//! Timestamped sample series.
//!
//! The unit of data everywhere downstream of the sensors: NSDS streams
//! individual [`Sample`]s, the file-drop stage and the repository move
//! whole [`TimeSeries`] windows, and the CHEF data viewer replays them.
//! CSV is the interchange encoding, matching the flat files the LabVIEW
//! DAQ deposited.

use serde::{Deserialize, Serialize};

use neesgrid_gridsim::SimTime;

/// One timestamped measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Virtual experiment time.
    pub t: SimTime,
    /// Measured value in the channel's engineering unit.
    pub value: f64,
}

/// A named, unit-carrying series of samples in time order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Channel name.
    pub channel: String,
    /// Engineering unit.
    pub unit: String,
    /// Samples, non-decreasing in time.
    pub samples: Vec<Sample>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new(channel: impl Into<String>, unit: impl Into<String>) -> Self {
        TimeSeries {
            channel: channel.into(),
            unit: unit.into(),
            samples: Vec::new(),
        }
    }

    /// Append a sample; panics if time goes backwards.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(last) = self.samples.last() {
            assert!(t >= last.t, "samples must be time-ordered");
        }
        self.samples.push(Sample { t, value });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples within `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> Vec<Sample> {
        self.samples
            .iter()
            .filter(|s| s.t >= from && s.t < to)
            .copied()
            .collect()
    }

    /// (min, max) values, or `None` when empty.
    pub fn range(&self) -> Option<(f64, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for s in &self.samples {
            min = min.min(s.value);
            max = max.max(s.value);
        }
        Some((min, max))
    }

    /// Value at or before `t` (step interpolation), if any.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.samples.partition_point(|s| s.t <= t) {
            0 => None,
            i => Some(self.samples[i - 1].value),
        }
    }

    /// Encode as CSV (`# channel,unit` header then `t_ns,value` rows) —
    /// the file-drop interchange format.
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {},{}\n", self.channel, self.unit);
        for s in &self.samples {
            out.push_str(&format!("{},{:.12e}\n", s.t.as_nanos(), s.value));
        }
        out
    }

    /// Decode the CSV format produced by [`TimeSeries::to_csv`].
    pub fn from_csv(text: &str) -> Option<TimeSeries> {
        let mut lines = text.lines();
        let header = lines.next()?.strip_prefix("# ")?;
        let (channel, unit) = header.split_once(',')?;
        let mut ts = TimeSeries::new(channel, unit);
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let (t, v) = line.split_once(',')?;
            let t: u64 = t.parse().ok()?;
            let v: f64 = v.parse().ok()?;
            ts.samples.push(Sample {
                t: SimTime::from_nanos(t),
                value: v,
            });
        }
        Some(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn series() -> TimeSeries {
        let mut ts = TimeSeries::new("uiuc/lvdt-1", "m");
        for i in 0..10 {
            ts.push(SimTime::from_millis(i * 100), i as f64 * 0.001);
        }
        ts
    }

    #[test]
    fn push_and_window() {
        let ts = series();
        assert_eq!(ts.len(), 10);
        let w = ts.window(SimTime::from_millis(200), SimTime::from_millis(500));
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].value, 0.002);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn time_reversal_rejected() {
        let mut ts = series();
        ts.push(SimTime::from_millis(100), 0.0);
    }

    #[test]
    fn range_and_value_at() {
        let ts = series();
        let (lo, hi) = ts.range().unwrap();
        assert_eq!(lo, 0.0);
        assert!((hi - 0.009).abs() < 1e-12);
        assert_eq!(ts.value_at(SimTime::from_millis(250)), Some(0.002));
        assert_eq!(ts.value_at(SimTime::from_millis(200)), Some(0.002));
        assert_eq!(ts.value_at(SimTime::ZERO), Some(0.0));
        let empty = TimeSeries::new("x", "m");
        assert_eq!(empty.value_at(SimTime::from_secs(1)), None);
        assert_eq!(empty.range(), None);
    }

    #[test]
    fn csv_roundtrip() {
        let ts = series();
        let csv = ts.to_csv();
        assert!(csv.starts_with("# uiuc/lvdt-1,m\n"));
        let back = TimeSeries::from_csv(&csv).unwrap();
        assert_eq!(back.channel, ts.channel);
        assert_eq!(back.unit, ts.unit);
        assert_eq!(back.len(), ts.len());
        for (a, b) in back.samples.iter().zip(&ts.samples) {
            assert_eq!(a.t, b.t);
            assert!((a.value - b.value).abs() < 1e-15);
        }
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(TimeSeries::from_csv("not a header\n1,2\n").is_none());
        assert!(TimeSeries::from_csv("# ch,m\nbogus\n").is_none());
    }

    proptest! {
        #[test]
        fn csv_roundtrip_preserves_values(
            values in proptest::collection::vec(-1e6f64..1e6, 0..50),
        ) {
            let mut ts = TimeSeries::new("ch", "N");
            for (i, v) in values.iter().enumerate() {
                ts.push(SimTime::from_micros(i as u64), *v);
            }
            let back = TimeSeries::from_csv(&ts.to_csv()).unwrap();
            prop_assert_eq!(back.len(), ts.len());
            for (a, b) in back.samples.iter().zip(&ts.samples) {
                prop_assert!((a.value - b.value).abs() <= b.value.abs() * 1e-12 + 1e-15);
            }
        }
    }
}
