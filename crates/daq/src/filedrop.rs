//! The LabVIEW file-drop stage.
//!
//! §3.2: "a simple LabVIEW interface was built that ran at the UIUC and
//! Colorado sites and periodically gathered data deposited by the DAQ in a
//! network-mounted file system; NFMS and GridFTP were then used to upload
//! it securely". [`FileDropDir`] is that network-mounted directory: the
//! DAQ deposits CSV windows, the repository uploader polls for files it
//! has not yet shipped.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use neesgrid_gridsim::SimTime;

use crate::timeseries::TimeSeries;

/// One deposited file.
#[derive(Debug, Clone, PartialEq)]
pub struct DropFile {
    /// Monotone sequence number assigned by the directory.
    pub seq: u64,
    /// File name, e.g. `uiuc-lvdt-1-000042.csv`.
    pub name: String,
    /// Deposit time.
    pub created_at: SimTime,
    /// File content.
    pub content: Bytes,
}

/// A shared drop directory (cheaply clonable handle).
#[derive(Debug, Clone, Default)]
pub struct FileDropDir {
    inner: Arc<Mutex<Vec<DropFile>>>,
}

impl FileDropDir {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit raw content under `name`; returns its sequence number.
    pub fn deposit(&self, name: impl Into<String>, content: Bytes, now: SimTime) -> u64 {
        let mut g = self.inner.lock();
        let seq = g.len() as u64;
        g.push(DropFile {
            seq,
            name: name.into(),
            created_at: now,
            content,
        });
        seq
    }

    /// Deposit a time-series window as CSV, named from channel + window
    /// index.
    pub fn deposit_series(&self, ts: &TimeSeries, window_index: u64, now: SimTime) -> u64 {
        let name = format!("{}-{:06}.csv", ts.channel.replace('/', "-"), window_index);
        self.deposit(name, Bytes::from(ts.to_csv()), now)
    }

    /// Files with sequence number ≥ `since` (the uploader's cursor).
    pub fn poll_new(&self, since: u64) -> Vec<DropFile> {
        self.inner
            .lock()
            .iter()
            .filter(|f| f.seq >= since)
            .cloned()
            .collect()
    }

    /// Total files deposited.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_and_poll_cursor() {
        let dir = FileDropDir::new();
        dir.deposit("a.csv", Bytes::from_static(b"1"), SimTime::ZERO);
        dir.deposit("b.csv", Bytes::from_static(b"2"), SimTime::from_secs(1));
        let all = dir.poll_new(0);
        assert_eq!(all.len(), 2);
        let newer = dir.poll_new(1);
        assert_eq!(newer.len(), 1);
        assert_eq!(newer[0].name, "b.csv");
        assert!(dir.poll_new(2).is_empty());
    }

    #[test]
    fn series_deposit_roundtrips_through_csv() {
        let dir = FileDropDir::new();
        let mut ts = TimeSeries::new("uiuc/lvdt-1", "m");
        ts.push(SimTime::from_millis(10), 0.001);
        ts.push(SimTime::from_millis(20), 0.002);
        dir.deposit_series(&ts, 7, SimTime::from_secs(1));
        let files = dir.poll_new(0);
        assert_eq!(files[0].name, "uiuc-lvdt-1-000007.csv");
        let back = TimeSeries::from_csv(std::str::from_utf8(&files[0].content).unwrap()).unwrap();
        assert_eq!(back.channel, "uiuc/lvdt-1");
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn clones_share_the_directory() {
        let dir = FileDropDir::new();
        let clone = dir.clone();
        clone.deposit("x.csv", Bytes::new(), SimTime::ZERO);
        assert_eq!(dir.len(), 1);
    }

    #[test]
    fn concurrent_deposits_get_unique_seqs() {
        let dir = FileDropDir::new();
        let mut handles = Vec::new();
        for i in 0..8 {
            let d = dir.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..100 {
                    d.deposit(format!("{i}-{j}.csv"), Bytes::new(), SimTime::ZERO);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut seqs: Vec<u64> = dir.poll_new(0).iter().map(|f| f.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 800);
    }
}
