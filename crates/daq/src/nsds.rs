//! NEESgrid Streaming Data Service (NSDS).
//!
//! §2.2: "The NEESGrid Streaming Data Service provides a best-effort
//! stream of real-time data from the data acquisition system." The
//! defining property is **best-effort**: the experiment never blocks on a
//! slow remote viewer. Each subscription owns a bounded ring buffer;
//! when it overflows, the *oldest* samples are discarded and counted, so a
//! viewer that falls behind sees the freshest data with an honest loss
//! figure — the number the `fig08_dataviewer` bench reports.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use neesgrid_gridsim::SimTime;
use neesgrid_telemetry::{CounterHandle, Telemetry};

/// One streamed sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NsdsSample {
    /// Channel name.
    pub channel: String,
    /// Virtual experiment time.
    pub t: SimTime,
    /// Value in the channel's engineering unit.
    pub value: f64,
}

struct SubscriptionInner {
    pattern: String,
    buffer: VecDeque<NsdsSample>,
    capacity: usize,
    dropped: u64,
    delivered: u64,
    // Metric names preformatted at subscribe time so the per-sample
    // publish path never builds a key string; the counter handles are
    // resolved lazily on the first instrumented publish.
    delivered_key: String,
    dropped_key: String,
    handles: Option<(CounterHandle, CounterHandle)>,
}

/// A best-effort subscription handle.
#[derive(Clone)]
pub struct NsdsSubscription {
    inner: Arc<Mutex<SubscriptionInner>>,
}

impl NsdsSubscription {
    /// Pop the oldest buffered sample, if any.
    pub fn poll(&self) -> Option<NsdsSample> {
        self.inner.lock().buffer.pop_front()
    }

    /// Drain everything currently buffered.
    pub fn drain(&self) -> Vec<NsdsSample> {
        self.inner.lock().buffer.drain(..).collect()
    }

    /// Samples lost to buffer overflow so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Samples delivered into the buffer so far (including later drops).
    pub fn delivered(&self) -> u64 {
        self.inner.lock().delivered
    }

    /// Currently buffered count.
    pub fn pending(&self) -> usize {
        self.inner.lock().buffer.len()
    }
}

/// The streaming server: publishers push, subscriptions buffer.
#[derive(Default)]
pub struct NsdsServer {
    subscriptions: Mutex<Vec<Arc<Mutex<SubscriptionInner>>>>,
    published: Mutex<u64>,
    telemetry: Mutex<Telemetry>,
}

impl NsdsServer {
    /// An NSDS with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribe to channels matching `pattern` (exact, or prefix ending
    /// in `*`), buffering up to `capacity` samples.
    pub fn subscribe(&self, pattern: impl Into<String>, capacity: usize) -> NsdsSubscription {
        assert!(capacity > 0);
        let pattern = pattern.into();
        let inner = Arc::new(Mutex::new(SubscriptionInner {
            delivered_key: format!("nsds.delivered{{{pattern}}}"),
            dropped_key: format!("nsds.dropped{{{pattern}}}"),
            pattern,
            // analyzer:buffer(cap = capacity.min(1024), drop = oldest)
            buffer: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            delivered: 0,
            handles: None,
        }));
        self.subscriptions.lock().push(Arc::clone(&inner));
        NsdsSubscription { inner }
    }

    /// Install a telemetry handle: per-subscription delivery and overflow
    /// counters (`nsds.delivered{pattern}` / `nsds.dropped{pattern}`).
    /// Defaults to disabled.
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        *self.telemetry.lock() = telemetry;
        // Cached handles belong to the previous registry.
        for sub in self.subscriptions.lock().iter() {
            sub.lock().handles = None;
        }
    }

    /// Publish one sample to all matching subscriptions (never blocks).
    pub fn publish(&self, sample: NsdsSample) {
        *self.published.lock() += 1;
        let telemetry = self.telemetry.lock().clone();
        let mut subs = self.subscriptions.lock();
        // A subscription whose handle is gone can never be polled again:
        // reclaim it here, so publish cost tracks live subscribers rather
        // than every subscription ever opened. Long-lived hubs (the
        // portal's run stream across a 10k-run bench or a campaign sweep)
        // otherwise scan an ever-growing tail of closed observers and
        // finished capture taps on every sample.
        subs.retain(|sub| Arc::strong_count(sub) > 1);
        for sub in subs.iter() {
            let mut s = sub.lock();
            if !pattern_matches(&s.pattern, &sample.channel) {
                continue;
            }
            if telemetry.enabled() && s.handles.is_none() {
                s.handles = Some((
                    telemetry.counter_handle(&s.delivered_key),
                    telemetry.counter_handle(&s.dropped_key),
                ));
            }
            if s.buffer.len() == s.capacity {
                s.buffer.pop_front();
                s.dropped += 1;
                if let Some((_, dropped)) = &s.handles {
                    dropped.add(1);
                }
            }
            s.buffer.push_back(sample.clone());
            s.delivered += 1;
            if let Some((delivered, _)) = &s.handles {
                delivered.add(1);
            }
        }
    }

    /// Publish a batch of (t, value) points on one channel.
    pub fn publish_series(&self, channel: &str, points: &[(SimTime, f64)]) {
        for &(t, value) in points {
            self.publish(NsdsSample {
                channel: channel.to_string(),
                t,
                value,
            });
        }
    }

    /// Total samples published.
    pub fn published(&self) -> u64 {
        *self.published.lock()
    }

    /// Active subscription count. Subscriptions whose handle has been
    /// dropped are reclaimed lazily on the next `publish`, so this may
    /// briefly over-count between a drop and the next sample.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.lock().len()
    }
}

fn pattern_matches(pattern: &str, channel: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => channel.starts_with(prefix),
        None => pattern == channel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(channel: &str, i: u64) -> NsdsSample {
        NsdsSample {
            channel: channel.to_string(),
            t: SimTime::from_millis(i * 10),
            value: i as f64,
        }
    }

    #[test]
    fn publish_reaches_matching_subscribers() {
        let nsds = NsdsServer::new();
        let uiuc = nsds.subscribe("uiuc/*", 100);
        let all = nsds.subscribe("*", 100);
        nsds.publish(sample("uiuc/lvdt-1", 1));
        nsds.publish(sample("cu/load-1", 2));
        assert_eq!(uiuc.pending(), 1);
        assert_eq!(all.pending(), 2);
        assert_eq!(uiuc.poll().unwrap().channel, "uiuc/lvdt-1");
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let nsds = NsdsServer::new();
        let sub = nsds.subscribe("*", 3);
        for i in 0..10 {
            nsds.publish(sample("c", i));
        }
        assert_eq!(sub.dropped(), 7);
        assert_eq!(sub.delivered(), 10);
        // Freshest three survive.
        let got: Vec<f64> = sub.drain().iter().map(|s| s.value).collect();
        assert_eq!(got, vec![7.0, 8.0, 9.0]);
    }

    #[test]
    fn slow_subscriber_does_not_block_publishing() {
        let nsds = NsdsServer::new();
        let _sub = nsds.subscribe("*", 1); // pathological viewer
        let t0 = std::time::Instant::now();
        for i in 0..100_000 {
            nsds.publish(sample("c", i));
        }
        assert!(t0.elapsed().as_secs() < 5);
        assert_eq!(nsds.published(), 100_000);
    }

    #[test]
    fn keeping_up_loses_nothing() {
        let nsds = NsdsServer::new();
        let sub = nsds.subscribe("*", 16);
        let mut got = Vec::new();
        for i in 0..1000 {
            nsds.publish(sample("c", i));
            // Viewer drains every sample promptly.
            while let Some(s) = sub.poll() {
                got.push(s.value);
            }
        }
        assert_eq!(sub.dropped(), 0);
        assert_eq!(got.len(), 1000);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "order preserved");
    }

    #[test]
    fn publish_series_batches() {
        let nsds = NsdsServer::new();
        let sub = nsds.subscribe("resp/*", 100);
        nsds.publish_series(
            "resp/dof-0",
            &[(SimTime::ZERO, 0.0), (SimTime::from_millis(10), 0.001)],
        );
        assert_eq!(sub.pending(), 2);
    }

    #[test]
    fn many_subscribers_each_get_their_own_buffer() {
        let nsds = NsdsServer::new();
        // §3.4: "over 130 remote participants logged on to observe MOST."
        let subs: Vec<NsdsSubscription> = (0..130).map(|_| nsds.subscribe("*", 64)).collect();
        for i in 0..64 {
            nsds.publish(sample("resp/dof-0", i));
        }
        for sub in &subs {
            assert_eq!(sub.pending(), 64);
            assert_eq!(sub.dropped(), 0);
        }
        assert_eq!(nsds.subscription_count(), 130);
    }
}
