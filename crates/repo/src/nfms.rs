//! The NEESgrid File Management Service (NFMS).
//!
//! §2.3: "NFMS provides two main capabilities: logical file naming and
//! transport neutrality. Applications negotiate file transfers with NFMS,
//! which resolves a transfer request for a logical file to a protocol
//! request for a physical resource. NFMS uses GridFTP to provide transport
//! and has a plug-in API that allows other transport protocols to be used
//! if desired."

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use neesgrid_gridsim::SimTime;

use crate::storage::VirtualStore;

/// NFMS operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfmsError {
    /// Unknown logical name.
    NotFound(String),
    /// No transport both sides support.
    NoCommonTransport {
        /// Transports the service offers.
        offered: Vec<String>,
        /// Transports the client asked for.
        requested: Vec<String>,
    },
    /// Logical name already registered.
    AlreadyExists(String),
}

impl std::fmt::Display for NfmsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NfmsError::NotFound(n) => write!(f, "logical file '{n}' not found"),
            NfmsError::NoCommonTransport { offered, requested } => write!(
                f,
                "no common transport (offered {offered:?}, requested {requested:?})"
            ),
            NfmsError::AlreadyExists(n) => write!(f, "logical file '{n}' already registered"),
        }
    }
}

impl std::error::Error for NfmsError {}

/// The result of a transfer negotiation: where and how to move the bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferTicket {
    /// The logical name.
    pub logical: String,
    /// Resolved physical path in the repository store.
    pub physical: String,
    /// Chosen transport protocol.
    pub protocol: String,
    /// File size, bytes.
    pub size: u64,
    /// Whole-file CRC-32.
    pub checksum: u32,
}

/// The file management service.
pub struct Nfms {
    store: VirtualStore,
    logical: HashMap<String, String>,
    /// Transports in preference order (plug-in API: push to extend).
    transports: Vec<String>,
}

impl Nfms {
    /// An NFMS over a store, offering GridFTP (preferred) and https.
    pub fn new(store: VirtualStore) -> Self {
        Nfms {
            store,
            logical: HashMap::new(),
            transports: vec!["gridftp".to_string(), "https".to_string()],
        }
    }

    /// Register an additional transport plugin (lowest preference).
    pub fn register_transport(&mut self, name: impl Into<String>) {
        self.transports.push(name.into());
    }

    /// Offered transports, in preference order.
    pub fn transports(&self) -> &[String] {
        &self.transports
    }

    /// The backing store handle.
    pub fn store(&self) -> &VirtualStore {
        &self.store
    }

    /// Store content under a logical name (registers the mapping).
    pub fn upload(
        &mut self,
        logical: impl Into<String>,
        content: Bytes,
        now: SimTime,
    ) -> Result<TransferTicket, NfmsError> {
        let logical = logical.into();
        if self.logical.contains_key(&logical) {
            return Err(NfmsError::AlreadyExists(logical));
        }
        let physical = format!("/store{logical}");
        let size = content.len() as u64;
        let checksum = self.store.put(physical.clone(), content, now);
        self.logical.insert(logical.clone(), physical.clone());
        Ok(TransferTicket {
            logical,
            physical,
            protocol: self.transports[0].clone(),
            size,
            checksum,
        })
    }

    /// Negotiate a download: pick the first offered transport the client
    /// also supports, and resolve the logical name.
    pub fn negotiate(
        &self,
        logical: &str,
        client_protocols: &[&str],
    ) -> Result<TransferTicket, NfmsError> {
        let physical = self
            .logical
            .get(logical)
            .ok_or_else(|| NfmsError::NotFound(logical.to_string()))?;
        let protocol = self
            .transports
            .iter()
            .find(|t| client_protocols.contains(&t.as_str()))
            .ok_or_else(|| NfmsError::NoCommonTransport {
                offered: self.transports.clone(),
                requested: client_protocols.iter().map(|s| s.to_string()).collect(),
            })?;
        let file = self
            .store
            .get(physical)
            .ok_or_else(|| NfmsError::NotFound(logical.to_string()))?;
        Ok(TransferTicket {
            logical: logical.to_string(),
            physical: physical.clone(),
            protocol: protocol.clone(),
            size: file.content.len() as u64,
            checksum: file.checksum,
        })
    }

    /// Fetch content for a negotiated ticket.
    pub fn retrieve(&self, ticket: &TransferTicket) -> Result<Bytes, NfmsError> {
        self.store
            .get(&ticket.physical)
            .map(|f| f.content)
            .ok_or_else(|| NfmsError::NotFound(ticket.logical.clone()))
    }

    /// Logical names under a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut names: Vec<String> = self
            .logical
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered logical files.
    pub fn len(&self) -> usize {
        self.logical.len()
    }

    /// Whether no files are registered.
    pub fn is_empty(&self) -> bool {
        self.logical.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nfms() -> Nfms {
        Nfms::new(VirtualStore::new())
    }

    #[test]
    fn upload_then_negotiate_then_retrieve() {
        let mut n = nfms();
        let up = n
            .upload(
                "/most/run1/a.csv",
                Bytes::from_static(b"data"),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(up.size, 4);
        let ticket = n.negotiate("/most/run1/a.csv", &["gridftp"]).unwrap();
        assert_eq!(ticket.protocol, "gridftp");
        assert_eq!(ticket.checksum, up.checksum);
        assert_eq!(&n.retrieve(&ticket).unwrap()[..], b"data");
    }

    #[test]
    fn transport_preference_order() {
        let mut n = nfms();
        n.upload("/f", Bytes::new(), SimTime::ZERO).unwrap();
        // Client supports both → service preference (gridftp) wins.
        let t = n.negotiate("/f", &["https", "gridftp"]).unwrap();
        assert_eq!(t.protocol, "gridftp");
        // https-only client gets https.
        let t = n.negotiate("/f", &["https"]).unwrap();
        assert_eq!(t.protocol, "https");
    }

    #[test]
    fn no_common_transport_is_an_error() {
        let mut n = nfms();
        n.upload("/f", Bytes::new(), SimTime::ZERO).unwrap();
        let err = n.negotiate("/f", &["carrier-pigeon"]).unwrap_err();
        assert!(matches!(err, NfmsError::NoCommonTransport { .. }));
    }

    #[test]
    fn transport_plugin_api() {
        let mut n = nfms();
        n.register_transport("scp");
        n.upload("/f", Bytes::new(), SimTime::ZERO).unwrap();
        let t = n.negotiate("/f", &["scp"]).unwrap();
        assert_eq!(t.protocol, "scp");
        assert_eq!(n.transports().len(), 3);
    }

    #[test]
    fn unknown_logical_name() {
        let n = nfms();
        assert!(matches!(
            n.negotiate("/ghost", &["gridftp"]).unwrap_err(),
            NfmsError::NotFound(_)
        ));
    }

    #[test]
    fn duplicate_logical_name_refused() {
        let mut n = nfms();
        n.upload("/f", Bytes::new(), SimTime::ZERO).unwrap();
        assert!(matches!(
            n.upload("/f", Bytes::new(), SimTime::ZERO).unwrap_err(),
            NfmsError::AlreadyExists(_)
        ));
    }

    #[test]
    fn list_by_prefix() {
        let mut n = nfms();
        n.upload("/most/a", Bytes::new(), SimTime::ZERO).unwrap();
        n.upload("/most/b", Bytes::new(), SimTime::ZERO).unwrap();
        n.upload("/other/c", Bytes::new(), SimTime::ZERO).unwrap();
        assert_eq!(n.list("/most/"), vec!["/most/a", "/most/b"]);
        assert_eq!(n.len(), 3);
    }
}
