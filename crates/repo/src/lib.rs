//! # neesgrid-repo — the NEESgrid data and metadata repository
//!
//! Figure 3's architecture, in full:
//!
//! * [`storage`] — the repository's backing store (virtual, in-memory,
//!   checksummed).
//! * [`metadata`] + [`nmds`] — the **NEESgrid Metadata Service**: metadata
//!   objects with *first-class schemas* ("metadata schemas are represented
//!   by first-class objects and can be managed just like any other
//!   object"), per-object version control, and per-object authorization
//!   with CAS capability-assertion support (the §3.3 follow-on).
//! * [`nfms`] — the **NEESgrid File Management Service**: logical file
//!   naming and transport neutrality; transfers are negotiated, and a
//!   plug-in API admits transports beyond GridFTP.
//! * [`gridftp`] — the simulated GridFTP transport: chunked, multi-stream,
//!   checksummed, restartable bulk transfer.
//! * [`ingest`] — the ingestion tool that archives data and metadata
//!   incrementally *while the experiment runs*.
//! * [`https_bridge`] — "a servlet that acts as a bridge between GridFTP
//!   and https", giving browser-grade clients (CHEF) read access.
//! * [`service`] — OGSI `GridService` wrappers so remote sites reach NMDS
//!   and NFMS over the grid network.

pub mod checksum;
pub mod gridftp;
pub mod https_bridge;
pub mod ingest;
pub mod metadata;
pub mod nfms;
pub mod nmds;
pub mod service;
pub mod storage;

pub use checksum::{crc32, from_hex, to_hex};
pub use gridftp::{GridFtpReceiver, GridFtpSender, RestartMarker, TransferChunk, TransferError};
pub use https_bridge::HttpsBridge;
pub use ingest::Ingester;
pub use metadata::{MetadataObject, Schema};
pub use nfms::{Nfms, TransferTicket};
pub use nmds::Nmds;
pub use service::{NfmsService, NmdsService};
pub use storage::{StoredFile, VirtualStore};
