//! Simulated GridFTP bulk transport.
//!
//! Reproduces the GridFTP features NFMS relies on [Allcock et al., ref 3]:
//! **parallel streams** (chunks are distributed round-robin over N logical
//! streams and may arrive interleaved or out of order), **per-block
//! checksums**, and **restart markers** — a receiver summarizes the byte
//! ranges it holds so an interrupted transfer resumes without resending
//! them. The `fig03_repository` bench sweeps file size × stream count
//! through this path.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::checksum::crc32;

/// Why a transfer (or one of its blocks) was refused.
///
/// Typed like the portal's `Rejection`: callers match on the variant, the
/// `Display` impl keeps the old human-readable text for logs and faults.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferError {
    /// A block's byte range falls outside the negotiated file length.
    OutOfBounds {
        /// Block start offset.
        start: u64,
        /// Block end offset (exclusive).
        end: u64,
        /// Negotiated file length.
        len: u64,
    },
    /// A block's payload failed its per-block CRC-32.
    BlockChecksum {
        /// Offset of the corrupt block.
        offset: u64,
    },
    /// `finish` was called before every byte arrived.
    Incomplete {
        /// Ranges received so far.
        have: Vec<(u64, u64)>,
        /// Negotiated file length.
        expected: u64,
    },
    /// The reassembled file failed the whole-file CRC-32.
    FileChecksum {
        /// CRC-32 actually computed.
        actual: u32,
        /// CRC-32 the control channel promised.
        expected: u32,
    },
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::OutOfBounds { start, end, len } => {
                write!(f, "block [{start},{end}) beyond file length {len}")
            }
            TransferError::BlockChecksum { offset } => {
                write!(f, "block at {offset} failed checksum")
            }
            TransferError::Incomplete { have, expected } => {
                write!(f, "transfer incomplete: have {have:?} of {expected} bytes")
            }
            TransferError::FileChecksum { actual, expected } => {
                write!(
                    f,
                    "file checksum mismatch: {actual:#010x} != {expected:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for TransferError {}

/// One data block on one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferChunk {
    /// Byte offset within the file.
    pub offset: u64,
    /// Block payload.
    pub data: Bytes,
    /// CRC-32 of the payload.
    pub checksum: u32,
    /// Which parallel stream carries this block.
    pub stream: u32,
}

/// The ranges a receiver already holds, `(start, end)` half-open, sorted
/// and coalesced.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RestartMarker {
    /// Received byte ranges.
    pub ranges: Vec<(u64, u64)>,
}

impl RestartMarker {
    /// Whether `[start, end)` is fully covered.
    pub fn covers(&self, start: u64, end: u64) -> bool {
        self.ranges.iter().any(|&(s, e)| s <= start && end <= e)
    }
}

/// Sender side of a transfer.
pub struct GridFtpSender {
    content: Bytes,
    chunk_size: usize,
    streams: u32,
}

impl GridFtpSender {
    /// Prepare a transfer of `content` in `chunk_size` blocks over
    /// `streams` parallel streams.
    pub fn new(content: Bytes, chunk_size: usize, streams: u32) -> Self {
        assert!(chunk_size > 0 && streams > 0);
        GridFtpSender {
            content,
            chunk_size,
            streams,
        }
    }

    /// Whole-file CRC-32 (sent out-of-band in the control channel).
    pub fn file_checksum(&self) -> u32 {
        crc32(&self.content)
    }

    /// Total size in bytes.
    pub fn len(&self) -> u64 {
        self.content.len() as u64
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.content.is_empty()
    }

    /// All blocks, round-robin across streams.
    pub fn chunks(&self) -> Vec<TransferChunk> {
        self.chunks_after(&RestartMarker::default())
    }

    /// Blocks *not* covered by the receiver's restart marker.
    pub fn chunks_after(&self, marker: &RestartMarker) -> Vec<TransferChunk> {
        let mut out = Vec::new();
        let mut index = 0u32;
        let mut offset = 0usize;
        while offset < self.content.len() {
            let end = (offset + self.chunk_size).min(self.content.len());
            if !marker.covers(offset as u64, end as u64) {
                let data = self.content.slice(offset..end);
                out.push(TransferChunk {
                    offset: offset as u64,
                    checksum: crc32(&data),
                    data,
                    stream: index % self.streams,
                });
            }
            index += 1;
            offset = end;
        }
        out
    }
}

/// Receiver side of a transfer.
pub struct GridFtpReceiver {
    expected_len: u64,
    expected_checksum: u32,
    buffer: Vec<u8>,
    ranges: Vec<(u64, u64)>,
    blocks_accepted: u64,
    blocks_rejected: u64,
}

impl GridFtpReceiver {
    /// Expect a file of `len` bytes with the given whole-file CRC-32.
    pub fn new(len: u64, checksum: u32) -> Self {
        GridFtpReceiver {
            expected_len: len,
            expected_checksum: checksum,
            buffer: vec![0; len as usize],
            ranges: Vec::new(),
            blocks_accepted: 0,
            blocks_rejected: 0,
        }
    }

    /// Accept one block (any order, any stream). Rejects corrupt or
    /// out-of-bounds blocks. Duplicate blocks are idempotent.
    pub fn accept(&mut self, chunk: &TransferChunk) -> Result<(), TransferError> {
        let start = chunk.offset;
        let end = start + chunk.data.len() as u64;
        if end > self.expected_len {
            self.blocks_rejected += 1;
            return Err(TransferError::OutOfBounds {
                start,
                end,
                len: self.expected_len,
            });
        }
        if crc32(&chunk.data) != chunk.checksum {
            self.blocks_rejected += 1;
            return Err(TransferError::BlockChecksum { offset: start });
        }
        self.buffer[start as usize..end as usize].copy_from_slice(&chunk.data);
        self.add_range(start, end);
        self.blocks_accepted += 1;
        Ok(())
    }

    fn add_range(&mut self, start: u64, end: u64) {
        self.ranges.push((start, end));
        self.ranges.sort_unstable();
        // Coalesce.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.ranges.len());
        for &(s, e) in &self.ranges {
            match merged.last_mut() {
                Some((_, pe)) if s <= *pe => *pe = (*pe).max(e),
                _ => merged.push((s, e)),
            }
        }
        self.ranges = merged;
    }

    /// The current restart marker.
    pub fn restart_marker(&self) -> RestartMarker {
        RestartMarker {
            ranges: self.ranges.clone(),
        }
    }

    /// Whether every byte has arrived.
    pub fn complete(&self) -> bool {
        self.expected_len == 0 || self.ranges == vec![(0, self.expected_len)]
    }

    /// (accepted, rejected) block counters.
    pub fn block_stats(&self) -> (u64, u64) {
        (self.blocks_accepted, self.blocks_rejected)
    }

    /// Finish: verify the whole-file checksum and hand over the content.
    pub fn finish(self) -> Result<Bytes, TransferError> {
        if !self.complete() {
            return Err(TransferError::Incomplete {
                have: self.ranges,
                expected: self.expected_len,
            });
        }
        let sum = crc32(&self.buffer);
        if sum != self.expected_checksum {
            return Err(TransferError::FileChecksum {
                actual: sum,
                expected: self.expected_checksum,
            });
        }
        Ok(Bytes::from(self.buffer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn payload(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i * 7 + 13) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn in_order_transfer_completes() {
        let content = payload(10_000);
        let sender = GridFtpSender::new(content.clone(), 1024, 4);
        let mut rx = GridFtpReceiver::new(sender.len(), sender.file_checksum());
        for c in sender.chunks() {
            rx.accept(&c).unwrap();
        }
        assert!(rx.complete());
        assert_eq!(rx.finish().unwrap(), content);
    }

    #[test]
    fn chunks_round_robin_across_streams() {
        let sender = GridFtpSender::new(payload(10_000), 1024, 4);
        let chunks = sender.chunks();
        assert_eq!(chunks.len(), 10); // ceil(10000/1024)
        assert_eq!(chunks[0].stream, 0);
        assert_eq!(chunks[1].stream, 1);
        assert_eq!(chunks[4].stream, 0);
        // Last chunk is the remainder.
        assert_eq!(chunks[9].data.len(), 10_000 - 9 * 1024);
    }

    #[test]
    fn out_of_order_arrival_is_fine() {
        let content = payload(5_000);
        let sender = GridFtpSender::new(content.clone(), 512, 3);
        let mut chunks = sender.chunks();
        chunks.reverse();
        let mut rx = GridFtpReceiver::new(sender.len(), sender.file_checksum());
        for c in chunks {
            rx.accept(&c).unwrap();
        }
        assert_eq!(rx.finish().unwrap(), content);
    }

    #[test]
    fn corrupt_block_rejected() {
        let sender = GridFtpSender::new(payload(2_000), 512, 1);
        let mut chunks = sender.chunks();
        let mut bad = chunks.remove(0);
        let mut data = bad.data.to_vec();
        data[0] ^= 0xFF;
        bad.data = Bytes::from(data);
        let mut rx = GridFtpReceiver::new(sender.len(), sender.file_checksum());
        assert_eq!(
            rx.accept(&bad).unwrap_err(),
            TransferError::BlockChecksum { offset: 0 }
        );
        assert_eq!(rx.block_stats(), (0, 1));
    }

    #[test]
    fn out_of_bounds_block_rejected() {
        let mut rx = GridFtpReceiver::new(100, 0);
        let c = TransferChunk {
            offset: 90,
            data: payload(20),
            checksum: crc32(&payload(20)),
            stream: 0,
        };
        assert!(matches!(
            rx.accept(&c).unwrap_err(),
            TransferError::OutOfBounds {
                end: 110,
                len: 100,
                ..
            }
        ));
    }

    #[test]
    fn restart_marker_resumes_without_resending() {
        let content = payload(10_240);
        let sender = GridFtpSender::new(content.clone(), 1024, 2);
        let all = sender.chunks();
        let mut rx = GridFtpReceiver::new(sender.len(), sender.file_checksum());
        // Network dies after 4 blocks.
        for c in &all[..4] {
            rx.accept(c).unwrap();
        }
        assert!(!rx.complete());
        let marker = rx.restart_marker();
        assert!(marker.covers(0, 4 * 1024));
        // Resume: the sender skips covered ranges.
        let rest = sender.chunks_after(&marker);
        assert_eq!(rest.len(), 6);
        for c in &rest {
            assert!(c.offset >= 4 * 1024);
            rx.accept(c).unwrap();
        }
        assert_eq!(rx.finish().unwrap(), content);
    }

    #[test]
    fn duplicate_blocks_are_idempotent() {
        let content = payload(2_048);
        let sender = GridFtpSender::new(content.clone(), 1024, 1);
        let mut rx = GridFtpReceiver::new(sender.len(), sender.file_checksum());
        for c in sender.chunks() {
            rx.accept(&c).unwrap();
            rx.accept(&c).unwrap();
        }
        assert_eq!(rx.finish().unwrap(), content);
    }

    #[test]
    fn incomplete_finish_fails() {
        let sender = GridFtpSender::new(payload(2_048), 1024, 1);
        let mut rx = GridFtpReceiver::new(sender.len(), sender.file_checksum());
        rx.accept(&sender.chunks()[0]).unwrap();
        assert!(rx.finish().is_err());
    }

    #[test]
    fn empty_file_transfer() {
        let sender = GridFtpSender::new(Bytes::new(), 1024, 2);
        assert!(sender.is_empty());
        let rx = GridFtpReceiver::new(0, sender.file_checksum());
        assert!(rx.complete());
        assert_eq!(rx.finish().unwrap(), Bytes::new());
    }

    proptest! {
        #[test]
        fn any_permutation_reassembles(
            len in 1usize..5000,
            chunk_size in 1usize..700,
            seed in 0u64..1000,
        ) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let content = payload(len);
            let sender = GridFtpSender::new(content.clone(), chunk_size, 3);
            let mut chunks = sender.chunks();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            chunks.shuffle(&mut rng);
            let mut rx = GridFtpReceiver::new(sender.len(), sender.file_checksum());
            for c in chunks {
                rx.accept(&c).unwrap();
            }
            prop_assert_eq!(rx.finish().unwrap(), content);
        }
    }
}
