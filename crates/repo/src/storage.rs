//! Repository backing store.
//!
//! A thread-safe, in-memory hierarchical store standing in for the
//! repository host's filesystem. Every write records size, CRC-32, and
//! deposit time, so transfers can be verified end-to-end.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use neesgrid_gridsim::SimTime;

use crate::checksum::crc32;

/// Metadata + content of one stored file.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredFile {
    /// Repository path (e.g. `/experiments/most/run1/uiuc-lvdt-000001.csv`).
    pub path: String,
    /// File content.
    pub content: Bytes,
    /// Content CRC-32.
    pub checksum: u32,
    /// Time of the (most recent) write.
    pub stored_at: SimTime,
}

/// A shared virtual file store.
#[derive(Debug, Clone, Default)]
pub struct VirtualStore {
    files: Arc<RwLock<BTreeMap<String, StoredFile>>>,
}

impl VirtualStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write (or overwrite) a file, returning its checksum.
    pub fn put(&self, path: impl Into<String>, content: Bytes, now: SimTime) -> u32 {
        let path = path.into();
        let checksum = crc32(&content);
        self.files.write().insert(
            path.clone(),
            StoredFile {
                path,
                content,
                checksum,
                stored_at: now,
            },
        );
        checksum
    }

    /// Read a file.
    pub fn get(&self, path: &str) -> Option<StoredFile> {
        self.files.read().get(path).cloned()
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// Delete a file; returns whether it existed.
    pub fn delete(&self, path: &str) -> bool {
        self.files.write().remove(path).is_some()
    }

    /// Paths under a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Number of stored files.
    pub fn len(&self) -> usize {
        self.files.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.files.read().is_empty()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.files
            .read()
            .values()
            .map(|f| f.content.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let store = VirtualStore::new();
        let sum = store.put(
            "/a/b.csv",
            Bytes::from_static(b"data"),
            SimTime::from_secs(1),
        );
        let f = store.get("/a/b.csv").unwrap();
        assert_eq!(&f.content[..], b"data");
        assert_eq!(f.checksum, sum);
        assert_eq!(f.stored_at, SimTime::from_secs(1));
        assert!(store.exists("/a/b.csv"));
        assert!(!store.exists("/a/c.csv"));
    }

    #[test]
    fn overwrite_replaces_content() {
        let store = VirtualStore::new();
        store.put("/x", Bytes::from_static(b"one"), SimTime::ZERO);
        store.put("/x", Bytes::from_static(b"two"), SimTime::from_secs(2));
        let f = store.get("/x").unwrap();
        assert_eq!(&f.content[..], b"two");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn list_by_prefix_sorted() {
        let store = VirtualStore::new();
        for p in ["/m/2", "/m/1", "/other/x", "/m/3"] {
            store.put(p, Bytes::new(), SimTime::ZERO);
        }
        assert_eq!(store.list("/m/"), vec!["/m/1", "/m/2", "/m/3"]);
        assert_eq!(store.list("/nope/").len(), 0);
    }

    #[test]
    fn delete_and_totals() {
        let store = VirtualStore::new();
        store.put("/a", Bytes::from_static(b"12345"), SimTime::ZERO);
        store.put("/b", Bytes::from_static(b"123"), SimTime::ZERO);
        assert_eq!(store.total_bytes(), 8);
        assert!(store.delete("/a"));
        assert!(!store.delete("/a"));
        assert_eq!(store.total_bytes(), 3);
    }

    #[test]
    fn clones_share_state() {
        let store = VirtualStore::new();
        let clone = store.clone();
        clone.put("/shared", Bytes::new(), SimTime::ZERO);
        assert!(store.exists("/shared"));
    }
}
