//! Checksums and hex codec for transfers.
//!
//! GridFTP guards bulk data with per-block and whole-file checksums; the
//! simulated transport does the same with CRC-32 (the IEEE polynomial,
//! table-driven). Hex is the byte codec used when chunks ride inside JSON
//! RPC payloads.

/// CRC-32 (IEEE 802.3 polynomial, reflected).
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// Encode bytes as lowercase hex.
pub fn to_hex(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decode lowercase/uppercase hex; `None` on malformed input.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: "123456789" → 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_corruption() {
        let a = crc32(b"The quick brown fox");
        let b = crc32(b"The quick brown fux");
        assert_ne!(a, b);
    }

    #[test]
    fn hex_roundtrip_known() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x10]), "00ff10");
        assert_eq!(from_hex("00ff10").unwrap(), vec![0x00, 0xff, 0x10]);
        assert_eq!(from_hex("00FF10").unwrap(), vec![0x00, 0xff, 0x10]);
    }

    #[test]
    fn hex_rejects_malformed() {
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
    }

    proptest! {
        #[test]
        fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            prop_assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        }
    }
}
