//! OGSI service wrappers for NMDS and NFMS.
//!
//! These make the repository reachable over the grid network: each
//! experiment site's ingestion path and each CHEF participant's download
//! path speak JSON RPC to these services, exactly as the deployment put
//! GT3 service endpoints in front of the repository host.

use bytes::Bytes;
use serde_json::{json, Value};

use neesgrid_gsi::Right;
use neesgrid_ogsi::{CallContext, GridService, ServiceData, ServiceFault};

use crate::checksum::{crc32, from_hex, to_hex};
use crate::gridftp::{GridFtpReceiver, TransferChunk};
use crate::metadata::Schema;
use crate::nfms::Nfms;
use crate::nmds::{Nmds, NmdsError};

fn nmds_fault(e: NmdsError) -> ServiceFault {
    let code = match &e {
        NmdsError::AlreadyExists(_) => "AlreadyExists",
        NmdsError::NotFound(_) => "NotFound",
        NmdsError::ValidationFailed(_) => "ValidationFailed",
        NmdsError::AccessDenied(_) => "AccessDenied",
        NmdsError::BadSchema(_) => "BadSchema",
    };
    ServiceFault::permanent(code, e.to_string())
}

/// NMDS as a hosted grid service.
pub struct NmdsService {
    nmds: Nmds,
    sde: ServiceData,
}

impl NmdsService {
    /// Wrap an NMDS instance.
    pub fn new(nmds: Nmds) -> Self {
        NmdsService {
            nmds,
            sde: ServiceData::new(),
        }
    }
}

impl GridService for NmdsService {
    fn service_type(&self) -> &'static str {
        "nmds"
    }

    fn handle(
        &mut self,
        ctx: &CallContext,
        operation: &str,
        body: &Value,
    ) -> Result<Value, ServiceFault> {
        let id = || -> Result<String, ServiceFault> {
            body["id"]
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| ServiceFault::permanent("BadRequest", "missing 'id'"))
        };
        match operation {
            "createSchema" => {
                let schema: Schema = serde_json::from_value(body["schema"].clone())
                    .map_err(|e| ServiceFault::permanent("BadRequest", format!("schema: {e}")))?;
                self.nmds
                    .create_schema(id()?, &schema, ctx.caller.clone(), ctx.now)
                    .map_err(nmds_fault)?;
                Ok(json!({"created": true}))
            }
            "create" => {
                let schema_id = body["schema_id"].as_str().map(str::to_string);
                self.nmds
                    .create(
                        id()?,
                        schema_id,
                        body["body"].clone(),
                        ctx.caller.clone(),
                        ctx.now,
                    )
                    .map_err(nmds_fault)?;
                self.sde.set("objectCount", json!(self.nmds.len()), ctx.now);
                Ok(json!({"created": true}))
            }
            "update" => {
                let version = self
                    .nmds
                    .update(&id()?, body["body"].clone(), &ctx.caller, None, ctx.now)
                    .map_err(nmds_fault)?;
                Ok(json!({ "version": version }))
            }
            "get" => {
                let version = body["version"].as_u64();
                let value = self
                    .nmds
                    .get(&id()?, version, &ctx.caller, None, ctx.now)
                    .map_err(nmds_fault)?;
                Ok(json!({ "body": value }))
            }
            "grant" => {
                let grantee = neesgrid_gsi::DistinguishedName::parse(
                    body["grantee"].as_str().unwrap_or_default(),
                )
                .ok_or_else(|| ServiceFault::permanent("BadRequest", "bad grantee DN"))?;
                let right = match body["right"].as_str() {
                    Some("read") => Right::Read,
                    Some("write") => Right::Write,
                    _ => return Err(ServiceFault::permanent("BadRequest", "bad right")),
                };
                self.nmds
                    .grant(&id()?, &ctx.caller, grantee, right)
                    .map_err(nmds_fault)?;
                Ok(json!({"granted": true}))
            }
            "list" => {
                let prefix = body["prefix"].as_str().unwrap_or("");
                Ok(json!({ "ids": self.nmds.list(prefix) }))
            }
            other => Err(ServiceFault::no_such_operation(other)),
        }
    }

    fn sde(&mut self) -> Option<&mut ServiceData> {
        Some(&mut self.sde)
    }
}

struct PendingUpload {
    logical: String,
    receiver: GridFtpReceiver,
}

/// NFMS as a hosted grid service, carrying GridFTP-style chunked uploads
/// and downloads inside RPC bodies (hex-encoded).
pub struct NfmsService {
    nfms: Nfms,
    uploads: std::collections::HashMap<u64, PendingUpload>,
    next_transfer: u64,
    sde: ServiceData,
}

impl NfmsService {
    /// Wrap an NFMS instance.
    pub fn new(nfms: Nfms) -> Self {
        NfmsService {
            nfms,
            uploads: std::collections::HashMap::new(),
            next_transfer: 1,
            sde: ServiceData::new(),
        }
    }
}

impl GridService for NfmsService {
    fn service_type(&self) -> &'static str {
        "nfms"
    }

    fn handle(
        &mut self,
        ctx: &CallContext,
        operation: &str,
        body: &Value,
    ) -> Result<Value, ServiceFault> {
        match operation {
            "negotiateUpload" => {
                let logical = body["logical"]
                    .as_str()
                    .ok_or_else(|| ServiceFault::permanent("BadRequest", "missing 'logical'"))?;
                let size = body["size"]
                    .as_u64()
                    .ok_or_else(|| ServiceFault::permanent("BadRequest", "missing 'size'"))?;
                let checksum = body["checksum"]
                    .as_u64()
                    .ok_or_else(|| ServiceFault::permanent("BadRequest", "missing 'checksum'"))?
                    as u32;
                let transfer_id = self.next_transfer;
                self.next_transfer += 1;
                self.uploads.insert(
                    transfer_id,
                    PendingUpload {
                        logical: logical.to_string(),
                        receiver: GridFtpReceiver::new(size, checksum),
                    },
                );
                Ok(json!({ "transfer_id": transfer_id, "chunk_size": 8192 }))
            }
            "uploadChunk" => {
                let tid = body["transfer_id"].as_u64().ok_or_else(|| {
                    ServiceFault::permanent("BadRequest", "missing 'transfer_id'")
                })?;
                let up = self.uploads.get_mut(&tid).ok_or_else(|| {
                    ServiceFault::permanent("NoSuchTransfer", format!("transfer {tid}"))
                })?;
                let data = from_hex(body["data"].as_str().unwrap_or_default())
                    .ok_or_else(|| ServiceFault::permanent("BadRequest", "bad hex"))?;
                let chunk = TransferChunk {
                    offset: body["offset"].as_u64().unwrap_or(0),
                    checksum: body["checksum"].as_u64().unwrap_or(0) as u32,
                    stream: body["stream"].as_u64().unwrap_or(0) as u32,
                    data: Bytes::from(data),
                };
                up.receiver
                    .accept(&chunk)
                    .map_err(|e| ServiceFault::transient("ChunkRejected", e.to_string()))?;
                Ok(json!({ "marker": up.receiver.restart_marker() }))
            }
            "commitUpload" => {
                let tid = body["transfer_id"].as_u64().ok_or_else(|| {
                    ServiceFault::permanent("BadRequest", "missing 'transfer_id'")
                })?;
                let up = self.uploads.remove(&tid).ok_or_else(|| {
                    ServiceFault::permanent("NoSuchTransfer", format!("transfer {tid}"))
                })?;
                let content = up
                    .receiver
                    .finish()
                    .map_err(|e| ServiceFault::permanent("TransferIncomplete", e.to_string()))?;
                let ticket = self
                    .nfms
                    .upload(up.logical, content, ctx.now)
                    .map_err(|e| ServiceFault::permanent("UploadFailed", e.to_string()))?;
                self.sde.set("fileCount", json!(self.nfms.len()), ctx.now);
                Ok(serde_json::to_value(ticket).expect("ticket serializes"))
            }
            "negotiateDownload" => {
                let logical = body["logical"]
                    .as_str()
                    .ok_or_else(|| ServiceFault::permanent("BadRequest", "missing 'logical'"))?;
                let protocols: Vec<&str> = body["protocols"]
                    .as_array()
                    .map(|a| a.iter().filter_map(|v| v.as_str()).collect())
                    .unwrap_or_else(|| vec!["gridftp"]);
                let ticket = self
                    .nfms
                    .negotiate(logical, &protocols)
                    .map_err(|e| ServiceFault::permanent("NegotiationFailed", e.to_string()))?;
                Ok(serde_json::to_value(ticket).expect("ticket serializes"))
            }
            "downloadChunk" => {
                let logical = body["logical"]
                    .as_str()
                    .ok_or_else(|| ServiceFault::permanent("BadRequest", "missing 'logical'"))?;
                let ticket = self
                    .nfms
                    .negotiate(logical, &["gridftp", "https"])
                    .map_err(|e| ServiceFault::permanent("NotFound", e.to_string()))?;
                let content = self
                    .nfms
                    .retrieve(&ticket)
                    .map_err(|e| ServiceFault::permanent("NotFound", e.to_string()))?;
                let offset = body["offset"].as_u64().unwrap_or(0) as usize;
                let len = body["len"].as_u64().unwrap_or(8192) as usize;
                if offset > content.len() {
                    return Err(ServiceFault::permanent("BadRequest", "offset beyond EOF"));
                }
                let end = (offset + len).min(content.len());
                let slice = &content[offset..end];
                Ok(json!({
                    "data": to_hex(slice),
                    "checksum": crc32(slice),
                    "eof": end == content.len(),
                    "total_size": content.len(),
                }))
            }
            "list" => {
                let prefix = body["prefix"].as_str().unwrap_or("");
                Ok(json!({ "logical": self.nfms.list(prefix) }))
            }
            other => Err(ServiceFault::no_such_operation(other)),
        }
    }

    fn sde(&mut self) -> Option<&mut ServiceData> {
        Some(&mut self.sde)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::VirtualStore;
    use neesgrid_gridsim::SimTime;
    use neesgrid_gsi::DistinguishedName;

    fn ctx(request_id: u64) -> CallContext {
        CallContext {
            caller: DistinguishedName::nees_user("NCSA", "Ingester"),
            now: SimTime::from_secs(1),
            request_id,
        }
    }

    #[test]
    fn nmds_service_crud() {
        let mut svc = NmdsService::new(Nmds::new());
        svc.handle(&ctx(1), "create", &json!({"id": "/obj", "body": {"x": 1}}))
            .unwrap();
        let got = svc.handle(&ctx(2), "get", &json!({"id": "/obj"})).unwrap();
        assert_eq!(got["body"]["x"], 1);
        let v = svc
            .handle(&ctx(3), "update", &json!({"id": "/obj", "body": {"x": 2}}))
            .unwrap();
        assert_eq!(v["version"], 2);
        let ids = svc
            .handle(&ctx(4), "list", &json!({"prefix": "/"}))
            .unwrap();
        assert_eq!(ids["ids"][0], "/obj");
    }

    #[test]
    fn nmds_service_schema_roundtrip() {
        let mut svc = NmdsService::new(Nmds::new());
        svc.handle(
            &ctx(1),
            "createSchema",
            &json!({"id": "/schemas/s", "schema": {"fields": {"name": "string"}, "allow_extra": true}}),
        )
        .unwrap();
        let err = svc
            .handle(
                &ctx(2),
                "create",
                &json!({"id": "/o", "schema_id": "/schemas/s", "body": {"nope": 1}}),
            )
            .unwrap_err();
        assert_eq!(err.code, "ValidationFailed");
        svc.handle(
            &ctx(3),
            "create",
            &json!({"id": "/o", "schema_id": "/schemas/s", "body": {"name": "ok"}}),
        )
        .unwrap();
    }

    #[test]
    fn nfms_service_chunked_upload_download() {
        let mut svc = NfmsService::new(Nfms::new(VirtualStore::new()));
        let data: Vec<u8> = (0..20_000).map(|i| (i % 256) as u8).collect();
        let total_sum = crc32(&data);
        let neg = svc
            .handle(
                &ctx(1),
                "negotiateUpload",
                &json!({"logical": "/most/f.bin", "size": data.len(), "checksum": total_sum}),
            )
            .unwrap();
        let tid = neg["transfer_id"].as_u64().unwrap();
        let chunk_size = neg["chunk_size"].as_u64().unwrap() as usize;
        let mut req = 2;
        for (i, chunk) in data.chunks(chunk_size).enumerate() {
            svc.handle(
                &ctx(req),
                "uploadChunk",
                &json!({
                    "transfer_id": tid,
                    "offset": i * chunk_size,
                    "stream": i % 4,
                    "data": to_hex(chunk),
                    "checksum": crc32(chunk),
                }),
            )
            .unwrap();
            req += 1;
        }
        let ticket = svc
            .handle(&ctx(req), "commitUpload", &json!({"transfer_id": tid}))
            .unwrap();
        assert_eq!(ticket["size"], 20_000);

        // Download back in chunks.
        let mut got = Vec::new();
        let mut offset = 0;
        loop {
            let r = svc
                .handle(
                    &ctx(1000 + offset as u64),
                    "downloadChunk",
                    &json!({"logical": "/most/f.bin", "offset": offset, "len": 4096}),
                )
                .unwrap();
            let part = from_hex(r["data"].as_str().unwrap()).unwrap();
            assert_eq!(crc32(&part), r["checksum"].as_u64().unwrap() as u32);
            got.extend_from_slice(&part);
            offset += part.len();
            if r["eof"].as_bool().unwrap() {
                break;
            }
        }
        assert_eq!(got, data);
    }

    #[test]
    fn nfms_commit_of_incomplete_upload_fails() {
        let mut svc = NfmsService::new(Nfms::new(VirtualStore::new()));
        let neg = svc
            .handle(
                &ctx(1),
                "negotiateUpload",
                &json!({"logical": "/f", "size": 100, "checksum": 0}),
            )
            .unwrap();
        let tid = neg["transfer_id"].as_u64().unwrap();
        let err = svc
            .handle(&ctx(2), "commitUpload", &json!({"transfer_id": tid}))
            .unwrap_err();
        assert_eq!(err.code, "TransferIncomplete");
    }

    #[test]
    fn nfms_corrupt_chunk_is_transient_fault() {
        let mut svc = NfmsService::new(Nfms::new(VirtualStore::new()));
        let neg = svc
            .handle(
                &ctx(1),
                "negotiateUpload",
                &json!({"logical": "/f", "size": 4, "checksum": 0}),
            )
            .unwrap();
        let tid = neg["transfer_id"].as_u64().unwrap();
        let err = svc
            .handle(
                &ctx(2),
                "uploadChunk",
                &json!({
                    "transfer_id": tid,
                    "offset": 0,
                    "stream": 0,
                    "data": to_hex(b"data"),
                    "checksum": 12345, // wrong
                }),
            )
            .unwrap_err();
        assert_eq!(err.code, "ChunkRejected");
        assert!(err.retryable, "sender should resend the block");
    }
}
