//! The NEESgrid Metadata Service (NMDS).
//!
//! Manages [`MetadataObject`]s and their schemas: create, update (new
//! version), retrieve (any version), validate, and authorize. Schemas are
//! stored through the same path as ordinary objects — creating one *is*
//! creating a metadata object whose body is the schema. Authorization is
//! per object: the owner has full rights; others need an ACL grant or a
//! CAS capability assertion ("We plan to add support for the Community
//! Authorization Service", §2.3 — implemented here).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use serde_json::Value;

use neesgrid_gridsim::SimTime;
use neesgrid_gsi::{CapabilityAssertion, CommunityAuthorizationService, DistinguishedName, Right};

use crate::metadata::{MetadataObject, Schema};

/// NMDS operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NmdsError {
    /// Object id already exists.
    AlreadyExists(String),
    /// No such object (or version).
    NotFound(String),
    /// Schema validation failed.
    ValidationFailed(String),
    /// Caller lacks the required right.
    AccessDenied(String),
    /// Referenced schema is missing or malformed.
    BadSchema(String),
}

impl std::fmt::Display for NmdsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NmdsError::AlreadyExists(id) => write!(f, "object '{id}' already exists"),
            NmdsError::NotFound(id) => write!(f, "object '{id}' not found"),
            NmdsError::ValidationFailed(m) => write!(f, "validation failed: {m}"),
            NmdsError::AccessDenied(m) => write!(f, "access denied: {m}"),
            NmdsError::BadSchema(m) => write!(f, "bad schema: {m}"),
        }
    }
}

impl std::error::Error for NmdsError {}

#[derive(Debug, Clone, Default)]
struct Acl {
    readers: HashSet<DistinguishedName>,
    writers: HashSet<DistinguishedName>,
}

/// The metadata service.
pub struct Nmds {
    objects: HashMap<String, MetadataObject>,
    acls: HashMap<String, Acl>,
    cas: Option<Arc<CommunityAuthorizationService>>,
}

impl Nmds {
    /// An empty NMDS without CAS support.
    pub fn new() -> Self {
        Nmds {
            objects: HashMap::new(),
            acls: HashMap::new(),
            cas: None,
        }
    }

    /// Enable CAS-based authorization against the given community service.
    pub fn with_cas(mut self, cas: Arc<CommunityAuthorizationService>) -> Self {
        self.cas = Some(cas);
        self
    }

    fn authorize(
        &self,
        id: &str,
        who: &DistinguishedName,
        right: Right,
        assertion: Option<&CapabilityAssertion>,
        now: SimTime,
    ) -> Result<(), NmdsError> {
        let obj = self
            .objects
            .get(id)
            .ok_or_else(|| NmdsError::NotFound(id.to_string()))?;
        if obj.owner == *who {
            return Ok(());
        }
        if let Some(acl) = self.acls.get(id) {
            let granted = match right {
                Right::Read => acl.readers.contains(who) || acl.writers.contains(who),
                Right::Write => acl.writers.contains(who),
                Right::Admin => false,
            };
            if granted {
                return Ok(());
            }
        }
        if let (Some(cas), Some(assertion)) = (&self.cas, assertion) {
            if assertion.subject == *who
                && cas.verify(assertion)
                && assertion.grants(id, right, now)
            {
                return Ok(());
            }
        }
        Err(NmdsError::AccessDenied(format!(
            "{who} lacks {right:?} on '{id}'"
        )))
    }

    fn schema_for(&self, schema_id: &str) -> Result<Schema, NmdsError> {
        let obj = self
            .objects
            .get(schema_id)
            .ok_or_else(|| NmdsError::BadSchema(format!("schema '{schema_id}' not found")))?;
        serde_json::from_value(obj.latest().body.clone())
            .map_err(|e| NmdsError::BadSchema(format!("schema '{schema_id}' malformed: {e}")))
    }

    /// Create a schema object (first-class: it *is* a metadata object).
    pub fn create_schema(
        &mut self,
        id: impl Into<String>,
        schema: &Schema,
        owner: DistinguishedName,
        now: SimTime,
    ) -> Result<(), NmdsError> {
        let body = serde_json::to_value(schema).expect("schema serializes");
        self.create(id, None, body, owner, now)
    }

    /// Create a metadata object, validating against its schema if given.
    pub fn create(
        &mut self,
        id: impl Into<String>,
        schema_id: Option<String>,
        body: Value,
        owner: DistinguishedName,
        now: SimTime,
    ) -> Result<(), NmdsError> {
        let id = id.into();
        if self.objects.contains_key(&id) {
            return Err(NmdsError::AlreadyExists(id));
        }
        if let Some(sid) = &schema_id {
            let schema = self.schema_for(sid)?;
            schema
                .validate(&body)
                .map_err(NmdsError::ValidationFailed)?;
        }
        self.objects.insert(
            id.clone(),
            MetadataObject::create(id, schema_id, owner, body, now),
        );
        Ok(())
    }

    /// Append a new version (requires Write).
    pub fn update(
        &mut self,
        id: &str,
        body: Value,
        author: &DistinguishedName,
        assertion: Option<&CapabilityAssertion>,
        now: SimTime,
    ) -> Result<u64, NmdsError> {
        self.authorize(id, author, Right::Write, assertion, now)?;
        let schema_id = self.objects[id].schema_id.clone();
        if let Some(sid) = schema_id {
            let schema = self.schema_for(&sid)?;
            schema
                .validate(&body)
                .map_err(NmdsError::ValidationFailed)?;
        }
        let obj = self
            .objects
            .get_mut(id)
            .expect("authorized implies present");
        Ok(obj.update(body, author.clone(), now))
    }

    /// Fetch a version (`None` = latest); requires Read.
    pub fn get(
        &self,
        id: &str,
        version: Option<u64>,
        who: &DistinguishedName,
        assertion: Option<&CapabilityAssertion>,
        now: SimTime,
    ) -> Result<Value, NmdsError> {
        self.authorize(id, who, Right::Read, assertion, now)?;
        let obj = &self.objects[id];
        let ov = match version {
            None => obj.latest(),
            Some(v) => obj
                .version(v)
                .ok_or_else(|| NmdsError::NotFound(format!("{id} v{v}")))?,
        };
        Ok(ov.body.clone())
    }

    /// Grant a right on an object (owner only).
    pub fn grant(
        &mut self,
        id: &str,
        grantor: &DistinguishedName,
        grantee: DistinguishedName,
        right: Right,
    ) -> Result<(), NmdsError> {
        let obj = self
            .objects
            .get(id)
            .ok_or_else(|| NmdsError::NotFound(id.to_string()))?;
        if obj.owner != *grantor {
            return Err(NmdsError::AccessDenied(format!(
                "only the owner may grant on '{id}'"
            )));
        }
        let acl = self.acls.entry(id.to_string()).or_default();
        match right {
            Right::Read => {
                acl.readers.insert(grantee);
            }
            Right::Write => {
                acl.writers.insert(grantee);
            }
            Right::Admin => {
                return Err(NmdsError::AccessDenied(
                    "admin is not grantable per-object".into(),
                ))
            }
        }
        Ok(())
    }

    /// Ids under a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut ids: Vec<String> = self
            .objects
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        ids.sort();
        ids
    }

    /// Number of objects (schemas included — they are objects).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the service holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

impl Default for Nmds {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::FieldType;
    use neesgrid_gsi::CertificateAuthority;
    use serde_json::json;

    fn owner() -> DistinguishedName {
        DistinguishedName::nees_user("UIUC", "Owner")
    }

    fn other() -> DistinguishedName {
        DistinguishedName::nees_user("CU", "Visitor")
    }

    fn nmds_with_schema() -> Nmds {
        let mut n = Nmds::new();
        n.create_schema(
            "/schemas/sensor",
            &Schema::new(&[
                ("sensor_type", FieldType::String),
                ("channel", FieldType::String),
            ]),
            owner(),
            SimTime::ZERO,
        )
        .unwrap();
        n
    }

    #[test]
    fn create_with_schema_validation() {
        let mut n = nmds_with_schema();
        n.create(
            "/experiments/most/lvdt-1",
            Some("/schemas/sensor".into()),
            json!({"sensor_type": "LVDT", "channel": "uiuc/lvdt-1"}),
            owner(),
            SimTime::from_secs(1),
        )
        .unwrap();
        let err = n
            .create(
                "/experiments/most/bad",
                Some("/schemas/sensor".into()),
                json!({"sensor_type": "LVDT"}),
                owner(),
                SimTime::from_secs(1),
            )
            .unwrap_err();
        assert!(matches!(err, NmdsError::ValidationFailed(_)));
    }

    #[test]
    fn duplicate_id_refused() {
        let mut n = nmds_with_schema();
        let err = n
            .create_schema(
                "/schemas/sensor",
                &Schema::default(),
                owner(),
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, NmdsError::AlreadyExists(_)));
    }

    #[test]
    fn update_versions_and_history() {
        let mut n = nmds_with_schema();
        n.create("/obj", None, json!({"rev": 1}), owner(), SimTime::ZERO)
            .unwrap();
        let v = n
            .update(
                "/obj",
                json!({"rev": 2}),
                &owner(),
                None,
                SimTime::from_secs(1),
            )
            .unwrap();
        assert_eq!(v, 2);
        let latest = n
            .get("/obj", None, &owner(), None, SimTime::from_secs(2))
            .unwrap();
        assert_eq!(latest["rev"], 2);
        let v1 = n
            .get("/obj", Some(1), &owner(), None, SimTime::from_secs(2))
            .unwrap();
        assert_eq!(v1["rev"], 1);
        assert!(matches!(
            n.get("/obj", Some(9), &owner(), None, SimTime::ZERO),
            Err(NmdsError::NotFound(_))
        ));
    }

    #[test]
    fn update_respects_schema() {
        let mut n = nmds_with_schema();
        n.create(
            "/obj",
            Some("/schemas/sensor".into()),
            json!({"sensor_type": "LVDT", "channel": "c"}),
            owner(),
            SimTime::ZERO,
        )
        .unwrap();
        let err = n
            .update("/obj", json!({"oops": true}), &owner(), None, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, NmdsError::ValidationFailed(_)));
    }

    #[test]
    fn acl_grants_read_and_write() {
        let mut n = nmds_with_schema();
        n.create("/obj", None, json!({"x": 1}), owner(), SimTime::ZERO)
            .unwrap();
        // Stranger refused.
        assert!(matches!(
            n.get("/obj", None, &other(), None, SimTime::ZERO),
            Err(NmdsError::AccessDenied(_))
        ));
        // Reader may read, not write.
        n.grant("/obj", &owner(), other(), Right::Read).unwrap();
        n.get("/obj", None, &other(), None, SimTime::ZERO).unwrap();
        assert!(matches!(
            n.update("/obj", json!({"x": 2}), &other(), None, SimTime::ZERO),
            Err(NmdsError::AccessDenied(_))
        ));
        // Writer may do both.
        n.grant("/obj", &owner(), other(), Right::Write).unwrap();
        n.update("/obj", json!({"x": 2}), &other(), None, SimTime::ZERO)
            .unwrap();
    }

    #[test]
    fn only_owner_grants() {
        let mut n = nmds_with_schema();
        n.create("/obj", None, json!({}), owner(), SimTime::ZERO)
            .unwrap();
        let err = n.grant("/obj", &other(), other(), Right::Read).unwrap_err();
        assert!(matches!(err, NmdsError::AccessDenied(_)));
    }

    #[test]
    fn cas_assertion_authorizes() {
        let ca = CertificateAuthority::nees(9);
        let mut cas = CommunityAuthorizationService::new("nees-most", &ca, 1);
        cas.enroll(other());
        cas.grant(&other(), "/experiments/most/", [Right::Read]);
        let cas = Arc::new(cas);
        let assertion = cas
            .issue(&other(), "/experiments/most/", SimTime::from_secs(100))
            .unwrap();

        let mut n = Nmds::new().with_cas(Arc::clone(&cas));
        n.create(
            "/experiments/most/data",
            None,
            json!({"x": 1}),
            owner(),
            SimTime::ZERO,
        )
        .unwrap();
        // With a valid assertion: allowed.
        n.get(
            "/experiments/most/data",
            None,
            &other(),
            Some(&assertion),
            SimTime::from_secs(1),
        )
        .unwrap();
        // Expired assertion: refused.
        assert!(matches!(
            n.get(
                "/experiments/most/data",
                None,
                &other(),
                Some(&assertion),
                SimTime::from_secs(200),
            ),
            Err(NmdsError::AccessDenied(_))
        ));
        // Assertion grants Read, not Write.
        assert!(matches!(
            n.update(
                "/experiments/most/data",
                json!({"x": 2}),
                &other(),
                Some(&assertion),
                SimTime::from_secs(1),
            ),
            Err(NmdsError::AccessDenied(_))
        ));
    }

    #[test]
    fn cas_assertion_for_someone_else_rejected() {
        let ca = CertificateAuthority::nees(9);
        let mut cas = CommunityAuthorizationService::new("nees-most", &ca, 1);
        let mallory = DistinguishedName::nees_user("X", "Mallory");
        cas.enroll(other());
        cas.grant(&other(), "/", [Right::Read]);
        let cas = Arc::new(cas);
        let assertion = cas.issue(&other(), "/", SimTime::from_secs(100)).unwrap();
        let mut n = Nmds::new().with_cas(cas);
        n.create("/obj", None, json!({}), owner(), SimTime::ZERO)
            .unwrap();
        // Mallory presenting the visitor's assertion is refused.
        assert!(matches!(
            n.get(
                "/obj",
                None,
                &mallory,
                Some(&assertion),
                SimTime::from_secs(1)
            ),
            Err(NmdsError::AccessDenied(_))
        ));
    }

    #[test]
    fn list_and_len() {
        let n = nmds_with_schema();
        assert_eq!(n.list("/schemas/"), vec!["/schemas/sensor"]);
        assert_eq!(n.len(), 1);
    }
}
