//! The ingestion tool.
//!
//! §2.3: "We have also developed an ingestion tool to upload data and
//! metadata to the repository as an experiment is run; researchers can
//! later download this data for analysis or visualization." The
//! [`Ingester`] takes batches of files (in MOST, the windows the LabVIEW
//! DAQ deposited in the drop directory), ships each through NFMS, and
//! records a metadata object describing it — incrementally, while the
//! experiment continues.

use bytes::Bytes;
use serde_json::json;

use neesgrid_gridsim::SimTime;
use neesgrid_gsi::DistinguishedName;

use crate::nfms::Nfms;
use crate::nmds::{Nmds, NmdsError};

/// Incremental experiment-data ingestion.
pub struct Ingester {
    /// Logical-name prefix for this experiment, e.g. `/experiments/most`.
    pub experiment_prefix: String,
    operator: DistinguishedName,
    files_ingested: u64,
    bytes_ingested: u64,
}

impl Ingester {
    /// An ingester archiving under `experiment_prefix` as `operator`.
    pub fn new(experiment_prefix: impl Into<String>, operator: DistinguishedName) -> Self {
        Ingester {
            experiment_prefix: experiment_prefix.into(),
            operator,
            files_ingested: 0,
            bytes_ingested: 0,
        }
    }

    /// Ingest one batch of `(name, content)` files: upload via NFMS,
    /// record one metadata object per file via NMDS.
    pub fn ingest_batch(
        &mut self,
        nfms: &mut Nfms,
        nmds: &mut Nmds,
        files: Vec<(String, Bytes)>,
        now: SimTime,
    ) -> Result<u64, NmdsError> {
        let mut ingested = 0;
        for (name, content) in files {
            let logical = format!("{}/data/{name}", self.experiment_prefix);
            let size = content.len() as u64;
            let ticket = match nfms.upload(logical.clone(), content, now) {
                Ok(t) => t,
                // Re-ingesting an already-shipped file is a no-op (the
                // uploader may replay after a crash).
                Err(crate::nfms::NfmsError::AlreadyExists(_)) => continue,
                Err(e) => {
                    return Err(NmdsError::ValidationFailed(format!(
                        "upload of '{logical}' failed: {e}"
                    )))
                }
            };
            nmds.create(
                format!("{}/records/{name}", self.experiment_prefix),
                None,
                json!({
                    "logical_file": logical,
                    "size_bytes": size,
                    "checksum_crc32": ticket.checksum,
                    "ingested_at_ns": now.as_nanos(),
                }),
                self.operator.clone(),
                now,
            )?;
            self.files_ingested += 1;
            self.bytes_ingested += size;
            ingested += 1;
        }
        Ok(ingested)
    }

    /// Totals: (files, bytes) ingested so far.
    pub fn totals(&self) -> (u64, u64) {
        (self.files_ingested, self.bytes_ingested)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::VirtualStore;

    fn operator() -> DistinguishedName {
        DistinguishedName::nees_user("NCSA", "Ingester")
    }

    #[test]
    fn batch_creates_files_and_records() {
        let mut nfms = Nfms::new(VirtualStore::new());
        let mut nmds = Nmds::new();
        let mut ing = Ingester::new("/experiments/most", operator());
        let n = ing
            .ingest_batch(
                &mut nfms,
                &mut nmds,
                vec![
                    ("uiuc-lvdt-000001.csv".into(), Bytes::from_static(b"a,b\n")),
                    ("cu-load-000001.csv".into(), Bytes::from_static(b"c,d\n")),
                ],
                SimTime::from_secs(10),
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(nfms.list("/experiments/most/data/").len(), 2);
        assert_eq!(nmds.list("/experiments/most/records/").len(), 2);
        let rec = nmds
            .get(
                "/experiments/most/records/uiuc-lvdt-000001.csv",
                None,
                &operator(),
                None,
                SimTime::from_secs(11),
            )
            .unwrap();
        assert_eq!(rec["size_bytes"], 4);
        assert_eq!(ing.totals(), (2, 8));
    }

    #[test]
    fn replayed_batch_is_idempotent() {
        let mut nfms = Nfms::new(VirtualStore::new());
        let mut nmds = Nmds::new();
        let mut ing = Ingester::new("/experiments/most", operator());
        let batch = vec![("f.csv".to_string(), Bytes::from_static(b"x"))];
        assert_eq!(
            ing.ingest_batch(&mut nfms, &mut nmds, batch.clone(), SimTime::ZERO)
                .unwrap(),
            1
        );
        // Crash-replay of the same batch: skipped, not duplicated.
        assert_eq!(
            ing.ingest_batch(&mut nfms, &mut nmds, batch, SimTime::ZERO)
                .unwrap(),
            0
        );
        assert_eq!(nfms.len(), 1);
        assert_eq!(nmds.len(), 1);
    }

    #[test]
    fn ingested_data_is_retrievable_end_to_end() {
        let mut nfms = Nfms::new(VirtualStore::new());
        let mut nmds = Nmds::new();
        let mut ing = Ingester::new("/experiments/most", operator());
        ing.ingest_batch(
            &mut nfms,
            &mut nmds,
            vec![("hist.csv".into(), Bytes::from_static(b"# d,m\n0,1\n"))],
            SimTime::ZERO,
        )
        .unwrap();
        // A researcher resolves the record → logical file → bytes.
        let rec = nmds
            .get(
                "/experiments/most/records/hist.csv",
                None,
                &operator(),
                None,
                SimTime::ZERO,
            )
            .unwrap();
        let logical = rec["logical_file"].as_str().unwrap();
        let ticket = nfms.negotiate(logical, &["gridftp"]).unwrap();
        let content = nfms.retrieve(&ticket).unwrap();
        assert_eq!(&content[..], b"# d,m\n0,1\n");
    }
}
