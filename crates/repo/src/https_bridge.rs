//! The GridFTP↔https bridge.
//!
//! §2.3: "… and a servlet that acts as a bridge between GridFTP and
//! https." CHEF's data viewers are browser-grade clients that speak only
//! https; the bridge negotiates on their behalf, fetches via whatever
//! transport NFMS picks, verifies the checksum, and serves plain bytes.

use bytes::Bytes;

use crate::checksum::crc32;
use crate::gridftp::{GridFtpReceiver, GridFtpSender};
use crate::nfms::{Nfms, NfmsError};

/// A bridge serving repository files to https-only clients.
pub struct HttpsBridge {
    requests_served: u64,
    bytes_served: u64,
}

impl HttpsBridge {
    /// A fresh bridge.
    pub fn new() -> Self {
        HttpsBridge {
            requests_served: 0,
            bytes_served: 0,
        }
    }

    /// "GET" a logical file: negotiate with NFMS, move the bytes through
    /// the negotiated transport (a full simulated GridFTP transfer when
    /// that is what NFMS picks), verify, serve.
    pub fn get(&mut self, nfms: &Nfms, logical: &str) -> Result<Bytes, String> {
        // The bridge supports both transports; preference lands on gridftp.
        let ticket = nfms
            .negotiate(logical, &["gridftp", "https"])
            .map_err(|e| e.to_string())?;
        let raw = nfms.retrieve(&ticket).map_err(|e| e.to_string())?;
        let content = if ticket.protocol == "gridftp" {
            // Run the actual chunked transfer path, not a shortcut.
            let sender = GridFtpSender::new(raw, 8192, 4);
            let mut rx = GridFtpReceiver::new(sender.len(), sender.file_checksum());
            for c in sender.chunks() {
                rx.accept(&c).map_err(|e| e.to_string())?;
            }
            rx.finish().map_err(|e| e.to_string())?
        } else {
            raw
        };
        if crc32(&content) != ticket.checksum {
            return Err(format!("checksum mismatch serving '{logical}'"));
        }
        self.requests_served += 1;
        self.bytes_served += content.len() as u64;
        Ok(content)
    }

    /// (requests, bytes) served.
    pub fn stats(&self) -> (u64, u64) {
        (self.requests_served, self.bytes_served)
    }
}

impl Default for HttpsBridge {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience error conversion for bridge callers.
impl From<NfmsError> for String {
    fn from(e: NfmsError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::VirtualStore;
    use neesgrid_gridsim::SimTime;

    #[test]
    fn bridge_serves_file_through_gridftp_path() {
        let mut nfms = Nfms::new(VirtualStore::new());
        let data: Vec<u8> = (0..50_000).map(|i| (i % 251) as u8).collect();
        nfms.upload("/most/big.bin", Bytes::from(data.clone()), SimTime::ZERO)
            .unwrap();
        let mut bridge = HttpsBridge::new();
        let got = bridge.get(&nfms, "/most/big.bin").unwrap();
        assert_eq!(&got[..], &data[..]);
        assert_eq!(bridge.stats(), (1, 50_000));
    }

    #[test]
    fn missing_file_is_an_error() {
        let nfms = Nfms::new(VirtualStore::new());
        let mut bridge = HttpsBridge::new();
        assert!(bridge
            .get(&nfms, "/ghost")
            .unwrap_err()
            .contains("not found"));
        assert_eq!(bridge.stats(), (0, 0));
    }

    #[test]
    fn stats_accumulate() {
        let mut nfms = Nfms::new(VirtualStore::new());
        nfms.upload("/a", Bytes::from_static(b"12345"), SimTime::ZERO)
            .unwrap();
        nfms.upload("/b", Bytes::from_static(b"123"), SimTime::ZERO)
            .unwrap();
        let mut bridge = HttpsBridge::new();
        bridge.get(&nfms, "/a").unwrap();
        bridge.get(&nfms, "/b").unwrap();
        assert_eq!(bridge.stats(), (2, 8));
    }
}
