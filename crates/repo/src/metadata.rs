//! Metadata objects and first-class schemas.
//!
//! §2.3: NMDS "differs from most other metadata management systems in that
//! metadata schemas are represented by first-class objects and can be
//! managed just like any other object. In addition, it supports per-object
//! version control and authorization."
//!
//! A [`Schema`] declares required fields and their types; it is stored,
//! versioned, and access-controlled exactly like the objects it validates.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use serde_json::Value;

use neesgrid_gridsim::SimTime;
use neesgrid_gsi::DistinguishedName;

/// Field types a schema can require.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum FieldType {
    /// JSON string.
    String,
    /// JSON number.
    Number,
    /// JSON boolean.
    Boolean,
    /// JSON array.
    Array,
    /// JSON object.
    Object,
}

impl FieldType {
    fn matches(self, v: &Value) -> bool {
        match self {
            FieldType::String => v.is_string(),
            FieldType::Number => v.is_number(),
            FieldType::Boolean => v.is_boolean(),
            FieldType::Array => v.is_array(),
            FieldType::Object => v.is_object(),
        }
    }
}

/// A metadata schema: required fields with expected types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Schema {
    /// Field name → required type.
    pub fields: HashMap<String, FieldType>,
    /// Whether fields not named in `fields` are allowed.
    pub allow_extra: bool,
}

impl Schema {
    /// A schema requiring the given (name, type) fields, allowing extras.
    pub fn new(fields: &[(&str, FieldType)]) -> Self {
        Schema {
            fields: fields.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
            allow_extra: true,
        }
    }

    /// Validate a body against this schema.
    pub fn validate(&self, body: &Value) -> Result<(), String> {
        let obj = body
            .as_object()
            .ok_or_else(|| "metadata body must be a JSON object".to_string())?;
        for (name, ty) in &self.fields {
            match obj.get(name) {
                None => return Err(format!("missing required field '{name}'")),
                Some(v) if !ty.matches(v) => {
                    return Err(format!("field '{name}' has wrong type (expected {ty:?})"))
                }
                Some(_) => {}
            }
        }
        if !self.allow_extra {
            for key in obj.keys() {
                if !self.fields.contains_key(key) {
                    return Err(format!("unexpected field '{key}'"));
                }
            }
        }
        Ok(())
    }
}

/// One version of a metadata object's body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectVersion {
    /// 1-based version number.
    pub version: u64,
    /// The body at this version.
    pub body: Value,
    /// Who wrote it.
    pub author: DistinguishedName,
    /// When.
    pub at: SimTime,
}

/// A versioned, access-controlled metadata object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetadataObject {
    /// Object id (repository-unique), e.g. `/experiments/most/setup-uiuc`.
    pub id: String,
    /// Id of the schema object governing this object, if any.
    pub schema_id: Option<String>,
    /// Owner (full rights).
    pub owner: DistinguishedName,
    /// Version history, oldest first; never empty.
    pub versions: Vec<ObjectVersion>,
}

impl MetadataObject {
    /// Create version 1.
    pub fn create(
        id: impl Into<String>,
        schema_id: Option<String>,
        owner: DistinguishedName,
        body: Value,
        now: SimTime,
    ) -> Self {
        MetadataObject {
            id: id.into(),
            schema_id,
            owner: owner.clone(),
            versions: vec![ObjectVersion {
                version: 1,
                body,
                author: owner,
                at: now,
            }],
        }
    }

    /// The latest version.
    pub fn latest(&self) -> &ObjectVersion {
        self.versions.last().expect("objects have ≥1 version")
    }

    /// A specific version (1-based).
    pub fn version(&self, v: u64) -> Option<&ObjectVersion> {
        self.versions.iter().find(|ov| ov.version == v)
    }

    /// Append a new version.
    pub fn update(&mut self, body: Value, author: DistinguishedName, now: SimTime) -> u64 {
        let version = self.latest().version + 1;
        self.versions.push(ObjectVersion {
            version,
            body,
            author,
            at: now,
        });
        version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn owner() -> DistinguishedName {
        DistinguishedName::nees_user("UIUC", "Experimenter")
    }

    fn sensor_schema() -> Schema {
        Schema::new(&[
            ("sensor_type", FieldType::String),
            ("channel", FieldType::String),
            ("calibration_scale", FieldType::Number),
        ])
    }

    #[test]
    fn schema_accepts_conforming_body() {
        let body = json!({
            "sensor_type": "LVDT",
            "channel": "uiuc/lvdt-1",
            "calibration_scale": 1.0,
            "notes": "extra allowed",
        });
        sensor_schema().validate(&body).unwrap();
    }

    #[test]
    fn schema_rejects_missing_and_mistyped() {
        let schema = sensor_schema();
        let missing = json!({"sensor_type": "LVDT", "channel": "c"});
        assert!(schema.validate(&missing).unwrap_err().contains("missing"));
        let mistyped = json!({
            "sensor_type": "LVDT",
            "channel": "c",
            "calibration_scale": "one",
        });
        assert!(schema
            .validate(&mistyped)
            .unwrap_err()
            .contains("wrong type"));
        assert!(schema.validate(&json!([1, 2])).is_err());
    }

    #[test]
    fn strict_schema_rejects_extras() {
        let mut schema = sensor_schema();
        schema.allow_extra = false;
        let body = json!({
            "sensor_type": "LVDT",
            "channel": "c",
            "calibration_scale": 1.0,
            "surprise": true,
        });
        assert!(schema.validate(&body).unwrap_err().contains("unexpected"));
    }

    #[test]
    fn all_field_types_match() {
        let schema = Schema::new(&[
            ("s", FieldType::String),
            ("n", FieldType::Number),
            ("b", FieldType::Boolean),
            ("a", FieldType::Array),
            ("o", FieldType::Object),
        ]);
        schema
            .validate(&json!({"s": "x", "n": 1.5, "b": true, "a": [], "o": {}}))
            .unwrap();
    }

    #[test]
    fn versioning_appends_and_preserves_history() {
        let mut obj = MetadataObject::create(
            "/experiments/most/setup",
            None,
            owner(),
            json!({"rev": 1}),
            SimTime::from_secs(1),
        );
        assert_eq!(obj.latest().version, 1);
        let v2 = obj.update(json!({"rev": 2}), owner(), SimTime::from_secs(2));
        assert_eq!(v2, 2);
        assert_eq!(obj.latest().body["rev"], 2);
        assert_eq!(obj.version(1).unwrap().body["rev"], 1);
        assert!(obj.version(3).is_none());
    }

    #[test]
    fn schema_serializes_as_first_class_object() {
        // A schema must itself be representable as a metadata body.
        let schema = sensor_schema();
        let as_value = serde_json::to_value(&schema).unwrap();
        let back: Schema = serde_json::from_value(as_value).unwrap();
        assert_eq!(back, schema);
    }
}
