//! # neesgrid-bench — shared helpers for the evaluation harness
//!
//! One Criterion bench per paper figure/result (see DESIGN.md's experiment
//! index). This library holds the topology helpers the benches share.

use std::sync::Arc;
use std::time::Duration;

use neesgrid_gridsim::{NetworkConfig, NetworkProfile, NodeId, VirtualNetwork};
use neesgrid_gsi::{ActionLimits, DistinguishedName, SitePolicy};
use neesgrid_ntcp::{ControlPlugin, NtcpClient, NtcpServer};
use neesgrid_ogsi::{RpcClient, RpcMux, ServiceContainer};

/// Stand up one permissive NTCP site over `plugin` and return a client.
/// The network handle must outlive the client.
pub fn single_site(
    net: &VirtualNetwork,
    name: &str,
    plugin: Box<dyn ControlPlugin>,
    limits: ActionLimits,
) -> NtcpClient {
    let server = NtcpServer::new(
        name,
        SitePolicy::permissive(name, limits),
        plugin,
        net.clock(),
    );
    let _handle = ServiceContainer::new(net.endpoint(name).expect("endpoint name is unique"))
        .with_service("ntcp", Box::new(server))
        .permissive()
        .run();
    let mux = RpcMux::new(
        net.endpoint(format!("bench-client-{name}"))
            .expect("endpoint name is unique"),
    );
    NtcpClient::new(
        RpcClient::new(
            Arc::clone(&mux),
            NodeId::new(name),
            "ntcp",
            DistinguishedName::nees_user("BENCH", "driver"),
        )
        .with_attempt_timeout(Duration::from_millis(200)),
    )
}

/// A zero-latency network for protocol-cost benches.
pub fn loopback_net() -> VirtualNetwork {
    VirtualNetwork::new(NetworkConfig::default())
}

/// A 2003-grade WAN for end-to-end benches (the campus-WAN preset).
pub fn wan_net() -> VirtualNetwork {
    VirtualNetwork::new(NetworkConfig {
        default_latency: NetworkProfile::CampusWan.latency(),
        ..Default::default()
    })
}
