//! E5 (Figures 6 & 7) — the physical substructure rigs.
//!
//! Regenerates the behavioural content of the physical-test figures: how
//! the emulated servo-hydraulic rig tracks commands. Virtual settle time
//! vs move amplitude is printed once (the physically meaningful series);
//! the Criterion numbers measure the emulation's compute cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use neesgrid_apparatus::{
    ActuatorConfig, ControllerCommand, ControllerResponse, LoadCell, Lvdt, ServoHydraulicActuator,
    ShoreWesternController, SteelColumn,
};

fn controller() -> ShoreWesternController {
    ShoreWesternController::new(
        ServoHydraulicActuator::new(ActuatorConfig::lab_100kn()),
        Box::new(SteelColumn::most_uiuc()),
        Lvdt::lab_grade("lvdt", 1),
        LoadCell::new("load", 2, 150_000.0),
        120_000.0,
    )
}

fn bench_tracking(c: &mut Criterion) {
    // The figure-shaped data: settle time and tracking error vs amplitude.
    eprintln!("fig06: servo-hydraulic tracking (virtual time)");
    eprintln!("  amplitude    settle      |error|");
    for amp in [0.0005, 0.002, 0.010, 0.030, 0.050] {
        let mut ctl = controller();
        match ctl.execute(ControllerCommand::Move { target_m: amp }) {
            ControllerResponse::Moved(m) => eprintln!(
                "  {:7.1} mm  {:>9}  {:8.1} um",
                amp * 1e3,
                m.duration,
                (m.displacement_m - amp).abs() * 1e6
            ),
            other => eprintln!("  {:7.1} mm  refused: {other:?}", amp * 1e3),
        }
    }

    let mut group = c.benchmark_group("fig06/move_emulation_cost");
    for amp in [0.002f64, 0.010, 0.050] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}mm", amp * 1e3)),
            &amp,
            |b, &amp| {
                let mut ctl = controller();
                let mut sign = 1.0;
                b.iter(|| {
                    sign = -sign;
                    std::hint::black_box(ctl.execute(ControllerCommand::Move {
                        target_m: amp * sign,
                    }))
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tracking
}
criterion_main!(benches);
