//! Fig. 12 (extension) — checkpoint overhead.
//!
//! What would periodic checkpointing have cost the MOST run? Measures a
//! scaled simulation-only experiment with no checkpoints and with
//! every-1 / every-10 / every-100-step policies persisting full
//! coordinator + site snapshots, so the per-checkpoint cost can be read
//! off against the uninstrumented baseline. (Every 100 steps is the
//! cadence the step-1493 recovery test uses.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

use neesgrid_checkpoint::{CheckpointPolicy, CheckpointStore, MemoryCheckpointStore};
use neesgrid_coordinator::FaultPolicy;
use neesgrid_most::{MostConfig, MostDeployment};

const SCALED_STEPS: usize = 100;

fn run_once(checkpoint_every: Option<u64>) -> usize {
    let config = MostConfig::simulation_only().with_steps(SCALED_STEPS);
    let deployment = MostDeployment::build(config, 0);
    let policy = FaultPolicy::Full {
        max_step_retries: 2,
    };
    let artifacts = match checkpoint_every {
        Some(n) => {
            let store: Arc<dyn CheckpointStore> = Arc::new(MemoryCheckpointStore::new());
            deployment.run_with_checkpoints(policy, "bench", CheckpointPolicy::every(n), store)
        }
        None => deployment.run(policy),
    };
    artifacts.outcome.steps_completed()
}

fn bench_checkpoint_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_checkpoint_overhead");
    group.sample_size(10);
    group.bench_function("no_checkpoints_100_steps", |b| {
        b.iter(|| std::hint::black_box(run_once(None)))
    });
    for every in [1u64, 10, 100] {
        group.bench_with_input(BenchmarkId::new("every", every), &every, |b, &n| {
            b.iter(|| std::hint::black_box(run_once(Some(n))))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(8))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_checkpoint_overhead
}
criterion_main!(benches);
