//! E6 (Figure 8) — CHEF data viewers over NSDS.
//!
//! The streaming fan-out that fed the viewers: publish throughput vs
//! subscriber count (including the MOST-scale 130-viewer crowd), viewer
//! ingest + VCR seek, and hysteresis-pair extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use neesgrid_chef::DataViewer;
use neesgrid_daq::nsds::{NsdsSample, NsdsServer};
use neesgrid_gridsim::SimTime;

fn sample(i: u64) -> NsdsSample {
    NsdsSample {
        channel: "uiuc/dof-0/disp".into(),
        t: SimTime::from_millis(i * 10),
        value: (i as f64 * 0.01).sin() * 0.01,
    }
}

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08/nsds_publish_1k_samples");
    for subscribers in [1usize, 16, 130] {
        group.throughput(Throughput::Elements(1000));
        group.bench_with_input(
            BenchmarkId::from_parameter(subscribers),
            &subscribers,
            |b, &subscribers| {
                let nsds = NsdsServer::new();
                let subs: Vec<_> = (0..subscribers)
                    .map(|_| nsds.subscribe("*", 2048))
                    .collect();
                b.iter(|| {
                    for i in 0..1000u64 {
                        nsds.publish(sample(i));
                    }
                    for s in &subs {
                        std::hint::black_box(s.drain());
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_viewer(c: &mut Criterion) {
    c.bench_function("fig08/viewer_ingest_1k_and_seek", |b| {
        b.iter(|| {
            let mut v = DataViewer::new();
            for i in 0..1000u64 {
                let s = sample(i);
                v.ingest(&s.channel, s.t, s.value);
            }
            v.seek(v.live_edge);
            std::hint::black_box(v.visible_series("uiuc/dof-0/disp"))
        })
    });
    c.bench_function("fig08/hysteresis_pairing_1k", |b| {
        let mut v = DataViewer::new();
        for i in 0..1000u64 {
            let t = SimTime::from_millis(i * 10);
            v.ingest("disp", t, (i as f64 * 0.01).sin() * 0.01);
            v.ingest("force", t, (i as f64 * 0.01).sin() * 2_000.0);
        }
        v.seek(v.live_edge);
        b.iter(|| std::hint::black_box(v.hysteresis("disp", "force")))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fanout, bench_viewer
}
criterion_main!(benches);
