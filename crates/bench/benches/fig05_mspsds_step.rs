//! E4 (Figures 4 & 5) — MS-PSDS per-step cost vs decomposition width.
//!
//! The modular framework's scaling dimension: how the pseudo-dynamic
//! step cost grows with the number of substructures, first purely local
//! (the numerics alone), then with each substructure behind its own NTCP
//! site on the virtual WAN (the protocol's contribution).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use neesgrid_bench::{loopback_net, single_site};
use neesgrid_coordinator::NtcpSubstructure;
use neesgrid_gsi::ActionLimits;
use neesgrid_ntcp::SimulationPlugin;
use neesgrid_structsim::material::LinearElastic;
use neesgrid_structsim::psd::PsdTest;
use neesgrid_structsim::substructure::{SimulatedSubstructure, Substructure, SubstructureBinding};
use neesgrid_structsim::{GroundMotion, Matrix};

const STEPS: usize = 50;

fn local_substructures(n: usize) -> Vec<(SubstructureBinding, Box<dyn Substructure>)> {
    (0..n)
        .map(|i| {
            (
                SubstructureBinding::new(vec![i]),
                Box::new(SimulatedSubstructure::spring_to_ground(
                    format!("s{i}"),
                    Box::new(LinearElastic::new(2.0e5)),
                )) as Box<dyn Substructure>,
            )
        })
        .collect()
}

fn bench_local(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig05/local_psd_run50");
    for n in [1usize, 2, 4, 8] {
        let motion = GroundMotion::synthetic(9, 0.01, STEPS, 2.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let test = PsdTest::new(vec![1000.0; n], Matrix::zeros(n, n), 0.01);
            b.iter(|| {
                std::hint::black_box(test.run(local_substructures(n), &motion, STEPS).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig05/ntcp_psd_run50");
    group.sample_size(10);
    for n in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    // Fresh sites per iteration: substructure state and
                    // transaction ledgers must not leak across runs.
                    let net = loopback_net();
                    let subs: Vec<(SubstructureBinding, Box<dyn Substructure>)> = (0..n)
                        .map(|i| {
                            let client = single_site(
                                &net,
                                &format!("site-{i}"),
                                Box::new(SimulationPlugin::new(
                                    format!("sim-{i}"),
                                    Box::new(SimulatedSubstructure::spring_to_ground(
                                        format!("s{i}"),
                                        Box::new(LinearElastic::new(2.0e5)),
                                    )),
                                )),
                                ActionLimits::most_large_scale(),
                            );
                            (
                                SubstructureBinding::new(vec![i]),
                                Box::new(NtcpSubstructure::new(
                                    format!("remote-{i}"),
                                    client,
                                    1,
                                    2.0e5,
                                )) as Box<dyn Substructure>,
                            )
                        })
                        .collect();
                    (net, subs)
                },
                |(net, subs)| {
                    let motion = GroundMotion::synthetic(9, 0.01, STEPS, 2.0);
                    let test = PsdTest::new(vec![1000.0; n], Matrix::zeros(n, n), 0.01);
                    let out = test.run(subs, &motion, STEPS).unwrap();
                    drop(net);
                    std::hint::black_box(out)
                },
            )
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_local, bench_distributed
}
criterion_main!(benches);
