//! E7 (Figure 10) — the DAQ components.
//!
//! Sampling throughput vs channel count, the CSV encode of the file-drop
//! stage, and the full DAQ → drop-dir handoff.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use neesgrid_daq::{ChannelConfig, DaqSystem, FileDropDir, TimeSeries};
use neesgrid_gridsim::SimTime;

fn daq_with_channels(n: usize, rate: f64) -> DaqSystem {
    let mut daq = DaqSystem::new();
    for i in 0..n {
        daq.add_channel(
            ChannelConfig::new(format!("ch-{i}"), "m", rate),
            Box::new(move |t: SimTime| (t.as_secs_f64() * (i as f64 + 1.0)).sin()),
        );
    }
    daq
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10/acquire_1s_window_at_1khz");
    for channels in [2usize, 8, 32] {
        group.throughput(Throughput::Elements(channels as u64 * 1000));
        group.bench_with_input(
            BenchmarkId::from_parameter(channels),
            &channels,
            |b, &channels| {
                let mut daq = daq_with_channels(channels, 1000.0);
                let mut t = SimTime::ZERO;
                b.iter(|| {
                    let next = t + SimTime::from_secs(1);
                    let out = daq.acquire(t, next);
                    t = next;
                    std::hint::black_box(out)
                })
            },
        );
    }
    group.finish();
}

fn bench_filedrop(c: &mut Criterion) {
    c.bench_function("fig10/csv_encode_decode_1k_samples", |b| {
        let mut ts = TimeSeries::new("uiuc/lvdt-1", "m");
        for i in 0..1000u64 {
            ts.push(SimTime::from_millis(i), (i as f64 * 0.001).sin());
        }
        b.iter(|| {
            let csv = ts.to_csv();
            std::hint::black_box(TimeSeries::from_csv(&csv).unwrap())
        })
    });
    c.bench_function("fig10/daq_to_dropdir_window", |b| {
        let mut daq = daq_with_channels(4, 100.0);
        let dir = FileDropDir::new();
        let mut t = SimTime::ZERO;
        let mut window = 0u64;
        b.iter(|| {
            let next = t + SimTime::from_secs(1);
            for ts in daq.acquire(t, next) {
                dir.deposit_series(&ts, window, next);
            }
            t = next;
            window += 1;
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sampling, bench_filedrop
}
criterion_main!(benches);
