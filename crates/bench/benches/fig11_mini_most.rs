//! E8 (Figure 11, §3.5) — Mini-MOST.
//!
//! Full tabletop runs: the stepper-motor rig vs the first-order kinetic
//! simulator stand-in, plus a bare stepper positioning microbench.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use neesgrid_apparatus::stepper::StepperConfig;
use neesgrid_apparatus::StepperMotor;
use neesgrid_most::{run_mini_most, MiniMostConfig};

fn bench_runs(c: &mut Criterion) {
    // Print the figure-shaped summary once.
    for (label, config) in [
        ("stepper-rig", MiniMostConfig::tabletop()),
        ("kinetic-sim", MiniMostConfig::kinetic_simulator()),
    ] {
        let out = run_mini_most(&config);
        eprintln!(
            "fig11: {label}: {}/{} steps, peak {:.3} mm",
            out.steps_completed,
            config.steps,
            out.peak_displacement_m * 1e3
        );
    }

    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("mini_most_200_steps_stepper", |b| {
        let config = MiniMostConfig::tabletop();
        b.iter(|| std::hint::black_box(run_mini_most(&config)))
    });
    group.bench_function("mini_most_200_steps_kinetic", |b| {
        let config = MiniMostConfig::kinetic_simulator();
        b.iter(|| std::hint::black_box(run_mini_most(&config)))
    });
    group.finish();

    c.bench_function("fig11/stepper_move_2mm", |b| {
        let mut motor = StepperMotor::new(StepperConfig::mini_most());
        let mut sign = 1.0;
        b.iter(|| {
            sign = -sign;
            std::hint::black_box(motor.move_to(0.002 * sign).unwrap())
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_runs
}
criterion_main!(benches);
