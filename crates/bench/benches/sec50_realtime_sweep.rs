//! E10 (§5) — the near-real-time work.
//!
//! "MOST and most follow-on experiments have lax performance requirements
//! … We are working … to support distributed experiments with
//! near-real-time requirements. … we are working on improving NTCP
//! performance, while the earthquake engineers are developing simulation
//! and control software that can better tolerate delays."
//!
//! Two series are produced:
//! * virtual NTCP round-trip time vs injected one-way WAN latency (printed
//!   — latency is virtual, so this is exact, not sampled);
//! * wall-clock protocol throughput (Criterion), the ceiling on how fast a
//!   delay-tolerant integrator could step if the physics were free.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use neesgrid_bench::single_site;
use neesgrid_gridsim::{LatencyModel, NetworkConfig, SimTime, VirtualNetwork};
use neesgrid_gsi::ActionLimits;
use neesgrid_ntcp::{ControlPoint, SimulationPlugin};
use neesgrid_structsim::{LinearElastic, SimulatedSubstructure};

fn plugin() -> Box<SimulationPlugin> {
    let mut p = SimulationPlugin::new(
        "rt-sim",
        Box::new(SimulatedSubstructure::spring_to_ground(
            "col",
            Box::new(LinearElastic::new(2.0e5)),
        )),
    );
    p.compute_time = SimTime::from_millis(1);
    Box::new(p)
}

fn bench_latency_sweep(c: &mut Criterion) {
    eprintln!("sec50: virtual step time (propose+execute) vs one-way WAN latency");
    eprintln!("  latency    step RTT   max step rate");
    for latency_ms in [0u64, 5, 15, 30, 60, 120, 250] {
        let net = VirtualNetwork::new(NetworkConfig {
            default_latency: LatencyModel::Fixed(SimTime::from_millis(latency_ms)),
            ..Default::default()
        });
        let client = single_site(&net, "site", plugin(), ActionLimits::most_large_scale());
        let clock = net.clock();
        let t0 = clock.now();
        client
            .propose(
                "rt-1",
                vec![ControlPoint::displacement("dof-0", 0.001, 200.0)],
                SimTime::from_secs(10),
            )
            .unwrap();
        client.execute("rt-1").unwrap();
        let step_rtt = clock.now().saturating_sub(t0);
        let rate = if step_rtt > SimTime::ZERO {
            1.0 / step_rtt.as_secs_f64()
        } else {
            f64::INFINITY
        };
        eprintln!("  {latency_ms:>5} ms  {step_rtt:>9}  {rate:8.2} steps/s");
    }

    // Wall-clock protocol throughput (zero-latency network).
    let net = VirtualNetwork::new(NetworkConfig::default());
    let client = single_site(
        &net,
        "fast-site",
        plugin(),
        ActionLimits::most_large_scale(),
    );
    let mut n = 0u64;
    c.bench_function("sec50/protocol_step_wallclock", |b| {
        b.iter(|| {
            n += 1;
            let tx = format!("wt-{n}");
            client
                .propose(
                    &tx,
                    vec![ControlPoint::displacement("dof-0", 0.001, 200.0)],
                    SimTime::from_secs(10),
                )
                .unwrap();
            std::hint::black_box(client.execute(&tx).unwrap());
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_latency_sweep
}
criterion_main!(benches);
