//! E9 (§3.4) — the MOST runs.
//!
//! Executes the paper's scenarios at a scaled step count (the full
//! 1,500-step versions run in the integration suite) and prints their
//! reports once; Criterion then measures the cost of a scaled hybrid run
//! and of the all-simulation rehearsal.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use neesgrid_most::Scenario;

const SCALED_STEPS: usize = 100;

fn bench_scenarios(c: &mut Criterion) {
    // The §3.4 comparison, printed from scaled runs.
    for (scenario, label, paper_steps, paper_duration) in [
        (Scenario::DryRun, "Dry run", "1500/1500", "~5.5 hours"),
        (Scenario::PublicRun, "Public run", "1493/1500", ">5 hours"),
    ] {
        let artifacts = scenario.run_with_steps(SCALED_STEPS);
        eprintln!(
            "{}",
            artifacts
                .report
                .render_markdown(label, paper_steps, paper_duration)
        );
    }

    let mut group = c.benchmark_group("sec34");
    group.sample_size(10);
    group.bench_function("simulation_only_100_steps", |b| {
        b.iter(|| std::hint::black_box(Scenario::SimulationOnly.run_with_steps(SCALED_STEPS)))
    });
    group.bench_function("hybrid_dry_run_100_steps", |b| {
        b.iter(|| std::hint::black_box(Scenario::DryRun.run_with_steps(SCALED_STEPS)))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(8))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_scenarios
}
criterion_main!(benches);
