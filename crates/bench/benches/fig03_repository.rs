//! E3 (Figure 3) — the data & metadata repository.
//!
//! Sweeps the GridFTP-style transfer (file size × parallel streams),
//! NMDS object creation/validation/versioning, and the incremental
//! ingestion batch path.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use neesgrid_gridsim::SimTime;
use neesgrid_gsi::DistinguishedName;
use neesgrid_repo::metadata::{FieldType, Schema};
use neesgrid_repo::{GridFtpReceiver, GridFtpSender, Ingester, Nfms, Nmds, VirtualStore};

fn payload(n: usize) -> Bytes {
    Bytes::from((0..n).map(|i| (i * 31 + 7) as u8).collect::<Vec<u8>>())
}

fn bench_gridftp(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig03/gridftp_transfer");
    for size in [64 * 1024, 1024 * 1024] {
        for streams in [1u32, 4, 8] {
            let content = payload(size);
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("streams-{streams}"), size),
                &content,
                |b, content| {
                    b.iter(|| {
                        let sender = GridFtpSender::new(content.clone(), 8192, streams);
                        let mut rx = GridFtpReceiver::new(sender.len(), sender.file_checksum());
                        for chunk in sender.chunks() {
                            rx.accept(&chunk).unwrap();
                        }
                        std::hint::black_box(rx.finish().unwrap())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_nmds(c: &mut Criterion) {
    let owner = DistinguishedName::nees_user("BENCH", "owner");
    c.bench_function("fig03/nmds_create_validated", |b| {
        let mut nmds = Nmds::new();
        nmds.create_schema(
            "/schemas/sensor",
            &Schema::new(&[
                ("sensor_type", FieldType::String),
                ("channel", FieldType::String),
            ]),
            owner.clone(),
            SimTime::ZERO,
        )
        .unwrap();
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            nmds.create(
                format!("/objects/{n}"),
                Some("/schemas/sensor".into()),
                serde_json::json!({"sensor_type": "LVDT", "channel": "c"}),
                owner.clone(),
                SimTime::ZERO,
            )
            .unwrap();
        })
    });
    c.bench_function("fig03/nmds_update_version", |b| {
        let mut nmds = Nmds::new();
        nmds.create(
            "/obj",
            None,
            serde_json::json!({"rev": 0}),
            owner.clone(),
            SimTime::ZERO,
        )
        .unwrap();
        let mut rev = 0u64;
        b.iter(|| {
            rev += 1;
            nmds.update(
                "/obj",
                serde_json::json!({ "rev": rev }),
                &owner,
                None,
                SimTime::ZERO,
            )
            .unwrap();
        })
    });
}

fn bench_ingestion(c: &mut Criterion) {
    let operator = DistinguishedName::nees_user("BENCH", "ingester");
    c.bench_function("fig03/ingest_batch_of_10", |b| {
        let mut nfms = Nfms::new(VirtualStore::new());
        let mut nmds = Nmds::new();
        let mut ing = Ingester::new("/experiments/bench", operator.clone());
        let mut batch_no = 0u64;
        b.iter(|| {
            batch_no += 1;
            let batch: Vec<(String, Bytes)> = (0..10)
                .map(|i| (format!("w{batch_no}-{i}.csv"), payload(4096)))
                .collect();
            ing.ingest_batch(&mut nfms, &mut nmds, batch, SimTime::ZERO)
                .unwrap();
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_gridftp, bench_nmds, bench_ingestion
}
criterion_main!(benches);
