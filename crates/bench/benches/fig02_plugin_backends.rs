//! E2 (Figures 2 & 9) — the control-plugin architecture.
//!
//! The same displacement command dispatched through each backend used in
//! MOST/Mini-MOST: direct numerical simulation, the polled Mplugin, the
//! Shore-Western servo-hydraulic bridge, the Mini-MOST LabVIEW/stepper
//! rig, and the first-order kinetic simulator. Wall-time differences here
//! are protocol/emulation overhead; the *virtual* durations each backend
//! reports (actuator seconds vs model milliseconds) are printed once.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use neesgrid_apparatus::stepper::StepperConfig;
use neesgrid_apparatus::{
    ActuatorConfig, FirstOrderKineticPlugin, LabViewPlugin, LoadCell, Lvdt, ServoHydraulicActuator,
    ShoreWesternController, ShoreWesternPlugin, SteelColumn, StepperMotor, StrainGauge,
};
use neesgrid_ntcp::{BufferedPlugin, ControlPlugin, ControlPoint, SimulationPlugin};
use neesgrid_structsim::{LinearElastic, SimulatedSubstructure};

fn action(d: f64) -> Vec<ControlPoint> {
    vec![ControlPoint::displacement("dof-0", d, 5_000.0)]
}

fn sim_plugin() -> Box<dyn ControlPlugin> {
    Box::new(SimulationPlugin::new(
        "direct-sim",
        Box::new(SimulatedSubstructure::spring_to_ground(
            "col",
            Box::new(LinearElastic::new(2.0e5)),
        )),
    ))
}

fn mplugin() -> Box<dyn ControlPlugin> {
    let mut inner = sim_plugin();
    let (plugin, port) = BufferedPlugin::new("mplugin");
    let _backend = port.serve(move |actions| inner.execute(actions));
    Box::new(plugin)
}

fn shore_western() -> Box<dyn ControlPlugin> {
    let controller = ShoreWesternController::new(
        ServoHydraulicActuator::new(ActuatorConfig::lab_100kn()),
        Box::new(SteelColumn::most_uiuc()),
        Lvdt::lab_grade("lvdt", 1),
        LoadCell::new("load", 2, 150_000.0),
        120_000.0,
    );
    Box::new(ShoreWesternPlugin::new("shore-western", controller, 0.075))
}

fn labview() -> Box<dyn ControlPlugin> {
    Box::new(LabViewPlugin::new(
        "labview",
        StepperMotor::new(StepperConfig::mini_most()),
        Box::new(SteelColumn::mini_most_beam()),
        Lvdt::new("lvdt", 3, 1e-6, 1e-6),
        LoadCell::new("load", 4, 200.0),
        StrainGauge::new("strain", 5, 3000.0),
    ))
}

fn kinetic() -> Box<dyn ControlPlugin> {
    Box::new(FirstOrderKineticPlugin::new("kinetic", 0.05, 1100.0))
}

fn bench_backends(c: &mut Criterion) {
    // Print the virtual execution durations once (the figure's content:
    // what each backend's "execute" costs in experiment time).
    eprintln!("fig02: virtual execution durations for a 2 mm command");
    for (label, mut plugin) in [
        ("direct-sim", sim_plugin()),
        ("mplugin-polled", mplugin()),
        ("shore-western", shore_western()),
        ("labview-stepper", labview()),
        ("first-order-kinetic", kinetic()),
    ] {
        let out = plugin.execute(&action(0.002)).unwrap();
        eprintln!("  {label:<22} {}", out.duration);
    }

    let mut group = c.benchmark_group("fig02");
    for (label, factory) in [
        ("direct-sim", sim_plugin as fn() -> Box<dyn ControlPlugin>),
        ("mplugin-polled", mplugin),
        ("shore-western", shore_western),
        ("labview-stepper", labview),
        ("first-order-kinetic", kinetic),
    ] {
        group.bench_function(label, |b| {
            let mut plugin = factory();
            let mut sign = 1.0;
            b.iter(|| {
                sign = -sign;
                std::hint::black_box(plugin.execute(&action(0.002 * sign)).unwrap())
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_backends
}
criterion_main!(benches);
