//! Telemetry overhead — proving the instrumentation is affordable.
//!
//! Runs the 8-site experiment uninstrumented and fully instrumented
//! (trace + metrics + flight recorder all live), takes the best of
//! several runs of each, and writes `BENCH_telemetry_overhead.json` at
//! the repo root. The acceptance bar is <5% wall-clock overhead; the
//! harness asserts a looser 25% ceiling so a noisy CI machine cannot
//! turn a measurement into a flake, and records the measured figure for
//! the driver to judge.

use std::time::Instant;

use neesgrid_coordinator::Termination;
use neesgrid_most::{n_site, n_site_with_telemetry};
use neesgrid_telemetry::Telemetry;

const SITES: usize = 8;
const STEPS: usize = 200;
const SEED: u64 = 2004;
const RUNS: usize = 12;

fn main() {
    // Warm-up: fault both code paths into cache and let the allocator reach
    // steady state (the trace buffer is multi-megabyte; its first-ever
    // allocation faults pages that later runs reuse) before timing anything.
    n_site(SITES, SEED).run(STEPS);
    n_site_with_telemetry(SITES, SEED, Telemetry::recording()).run(STEPS);

    // Interleave the two configurations, alternating which goes first in
    // each pair, so CPU-frequency drift, background load, and cache state
    // hit both equally; compare bests.
    let mut plain_ms = f64::INFINITY;
    let mut instrumented_ms = f64::INFINITY;
    let mut trace_lines = 0usize;
    let run_plain = |plain_ms: &mut f64| {
        let started = Instant::now();
        let outcome = n_site(SITES, SEED).run(STEPS);
        assert!(matches!(outcome.termination, Termination::Completed));
        *plain_ms = plain_ms.min(started.elapsed().as_secs_f64() * 1e3);
    };
    let run_instrumented = |instrumented_ms: &mut f64, trace_lines: &mut usize| {
        let telemetry = Telemetry::recording();
        let started = Instant::now();
        let outcome = n_site_with_telemetry(SITES, SEED, telemetry.clone()).run(STEPS);
        let elapsed = started.elapsed().as_secs_f64() * 1e3;
        assert!(matches!(outcome.termination, Termination::Completed));
        *trace_lines = telemetry.export_jsonl().lines().count();
        *instrumented_ms = instrumented_ms.min(elapsed);
    };
    for round in 0..RUNS {
        if round % 2 == 0 {
            run_plain(&mut plain_ms);
            run_instrumented(&mut instrumented_ms, &mut trace_lines);
        } else {
            run_instrumented(&mut instrumented_ms, &mut trace_lines);
            run_plain(&mut plain_ms);
        }
    }
    eprintln!("telemetry_overhead: uninstrumented best of {RUNS}: {plain_ms:>8.2} ms");
    eprintln!("telemetry_overhead: instrumented   best of {RUNS}: {instrumented_ms:>8.2} ms");

    let overhead = instrumented_ms / plain_ms - 1.0;
    eprintln!(
        "telemetry_overhead: {SITES} sites x {STEPS} steps, {trace_lines} trace lines, \
         overhead {:+.2}%",
        overhead * 1e2
    );
    assert!(
        overhead < 0.25,
        "telemetry overhead {:.1}% is far above the 5% budget",
        overhead * 1e2
    );

    let doc = serde_json::json!({
        "bench": "telemetry_overhead",
        "sites": SITES,
        "steps": STEPS,
        "seed": SEED,
        "runs_each": RUNS,
        "uninstrumented_ms": plain_ms,
        "instrumented_ms": instrumented_ms,
        "overhead_fraction": overhead,
        "trace_lines": trace_lines,
        "budget_fraction": 0.05,
        "within_budget": overhead < 0.05,
    });
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_telemetry_overhead.json"
    );
    std::fs::write(out, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write BENCH_telemetry_overhead.json");
    eprintln!("telemetry_overhead: wrote {out}");
}
