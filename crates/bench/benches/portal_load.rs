//! Portal load — 10,000 tenants through the multi-tenant experiment
//! service.
//!
//! Every tenant logs in over the wire, submits one small experiment, and
//! a sampled subset also opens a streaming observer on its own run and
//! probes a *neighbour's* run (cancel + observe) — those probes must all
//! come back `CrossTenant`; any success is an isolation leak and fails
//! the bench. Submissions that hit the bounded queue are shed with a
//! typed `QueueFull` and retried after a scheduler tick, so the run also
//! exercises the backpressure path at scale. Reports experiments/sec
//! (wall clock) and the service's p99 submission→first-step latency
//! (virtual time), and writes `BENCH_portal.json` at the repo root.

use std::sync::Arc;
use std::time::Instant;

use neesgrid_checkpoint::MemoryCheckpointStore;
use neesgrid_gridsim::{NetworkProfile, SimTime, VirtualNetwork};
use neesgrid_gsi::{CertificateAuthority, Credential, DistinguishedName};
use neesgrid_portal::{
    ExperimentSpec, Portal, PortalClient, PortalConfig, Rejection, Request, Response,
};

const TENANTS: u64 = 10_000;
const STEPS: usize = 8;
const OBSERVE_EVERY: u64 = 250;
const PROBE_EVERY: u64 = 97;
const SEED: u64 = 2004;

fn call(client: &PortalClient, who: &DistinguishedName, request: Request) -> Response {
    client.call_as(who, request).expect("portal link is up")
}

fn main() {
    let net = VirtualNetwork::new(NetworkProfile::CampusWan.config(SEED));
    let ca = CertificateAuthority::nees(SEED);
    let service = Portal::serve(
        &net,
        "portal",
        ca.verifier(),
        Arc::new(MemoryCheckpointStore::new()),
        PortalConfig {
            workers: 8,
            slice_steps: 16,
            queue_capacity: 64,
            ..PortalConfig::default()
        },
    )
    .expect("portal node is fresh");
    let client = PortalClient::connect(&net, "client", "portal").expect("client node is fresh");

    let mut leaks = 0u64;
    let mut queue_full_retries = 0u64;
    let mut observed_samples = 0u64;
    let mut previous_run: Option<(String, DistinguishedName)> = None;

    let started = Instant::now();
    for i in 0..TENANTS {
        let cred = Credential::issue(
            &ca,
            DistinguishedName::nees_user("REMOTE", &format!("tenant-{i:05}")),
            SimTime::ZERO,
            SimTime::from_secs(24 * 3600),
            SEED + i,
        );
        let who = cred.identity().clone();
        match call(
            &client,
            &who,
            Request::Login {
                token: cred.token(),
            },
        ) {
            Response::Session { .. } => {}
            other => panic!("tenant {i} login refused: {other:?}"),
        }

        let spec = ExperimentSpec::basic(1, STEPS, SEED + i, 0);
        let run = loop {
            match call(&client, &who, Request::Submit { spec: spec.clone() }) {
                Response::Submitted { run, .. } => break run,
                Response::Rejected {
                    rejection: Rejection::QueueFull { .. },
                } => {
                    // Explicit shed: free a slot, then retry.
                    queue_full_retries += 1;
                    service.tick();
                }
                other => panic!("tenant {i} submission refused: {other:?}"),
            }
        };

        // A sampled subset streams its own run.
        if i % OBSERVE_EVERY == 0 {
            let observer = match call(
                &client,
                &who,
                Request::Observe {
                    run: run.clone(),
                    channels: "*".into(),
                    buffer: 256,
                },
            ) {
                Response::Observing { observer } => observer,
                other => panic!("tenant {i} observe refused: {other:?}"),
            };
            service.drain();
            loop {
                match call(&client, &who, Request::Poll { observer, max: 256 }) {
                    Response::Samples { samples, done, .. } => {
                        observed_samples += samples.len() as u64;
                        if done {
                            break;
                        }
                    }
                    other => panic!("tenant {i} poll refused: {other:?}"),
                }
            }
            call(&client, &who, Request::Unobserve { observer });
        }

        // A sampled subset probes its neighbour's run. Every probe must
        // be denied; a success is a cross-tenant leak.
        if i % PROBE_EVERY == 0 {
            if let Some((victim_run, _)) = &previous_run {
                for probe in [
                    Request::Cancel {
                        run: victim_run.clone(),
                    },
                    Request::Observe {
                        run: victim_run.clone(),
                        channels: "*".into(),
                        buffer: 16,
                    },
                ] {
                    match call(&client, &who, probe) {
                        Response::Rejected {
                            rejection: Rejection::CrossTenant { .. },
                        } => {}
                        _ => leaks += 1,
                    }
                }
            }
        }
        previous_run = Some((run, who));

        // Keep the pool fed without waiting for queue pressure.
        if i % 16 == 0 {
            service.tick();
        }
    }
    service.drain();
    let elapsed = started.elapsed();

    let stats = service.stats();
    let experiments_per_sec = stats.completed as f64 / elapsed.as_secs_f64();
    assert_eq!(leaks, 0, "cross-tenant probes succeeded");
    assert_eq!(stats.completed, TENANTS, "not every experiment finished");
    assert!(stats.peak_sessions as u64 >= TENANTS);
    assert!(observed_samples > 0, "observers never saw a sample");

    eprintln!(
        "portal_load: {TENANTS} tenants in {elapsed:.2?}  ({experiments_per_sec:.1} experiments/s)"
    );
    eprintln!(
        "portal_load: p99 submit→first-step {:.3} ms virtual, {} QueueFull retries, {} samples streamed, 0 leaks",
        stats.p99_first_step_ns as f64 / 1e6,
        queue_full_retries,
        observed_samples,
    );

    let doc = serde_json::json!({
        "bench": "portal_load",
        "tenants": TENANTS,
        "steps_per_experiment": STEPS,
        "workers": 8,
        "wall_clock_ms": elapsed.as_secs_f64() * 1e3,
        "experiments_per_sec": experiments_per_sec,
        "p99_first_step_virtual_ns": stats.p99_first_step_ns,
        "queue_full_retries": queue_full_retries,
        "observed_samples": observed_samples,
        "cross_tenant_leaks": leaks,
        "stats": {
            "admitted": stats.admitted,
            "shed": stats.shed,
            "completed": stats.completed,
            "worker_crashes": stats.worker_crashes,
            "peak_sessions": stats.peak_sessions,
        },
    });
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_portal.json");
    std::fs::write(out, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write BENCH_portal.json");
    eprintln!("portal_load: wrote {out}");
}
