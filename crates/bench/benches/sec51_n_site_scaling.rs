//! §5.1 — scaling the two-phase step discipline beyond three sites.
//!
//! The paper asks how far the MOST architecture generalizes; the event
//! engine makes the question cheap to answer. This harness runs the
//! N-site experiment at N = 3, 8, 16, 64 (100 steps each, fully virtual,
//! single-threaded), reports steps/second, double-runs the largest
//! configuration to prove bit-identical determinism, and writes
//! `BENCH_scaling.json` at the repo root.

use std::time::Instant;

use neesgrid_coordinator::Termination;
use neesgrid_most::n_site;

const STEPS: usize = 100;
const SEED: u64 = 2004;

fn main() {
    let mut rows = Vec::new();
    for n in [3usize, 8, 16, 64] {
        let started = Instant::now();
        let outcome = n_site(n, SEED).run(STEPS);
        let elapsed = started.elapsed();
        assert!(
            matches!(outcome.termination, Termination::Completed),
            "N={n} run did not complete"
        );
        assert_eq!(outcome.steps_completed(), STEPS);
        let steps_per_sec = STEPS as f64 / elapsed.as_secs_f64();
        eprintln!(
            "sec51/n_site: N={n:>2}  {STEPS} steps in {:>8.2?}  ({steps_per_sec:>9.1} steps/s)",
            elapsed
        );
        rows.push(serde_json::json!({
            "sites": n,
            "steps": STEPS,
            "wall_clock_ms": elapsed.as_secs_f64() * 1e3,
            "steps_per_sec": steps_per_sec,
        }));
    }

    // Determinism at the largest configuration: the full observable record
    // of two same-seed runs must match bit for bit.
    let a = n_site(64, SEED).run(STEPS);
    let b = n_site(64, SEED).run(STEPS);
    let deterministic = a.log.events == b.log.events
        && a.history.displacement == b.history.displacement
        && a.history.restoring == b.history.restoring;
    assert!(deterministic, "64-site runs with the same seed diverged");
    eprintln!("sec51/n_site: 64-site double-run bit-identical: {deterministic}");

    let doc = serde_json::json!({
        "bench": "sec51_n_site_scaling",
        "seed": SEED,
        "rows": rows,
        "deterministic_at_64_sites": deterministic,
    });
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    std::fs::write(out, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write BENCH_scaling.json");
    eprintln!("sec51/n_site: wrote {out}");
}
