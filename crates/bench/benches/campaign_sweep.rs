//! Campaign sweep — a declarative scenario matrix through the portal.
//!
//! Expands three DSL scenarios (a deterministic mid-run reset, a clean
//! control, and a recoverable drop) into a 240-cell (scenario × seed)
//! matrix, drives every cell through the portal's admission queue and
//! worker pool, signatures each trace, and archives every run into the
//! content-addressed corpus. Reports runs/sec (wall clock), the unique
//! failure-signature count, and the corpus dedup ratio — 240 runs that
//! collapse to a handful of signatures are the whole point of a
//! regression corpus. Asserts a second same-seed sweep reproduces the
//! verdict table byte-for-byte, and writes `BENCH_campaign.json`.

use std::time::Instant;

use neesgrid_campaign::{run_campaign, CampaignConfig, ScenarioDoc};

const RESET: &str = r#"
campaign "bench-reset" {
  sites   { count = 2; }
  faults  { reset "coordinator" -> "site-000" at step 3 phase execute; }
  run     { steps = 8; checkpoint-every = 0; policy = partial; }
  sweep   { seeds = 1..120; }
}
"#;

const CLEAN: &str = r#"
campaign "bench-clean" {
  sites { count = 2; }
  run   { steps = 8; checkpoint-every = 0; }
  sweep { seeds = 1..60; }
}
"#;

const DROP: &str = r#"
campaign "bench-drop" {
  sites  { count = 2; }
  faults { drop "coordinator" -> "site-000" at step 2 phase propose; }
  run    { steps = 8; checkpoint-every = 0; policy = full; }
  sweep  { seeds = 1..60; }
}
"#;

fn main() {
    let docs: Vec<ScenarioDoc> = [RESET, CLEAN, DROP]
        .iter()
        .map(|src| ScenarioDoc::parse(src).expect("bench scenario parses"))
        .collect();
    let config = CampaignConfig {
        workers: 8,
        slice_steps: 16,
        queue_capacity: 32,
    };

    let started = Instant::now();
    let report = run_campaign(&docs, &config).expect("campaign runs");
    let elapsed = started.elapsed();

    let runs = report.verdicts.len();
    let runs_per_sec = runs as f64 / elapsed.as_secs_f64();
    let unique = report.unique_signatures();
    // 240 archived runs over N distinct signatures: the corpus keeps one
    // novel entry per signature, everything else is a reproduction.
    let novel = report.entries.iter().filter(|e| e.novel).count();
    let dedup_ratio = runs as f64 / unique.max(1) as f64;

    assert_eq!(runs, 240, "matrix expands to 240 cells");
    assert_eq!(report.entries.len(), runs, "every run archived");
    assert_eq!(novel, unique, "one novel corpus entry per signature");
    assert!(
        unique <= 4,
        "failure classes collapsed ({unique} signatures)"
    );

    // Determinism gate: the same matrix re-run must reproduce the verdict
    // table and corpus digest byte-for-byte.
    let again = run_campaign(&docs, &config).expect("second sweep runs");
    assert_eq!(
        report.verdict_table(),
        again.verdict_table(),
        "same-seed sweeps must be byte-identical"
    );
    assert_eq!(report.corpus_digest, again.corpus_digest);

    eprintln!(
        "campaign_sweep: {runs} runs in {elapsed:.2?}  ({runs_per_sec:.1} runs/s through the portal)"
    );
    eprintln!(
        "campaign_sweep: {unique} unique signatures, {novel} novel corpus entries, dedup ratio {dedup_ratio:.1}x, {} QueueFull retries",
        report.queue_full_retries
    );

    let doc = serde_json::json!({
        "bench": "campaign_sweep",
        "runs": runs,
        "steps_per_run": 8,
        "workers": config.workers,
        "wall_clock_ms": elapsed.as_secs_f64() * 1e3,
        "runs_per_sec": runs_per_sec,
        "unique_signatures": unique,
        "novel_corpus_entries": novel,
        "corpus_dedup_ratio": dedup_ratio,
        "queue_full_retries": report.queue_full_retries,
        "ticks": report.ticks,
        "corpus_digest": report.corpus_digest,
        "deterministic_rerun": true,
    });
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    std::fs::write(out, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write BENCH_campaign.json");
    eprintln!("campaign_sweep: wrote {out}");
}
