//! E1 (Figure 1) — NTCP transaction state machine.
//!
//! Regenerates the behavioural content of the state-transition figure:
//! the cost of each protocol phase (propose, execute, cancel, full
//! lifecycle over the network) and of the pure in-memory state machine.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use neesgrid_bench::{loopback_net, single_site};
use neesgrid_gridsim::SimTime;
use neesgrid_gsi::ActionLimits;
use neesgrid_ntcp::{ControlPoint, SimulationPlugin, Transaction, TxState};
use neesgrid_structsim::{LinearElastic, SimulatedSubstructure};

fn plugin() -> Box<SimulationPlugin> {
    Box::new(SimulationPlugin::new(
        "bench-sim",
        Box::new(SimulatedSubstructure::spring_to_ground(
            "col",
            Box::new(LinearElastic::new(2.0e5)),
        )),
    ))
}

fn action(d: f64) -> Vec<ControlPoint> {
    vec![ControlPoint::displacement("dof-0", d, 2.0e5 * d.abs())]
}

fn bench_state_machine(c: &mut Criterion) {
    c.bench_function("fig01/state_machine_full_lifecycle", |b| {
        b.iter(|| {
            let mut tx = Transaction::propose(
                "t",
                action(0.001),
                SimTime::from_secs(30),
                SimTime::from_secs(1),
            );
            tx.transition(TxState::Accepted, SimTime::from_secs(2))
                .unwrap();
            tx.transition(TxState::Executing, SimTime::from_secs(3))
                .unwrap();
            tx.transition(TxState::Completed, SimTime::from_secs(4))
                .unwrap();
            std::hint::black_box(tx.to_sde_value())
        })
    });
}

fn bench_protocol_phases(c: &mut Criterion) {
    let net = loopback_net();
    let client = single_site(&net, "site", plugin(), ActionLimits::most_large_scale());
    let mut n = 0u64;
    c.bench_function("fig01/propose_accept", |b| {
        b.iter(|| {
            n += 1;
            client
                .propose(&format!("p-{n}"), action(0.001), SimTime::from_secs(30))
                .unwrap();
        })
    });
    c.bench_function("fig01/propose_execute_lifecycle", |b| {
        b.iter(|| {
            n += 1;
            let tx = format!("l-{n}");
            client
                .propose(&tx, action(0.001), SimTime::from_secs(30))
                .unwrap();
            std::hint::black_box(client.execute(&tx).unwrap());
        })
    });
    c.bench_function("fig01/propose_cancel", |b| {
        b.iter(|| {
            n += 1;
            let tx = format!("c-{n}");
            client
                .propose(&tx, action(0.001), SimTime::from_secs(30))
                .unwrap();
            client.cancel(&tx).unwrap();
        })
    });
    c.bench_function("fig01/propose_rejected_by_policy", |b| {
        b.iter(|| {
            n += 1;
            let err = client
                .propose(&format!("r-{n}"), action(9.0), SimTime::from_secs(30))
                .unwrap_err();
            std::hint::black_box(err)
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_state_machine, bench_protocol_phases
}
criterion_main!(benches);
