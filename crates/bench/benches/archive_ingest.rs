//! Archive ingest throughput under experiment load.
//!
//! The paper's repository ingested MOST's captures while the experiment
//! was still running. This harness reproduces that contention case on
//! one engine: a 64-site MOST experiment runs while striped archive
//! transfers replicate synthetic captures between repository sites, all
//! interleaved in virtual time. Reports aggregate ingest throughput
//! (virtual MB/s), block dedup counts, and — the guardrail — that the
//! co-resident MOST run keeps its step rate (within noise) and produces
//! a displacement history bit-identical to a solo run. Writes
//! `BENCH_archive.json` at the repo root.

use std::time::Instant;

use bytes::Bytes;

use neesgrid_archive::{ArchiveSite, StripeConfig, TransferStatus};
use neesgrid_coordinator::Termination;
use neesgrid_most::n_site;
use neesgrid_repo::VirtualStore;
use neesgrid_telemetry::Telemetry;

const STEPS: usize = 100;
const SEED: u64 = 2004;
const SITES: usize = 64;
/// Synthetic capture size per artifact (a few minutes of NSDS samples).
const CAPTURE_BYTES: usize = 512 * 1024;
/// Artifacts pushed while the experiment runs.
const CAPTURES: usize = 4;

fn payload(n: usize, salt: u32) -> Bytes {
    Bytes::from(
        (0..n)
            .map(|i| ((i as u32).wrapping_mul(2_654_435_761).wrapping_add(salt) >> 24) as u8)
            .collect::<Vec<u8>>(),
    )
}

fn history_crc(displacement: &[Vec<f64>]) -> u32 {
    let json = serde_json::to_vec(displacement).expect("history serializes");
    let mut crc = 0xFFFF_FFFFu32;
    for &b in &json {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn main() {
    // Warm-up: one untimed run so allocator and page-cache effects don't
    // land on whichever timed phase happens to go first.
    let _ = n_site(SITES, SEED).run(STEPS);

    // Phase 1 — baseline: the 64-site experiment with no archive traffic.
    let started = Instant::now();
    let solo = n_site(SITES, SEED).run(STEPS);
    let solo_elapsed = started.elapsed();
    assert!(matches!(solo.termination, Termination::Completed));
    let solo_rate = STEPS as f64 / solo_elapsed.as_secs_f64();
    let solo_digest = history_crc(&solo.history.displacement);
    eprintln!(
        "archive_ingest: solo MOST {STEPS} steps in {solo_elapsed:>8.2?} ({solo_rate:.1} steps/s)"
    );

    // Phase 2 — the same experiment with archive replication sharing the
    // engine: attach repository sites to the experiment's own network,
    // queue striped pushes, and let the MOST run's event pump drive them.
    let exp = n_site(SITES, SEED);
    let telemetry = Telemetry::disabled();
    let config = StripeConfig::default();
    let origin = ArchiveSite::attach(
        exp.network(),
        "repo-origin",
        VirtualStore::new(),
        config.clone(),
        &telemetry,
    )
    .expect("origin attaches");
    let mirror = ArchiveSite::attach(
        exp.network(),
        "repo-mirror",
        VirtualStore::new(),
        config,
        &telemetry,
    )
    .expect("mirror attaches");

    let mut transfers = Vec::new();
    let mut total_bytes = 0u64;
    for c in 0..CAPTURES {
        let content = payload(CAPTURE_BYTES, c as u32);
        total_bytes += content.len() as u64;
        let logical = format!("/runs/most-{c}/capture.jsonl");
        let manifest = origin.ingest_local(&logical, &content, exp.network().clock().now());
        transfers.push(origin.start_push("repo-mirror", manifest));
    }
    // One duplicate capture: its blocks must dedupe, not reship.
    let dup = origin.ingest_local(
        "/runs/most-0-retry/capture.jsonl",
        &payload(CAPTURE_BYTES, 0),
        exp.network().clock().now(),
    );
    transfers.push(origin.start_push("repo-mirror", dup));

    let started = Instant::now();
    let loaded = exp.run(STEPS);
    let loaded_elapsed = started.elapsed();
    assert!(matches!(loaded.termination, Termination::Completed));
    let loaded_rate = STEPS as f64 / loaded_elapsed.as_secs_f64();
    let loaded_digest = history_crc(&loaded.history.displacement);

    // The guardrail: archive traffic must not perturb the experiment.
    assert_eq!(
        solo_digest, loaded_digest,
        "MOST displacement history changed under archive load"
    );

    // Every transfer resolved during the run's event pumping.
    let mut blocks_sent = 0u64;
    let mut virtual_elapsed_ns = 0u64;
    let mut completed = 0usize;
    for id in &transfers {
        match origin.status(*id) {
            Some(TransferStatus::Completed(report)) => {
                completed += 1;
                blocks_sent += report.blocks_sent;
                virtual_elapsed_ns = virtual_elapsed_ns.max(report.elapsed.as_nanos());
            }
            other => panic!("transfer {id} unresolved after the run: {other:?}"),
        }
    }
    let stats = mirror.cas().stats();
    let virtual_secs = virtual_elapsed_ns as f64 / 1e9;
    let mb = total_bytes as f64 / (1024.0 * 1024.0);
    let throughput = mb / virtual_secs;
    let rate_ratio = loaded_rate / solo_rate;
    eprintln!(
        "archive_ingest: {completed} transfers, {mb:.1} MiB in {virtual_secs:.3}s virtual \
         ({throughput:.1} MB/s), {} blocks deduped",
        stats.blocks_deduped
    );
    eprintln!(
        "archive_ingest: MOST with load {STEPS} steps in {loaded_elapsed:>8.2?} \
         ({loaded_rate:.1} steps/s, {:.1}% of solo)",
        rate_ratio * 100.0
    );
    assert!(
        stats.blocks_deduped > 0,
        "duplicate capture shipped instead of deduping"
    );

    let doc = serde_json::json!({
        "bench": "archive_ingest",
        "seed": SEED,
        "sites": SITES,
        "steps": STEPS,
        "captures": CAPTURES + 1,
        "capture_bytes": CAPTURE_BYTES,
        "ingest_mb": mb,
        "ingest_virtual_secs": virtual_secs,
        "ingest_mb_per_virtual_sec": throughput,
        "blocks_sent": blocks_sent,
        "blocks_deduped": stats.blocks_deduped,
        "bytes_deduped": stats.bytes_deduped,
        "solo_steps_per_sec": solo_rate,
        "loaded_steps_per_sec": loaded_rate,
        "step_rate_ratio": rate_ratio,
        "history_digest_unchanged": solo_digest == loaded_digest,
    });
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_archive.json");
    std::fs::write(out, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write BENCH_archive.json");
    eprintln!("archive_ingest: wrote {out}");
}
