//! # neesgrid-analyzer — the workspace's own static-analysis gate
//!
//! Two tools the compiler and `cargo test` cannot replace, born from the
//! paper's step-1493 failure (an unhandled network error under an
//! untested interleaving) and PR 1's determinism-dependent checkpoint
//! guarantee:
//!
//! * [`rules`] + [`lexer`] + [`parse`] — an **invariant linter** over the
//!   workspace source: no `unwrap()`/`expect()`/`panic!` in protocol-crate
//!   library code, no wall-clock reads outside annotated real-time paths,
//!   no `todo!`, documented public protocol APIs, plus the determinism and
//!   concurrency contracts in [`contracts`] (no hash-order iteration,
//!   bounded-buffer declarations) and [`lockorder`] (workspace-wide mutex
//!   acquisition order). Hand-rolled lexer and item-level parse layer,
//!   zero external dependencies, same vendoring policy as `crates/shims`.
//! * [`checker`] — an **exhaustive schedule checker** that drives the
//!   NTCP propose/execute/cancel machine through every interleaving of
//!   message duplication, reply loss, and snapshot/restore within a
//!   bounded budget, proving at-most-once execution and dedup-cache
//!   consistency across a checkpoint-restore boundary.
//! * [`portal_checker`] — the same exhaustive technique pointed at the
//!   portal worker pool: submit/slice/kill/checkpoint/cancel
//!   interleavings, proving at-most-once execution, step-budget
//!   conservation, and bit-identical completion across reschedules.
//!
//! All run from one binary (`cargo run -p neesgrid-analyzer -- lint` /
//! `-- check-ntcp` / `-- check-portal`) and all gate `scripts/check.sh`.

pub mod baseline;
pub mod checker;
pub mod contracts;
pub mod lexer;
pub mod lockorder;
pub mod parse;
pub mod portal_checker;
pub mod report;
pub mod rules;

pub use checker::{check, CheckConfig, CheckReport, Mutation, Violation};
pub use rules::{lint_source, lint_workspace, rules_for, Finding, LintSummary, RuleSet};
