//! The invariant lint rules and the engine that applies them.
//!
//! Nine rules, each guarding a property the rest of the workspace depends
//! on but the compiler cannot check:
//!
//! | rule            | invariant                                              |
//! |-----------------|--------------------------------------------------------|
//! | `no-unwrap`     | protocol crates never `unwrap()`/`expect()`/`panic!` in non-test library code — the step-1493 failure class |
//! | `no-wall-clock` | nothing outside annotated real-time paths reads the wall clock (`Instant::now`, `SystemTime::now`, `thread::sleep`) — checkpoint replay and fault-plan indexing assume determinism. In protocol and `ogsi` library code the rule also flags the blocking-wait patterns `recv_timeout(…)` and `Duration::from_secs(…)`: with the event engine owning time, a hard-coded real-seconds wait is almost always a bug |
//! | `no-todo`       | no `todo!`/`unimplemented!` ships                       |
//! | `missing-docs`  | public items of protocol crates carry doc comments      |
//! | `telemetry-span-balance` | in protocol crates a function that calls `.span_start(…)` must also call `.span_end(…)`, with no `return` or `?` between the first start and the last end — the wrapper pattern that guarantees spans close on every path. Cross-function spans (the ogsi RPC call/complete pair) live in exempt crates |
//! | `no-unbounded-channel` | queueing code (portal, coordinator, daq) never constructs an unbounded queue: `unbounded(…)`, zero-capacity `channel()`, and `VecDeque::new()` are flagged. Multi-tenant admission only sheds load if every queue has an explicit capacity and an explicit policy at the push site |
//! | `no-hash-iteration` | replay-relevant crates (gridsim, ogsi, ntcp, coordinator, portal, telemetry) never iterate a `HashMap`/`HashSet` — hash order varies run-to-run and breaks bit-identical replay. Tracked through fields, locals, params, `use … as` aliases, and lock guards by the [`crate::parse`] layer; a `BTreeMap` conversion or an in-statement sort passes |
//! | `lock-order` | across portal/coordinator, no two mutexes are acquired in both orders (the 2-cycle in the acquired-before graph) — see [`crate::lockorder`] |
//! | `bounded-buffer-contract` | every channel/ring construction in queueing code carries a `// analyzer:buffer(cap = …, drop = oldest\|shed\|block)` declaration whose capacity matches the code — the machine-checked half of the bounded-buffering contract |
//!
//! Code inside `#[cfg(test)]` / `#[test]` regions is exempt from every
//! rule. A finding can be waived in place with
//! `// analyzer:allow(<rule>, reason = "…")` on the offending line or the
//! line above; a pragma without a real reason is itself a violation
//! (`bad-pragma`), and a pragma that no longer suppresses anything is one
//! too (`dead-pragma`) — stale waivers rot into false documentation.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::contracts::{check_buffer_contract, check_hash_iteration, BufferDecl};
use crate::lexer::{lex, Delim, Pragma, TokKind, Token};
use crate::lockorder::{self, FileLocks};
use crate::parse::ParsedFile;

/// The nine enforceable rules, in reporting order.
pub const RULE_NAMES: [&str; 9] = [
    "no-unwrap",
    "no-wall-clock",
    "no-todo",
    "missing-docs",
    "telemetry-span-balance",
    "no-unbounded-channel",
    "no-hash-iteration",
    "lock-order",
    "bounded-buffer-contract",
];

/// Rule id reported for malformed or reasonless suppression pragmas.
pub const BAD_PRAGMA: &str = "bad-pragma";

/// Rule id reported for pragmas that no longer suppress anything.
pub const DEAD_PRAGMA: &str = "dead-pragma";

/// Which rules apply to one file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleSet {
    /// `no-unwrap` applies.
    pub unwrap: bool,
    /// `no-wall-clock` applies.
    pub wall_clock: bool,
    /// The stricter `no-wall-clock` extension for event-engine code:
    /// `recv_timeout` and `Duration::from_secs` are also flagged.
    pub blocking: bool,
    /// `no-todo` applies.
    pub todo: bool,
    /// `missing-docs` applies.
    pub docs: bool,
    /// `telemetry-span-balance` applies.
    pub span_balance: bool,
    /// `no-unbounded-channel` applies.
    pub bounded_queues: bool,
    /// `no-hash-iteration` applies.
    pub hash_iteration: bool,
    /// `lock-order` sequences are extracted (the cross-file check runs in
    /// [`lint_workspace`]).
    pub lock_order: bool,
    /// `bounded-buffer-contract` applies.
    pub buffer_contract: bool,
}

impl RuleSet {
    /// Every rule on (used by tests).
    pub fn all() -> Self {
        RuleSet {
            unwrap: true,
            wall_clock: true,
            blocking: true,
            todo: true,
            docs: true,
            span_balance: true,
            bounded_queues: true,
            hash_iteration: true,
            lock_order: true,
            buffer_contract: true,
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (one of [`RULE_NAMES`] or [`BAD_PRAGMA`]).
    pub rule: &'static str,
    /// Human-readable detail.
    pub message: String,
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations found (bad pragmas included).
    pub findings: Vec<Finding>,
    /// Number of findings waived by valid pragmas.
    pub suppressed: usize,
    /// Findings waived, broken down by rule (for the baseline ratchet).
    pub suppressed_by_rule: BTreeMap<&'static str, usize>,
    /// Per-function lock-acquisition sequences (when `lock_order` is on;
    /// consumed by the cross-file pass in [`lint_workspace`]).
    pub lock_seqs: Vec<Vec<lockorder::LockSite>>,
    /// Lines carrying `analyzer:allow(lock-order, …)` pragmas — their
    /// dead/used status is only known after the cross-file pass.
    pub lock_allows: Vec<u32>,
}

/// Result of linting the whole workspace.
#[derive(Debug, Default)]
pub struct LintSummary {
    /// All violations, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Total findings waived by valid pragmas.
    pub suppressed: usize,
    /// Waived findings per `(file, rule)` — the baseline ratchet compares
    /// these so a new pragma'd site fails CI just like a new violation.
    pub suppressed_sites: BTreeMap<(String, String), usize>,
}

impl LintSummary {
    /// Count of findings per rule, for the trend summary line.
    pub fn per_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for f in &self.findings {
            *m.entry(f.rule).or_insert(0) += 1;
        }
        m
    }
}

/// A validated suppression.
struct Suppression {
    line: u32,
    rule: &'static str,
    /// How many findings this pragma waived (zero at the end = dead).
    used: usize,
}

/// Parse pragmas into suppressions and buffer declarations; malformed or
/// unknown-kind pragmas become findings.
fn parse_pragmas(
    file: &str,
    pragmas: &[Pragma],
    findings: &mut Vec<Finding>,
) -> (Vec<Suppression>, Vec<BufferDecl>) {
    let mut allows = Vec::new();
    let mut buffers = Vec::new();
    for p in pragmas {
        let parsed = match p.kind.as_str() {
            "allow" => parse_pragma_text(&p.text).map(|rule| {
                allows.push(Suppression {
                    line: p.line,
                    rule,
                    used: 0,
                });
            }),
            "buffer" => parse_buffer_text(&p.text).map(|(cap, drop)| {
                buffers.push(BufferDecl {
                    line: p.line,
                    cap,
                    drop,
                    used: false,
                });
            }),
            other => Err(format!(
                "unknown analyzer pragma kind '{other}' — expected `allow` or `buffer`"
            )),
        };
        if let Err(why) = parsed {
            findings.push(Finding {
                file: file.to_string(),
                line: p.line,
                rule: BAD_PRAGMA,
                message: why,
            });
        }
    }
    (allows, buffers)
}

/// Parse `(cap = <expr>, drop = oldest|shed|block)`.
fn parse_buffer_text(text: &str) -> Result<(String, String), String> {
    let body = text
        .strip_prefix('(')
        .and_then(|t| t.rfind(')').map(|end| &t[..end]))
        .ok_or_else(|| {
            "buffer pragma must be `analyzer:buffer(cap = <expr>, drop = oldest|shed|block)`"
                .to_string()
        })?;
    let (cap_part, drop_part) = body
        .rsplit_once(',')
        .ok_or_else(|| "buffer pragma is missing the `drop = …` clause".to_string())?;
    let cap = cap_part
        .trim()
        .strip_prefix("cap")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| "buffer pragma must start with `cap = <expr>`".to_string())?;
    if cap.is_empty() {
        return Err("buffer pragma capacity must not be empty".to_string());
    }
    let drop = drop_part
        .trim()
        .strip_prefix("drop")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| "buffer pragma is missing the `drop = …` clause".to_string())?;
    if !matches!(drop, "oldest" | "shed" | "block") {
        return Err(format!(
            "buffer pragma drop policy '{drop}' must be oldest, shed, or block"
        ));
    }
    Ok((cap.to_string(), drop.to_string()))
}

/// Parse `(<rule>, reason = "…")`, returning the canonical rule name.
fn parse_pragma_text(text: &str) -> Result<&'static str, String> {
    let body = text
        .strip_prefix('(')
        .and_then(|t| t.rfind(')').map(|end| &t[..end]))
        .ok_or_else(|| "pragma must be `analyzer:allow(<rule>, reason = \"…\")`".to_string())?;
    let (rule_part, rest) = body
        .split_once(',')
        .ok_or_else(|| "pragma is missing the `reason = \"…\"` clause".to_string())?;
    let rule_name = rule_part.trim();
    let rule = RULE_NAMES
        .iter()
        .find(|r| **r == rule_name)
        .copied()
        .ok_or_else(|| format!("unknown rule '{rule_name}' in pragma"))?;
    let rest = rest.trim();
    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| "pragma is missing the `reason = \"…\"` clause".to_string())?;
    let inner = reason
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| "pragma reason must be a quoted string".to_string())?;
    if inner.trim().is_empty() {
        return Err("pragma reason must not be empty".to_string());
    }
    Ok(rule)
}

/// Public view of [`test_mask`] for the sibling passes (lock-order test
/// fixtures, the contract rules).
pub fn test_mask_for(tokens: &[Token]) -> Vec<bool> {
    test_mask(tokens)
}

/// Mark every token that sits inside `#[cfg(test)]` / `#[test]` code.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokKind::Pound
            && matches!(
                tokens.get(i + 1).map(|t| &t.kind),
                Some(TokKind::Open(Delim::Bracket))
            )
        {
            if let Some(close) = matching(tokens, i + 1, Delim::Bracket) {
                if attr_is_test(&tokens[i + 2..close]) {
                    mark_following_block(tokens, close + 1, &mut mask, i);
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Does an attribute body (`cfg(test)`, `test`, …) gate test-only code?
/// `cfg` attributes count when they mention `test` without a `not`.
fn attr_is_test(body: &[Token]) -> bool {
    let idents: Vec<&str> = body
        .iter()
        .filter_map(|t| match &t.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    }
}

/// From `start` (just past a test attribute), skip further attributes and
/// the item header, then mark the item's braced body — and the attribute
/// span itself, from `attr_start` — as test code. An item ending in `;`
/// has no body to mark.
fn mark_following_block(tokens: &[Token], start: usize, mask: &mut [bool], attr_start: usize) {
    let mut i = start;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokKind::Pound
                if matches!(
                    tokens.get(i + 1).map(|t| &t.kind),
                    Some(TokKind::Open(Delim::Bracket))
                ) =>
            {
                match matching(tokens, i + 1, Delim::Bracket) {
                    Some(close) => i = close + 1,
                    None => return,
                }
            }
            TokKind::Semi => return,
            TokKind::Open(Delim::Brace) => {
                let end = matching(tokens, i, Delim::Brace).unwrap_or(tokens.len() - 1);
                for m in mask.iter_mut().take(end + 1).skip(attr_start) {
                    *m = true;
                }
                return;
            }
            _ => i += 1,
        }
    }
}

/// Index of the delimiter closing the one opened at `open`.
fn matching(tokens: &[Token], open: usize, delim: Delim) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match &t.kind {
            TokKind::Open(d) if *d == delim => depth += 1,
            TokKind::Close(d) if *d == delim => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Lint a single source text under the given rule set.
pub fn lint_source(file: &str, src: &str, rules: RuleSet) -> FileOutcome {
    let lexed = lex(src);
    let mut outcome = FileOutcome::default();
    let (mut suppressions, mut buffer_decls) =
        parse_pragmas(file, &lexed.pragmas, &mut outcome.findings);
    let mask = test_mask(&lexed.tokens);
    let tokens = &lexed.tokens;

    let mut raw: Vec<Finding> = Vec::new();
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        let line = tokens[i].line;
        let ident = match &tokens[i].kind {
            TokKind::Ident(s) => s.as_str(),
            _ => continue,
        };
        let next_bang = matches!(tokens.get(i + 1).map(|t| &t.kind), Some(TokKind::Bang));
        let prev_dot = i > 0 && tokens[i - 1].kind == TokKind::Dot;
        let call_after = matches!(
            tokens.get(i + 1).map(|t| &t.kind),
            Some(TokKind::Open(Delim::Paren))
        );

        if rules.unwrap {
            if prev_dot && call_after && (ident == "unwrap" || ident == "expect") {
                raw.push(finding(file, line, "no-unwrap", format!(".{ident}() in protocol library code — propagate a Result or add an allow pragma with the invariant")));
            }
            if ident == "panic" && next_bang {
                raw.push(finding(
                    file,
                    line,
                    "no-unwrap",
                    "panic! in protocol library code — return an error instead".into(),
                ));
            }
        }
        if rules.todo && next_bang && (ident == "todo" || ident == "unimplemented") {
            raw.push(finding(
                file,
                line,
                "no-todo",
                format!("{ident}! must not ship in library code"),
            ));
        }
        if rules.wall_clock {
            let path_next = |want: &str| {
                matches!(tokens.get(i + 1).map(|t| &t.kind), Some(TokKind::PathSep))
                    && matches!(tokens.get(i + 2).map(|t| &t.kind), Some(TokKind::Ident(s)) if s == want)
            };
            let hit = match ident {
                "Instant" | "SystemTime" if path_next("now") => Some(format!("{ident}::now")),
                "thread" if path_next("sleep") => Some("thread::sleep".into()),
                _ => None,
            };
            if let Some(what) = hit {
                raw.push(finding(file, line, "no-wall-clock", format!("{what} breaks determinism — use the virtual clock (SimClock/SimTime), or annotate a genuinely real-time path")));
            }
            if rules.blocking {
                if prev_dot && call_after && ident == "recv_timeout" {
                    raw.push(finding(file, line, "no-wall-clock", ".recv_timeout() blocks a real thread on a real duration — schedule a virtual timer on the event engine, or annotate a live-thread escape hatch".into()));
                }
                if ident == "Duration" && path_next("from_secs") {
                    raw.push(finding(file, line, "no-wall-clock", "Duration::from_secs in event-engine code is a hard-coded real-time wait — derive waits from virtual time, or annotate why this path is genuinely real-time".into()));
                }
            }
        }
        if rules.bounded_queues {
            let path_next = |want: &str| {
                matches!(tokens.get(i + 1).map(|t| &t.kind), Some(TokKind::PathSep))
                    && matches!(tokens.get(i + 2).map(|t| &t.kind), Some(TokKind::Ident(s)) if s == want)
            };
            let next_is_path_sep =
                matches!(tokens.get(i + 1).map(|t| &t.kind), Some(TokKind::PathSep));
            let empty_call = call_after
                && matches!(
                    tokens.get(i + 2).map(|t| &t.kind),
                    Some(TokKind::Close(Delim::Paren))
                );
            // `unbounded(…)` or `unbounded::<T>(…)` — but not `use …::unbounded;`.
            if ident == "unbounded" && (call_after || next_is_path_sep) {
                raw.push(finding(file, line, "no-unbounded-channel", "unbounded() gives the producer no backpressure — use a bounded channel and shed explicitly, or annotate the pragma with the growth bound".into()));
            }
            // Zero-argument `channel()` is std mpsc's unbounded constructor.
            if ident == "channel" && empty_call {
                raw.push(finding(file, line, "no-unbounded-channel", "zero-capacity channel() is unbounded — use a bounded constructor (sync_channel / bounded) with an explicit capacity".into()));
            }
            if ident == "VecDeque" && path_next("new") {
                raw.push(finding(file, line, "no-unbounded-channel", "VecDeque::new() starts a queue with no capacity bound — use with_capacity and enforce the bound at the push site, or annotate the pragma with the invariant".into()));
            }
        }
        if rules.docs && ident == "pub" {
            if let Some(f) = check_missing_docs(file, tokens, i) {
                raw.push(f);
            }
        }
    }

    if rules.span_balance {
        check_span_balance(file, tokens, &mask, &mut raw);
    }

    if rules.hash_iteration || rules.buffer_contract || rules.lock_order {
        let parsed = ParsedFile::parse(tokens);
        if rules.hash_iteration {
            check_hash_iteration(file, tokens, &mask, &parsed, &mut raw);
        }
        if rules.buffer_contract {
            check_buffer_contract(file, src, tokens, &mask, &mut buffer_decls, &mut raw);
        }
        if rules.lock_order {
            outcome.lock_seqs = lockorder::lock_sequences(tokens, &mask, &parsed);
        }
    }

    for f in raw {
        let waived = suppressions
            .iter_mut()
            .find(|s| s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line));
        if let Some(s) = waived {
            s.used += 1;
            outcome.suppressed += 1;
            *outcome.suppressed_by_rule.entry(s.rule).or_insert(0) += 1;
        } else {
            outcome.findings.push(f);
        }
    }

    // Dead-pragma accounting. `lock-order` allows are adjudicated by the
    // cross-file pass; everything else that waived nothing is stale.
    for s in &suppressions {
        if s.rule == "lock-order" {
            outcome.lock_allows.push(s.line);
        } else if s.used == 0 {
            outcome.findings.push(Finding {
                file: file.to_string(),
                line: s.line,
                rule: DEAD_PRAGMA,
                message: format!(
                    "allow({}) pragma no longer suppresses anything — remove it or the invariant it documents is fiction",
                    s.rule
                ),
            });
        }
    }
    if rules.buffer_contract {
        for d in &buffer_decls {
            if !d.used {
                outcome.findings.push(Finding {
                    file: file.to_string(),
                    line: d.line,
                    rule: DEAD_PRAGMA,
                    message:
                        "buffer pragma attaches to no channel/ring construction on this or the next line — remove or move it"
                            .to_string(),
                });
            }
        }
    }
    outcome.findings.sort_by_key(|f| f.line);
    outcome
}

fn finding(file: &str, line: u32, rule: &'static str, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule,
        message,
    }
}

/// The `telemetry-span-balance` pass. For every non-test function body:
/// a `.span_start(…)` call demands a `.span_end(…)` call in the same body,
/// and no `return` or `?` may sit between the first start and the last end.
/// That is the structural shape of the wrapper pattern — compute the result
/// into a binding, end the span, then return — which guarantees the span
/// closes on every path without flow analysis. Functions *named*
/// `span_start`/`span_end` (the telemetry crate's own definitions and
/// wrappers around them) are exempt.
fn check_span_balance(file: &str, tokens: &[Token], mask: &[bool], raw: &mut Vec<Finding>) {
    let mut i = 0;
    while i < tokens.len() {
        if mask[i] || !matches!(&tokens[i].kind, TokKind::Ident(s) if s == "fn") {
            i += 1;
            continue;
        }
        let name = match tokens.get(i + 1).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => s.clone(),
            _ => {
                i += 1;
                continue;
            }
        };
        // Find the body's opening brace; a `;` first means a bodyless
        // declaration (trait method signature).
        let mut j = i + 2;
        let open = loop {
            match tokens.get(j).map(|t| &t.kind) {
                Some(TokKind::Open(Delim::Brace)) => break Some(j),
                Some(TokKind::Semi) | None => break None,
                _ => j += 1,
            }
        };
        let Some(open) = open else {
            i = j;
            continue;
        };
        let close = matching(tokens, open, Delim::Brace).unwrap_or(tokens.len() - 1);
        if name != "span_start" && name != "span_end" {
            let body = &tokens[open + 1..close];
            let is_call = |k: usize, want: &str| {
                matches!(&body[k].kind, TokKind::Ident(s) if s == want)
                    && k > 0
                    && body[k - 1].kind == TokKind::Dot
                    && matches!(
                        body.get(k + 1).map(|t| &t.kind),
                        Some(TokKind::Open(Delim::Paren))
                    )
            };
            let starts: Vec<usize> = (0..body.len())
                .filter(|&k| is_call(k, "span_start"))
                .collect();
            let ends: Vec<usize> = (0..body.len())
                .filter(|&k| is_call(k, "span_end"))
                .collect();
            if !starts.is_empty() {
                if ends.is_empty() {
                    raw.push(finding(
                        file,
                        body[starts[0]].line,
                        "telemetry-span-balance",
                        format!("fn `{name}` starts a telemetry span but never ends one — every span_start needs a span_end on all return paths"),
                    ));
                } else {
                    let lo = starts[0];
                    let hi = ends[ends.len() - 1];
                    for tok in body.iter().take(hi).skip(lo) {
                        let exits_early = match &tok.kind {
                            TokKind::Ident(s) => s == "return",
                            TokKind::Op(c) => *c == '?',
                            _ => false,
                        };
                        if exits_early {
                            raw.push(finding(
                                file,
                                tok.line,
                                "telemetry-span-balance",
                                format!("fn `{name}` may exit between span_start and span_end — use the wrapper pattern: bind the result, end the span, then return"),
                            ));
                        }
                    }
                }
            }
        }
        // Descend into the body: nested fns get their own pass.
        i = open + 1;
    }
}

/// Item keywords whose `pub` declarations require a doc comment.
const ITEM_KEYWORDS: [&str; 8] = [
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type",
];

/// If `tokens[at]` (an `Ident("pub")`) introduces an undocumented public
/// item, produce the finding.
fn check_missing_docs(file: &str, tokens: &[Token], at: usize) -> Option<Finding> {
    // Must be at item position: start of file/block, after an item end, or
    // after an attribute or doc comment.
    if at > 0
        && !matches!(
            tokens[at - 1].kind,
            TokKind::Open(Delim::Brace)
                | TokKind::Close(Delim::Brace)
                | TokKind::Semi
                | TokKind::Close(Delim::Bracket)
                | TokKind::DocComment
        )
    {
        return None;
    }
    // `pub(crate)`/`pub(super)` are not public API.
    if matches!(
        tokens.get(at + 1).map(|t| &t.kind),
        Some(TokKind::Open(Delim::Paren))
    ) {
        return None;
    }
    // Find the item keyword, skipping modifiers (`const` doubles as both).
    let mut k = at + 1;
    let kw = loop {
        match tokens.get(k).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) if s == "const" => {
                if matches!(tokens.get(k + 1).map(|t| &t.kind), Some(TokKind::Ident(n)) if n == "fn")
                {
                    k += 1;
                } else {
                    break "const";
                }
            }
            Some(TokKind::Ident(s)) if matches!(s.as_str(), "unsafe" | "async" | "extern") => {
                k += 1;
            }
            Some(TokKind::Lit) => k += 1, // extern "C"
            Some(TokKind::Ident(s)) if ITEM_KEYWORDS.contains(&s.as_str()) => break s.as_str(),
            _ => return None, // `pub use` re-exports and anything else
        }
    };
    let kw: String = kw.to_string();
    let name = tokens[k + 1..]
        .iter()
        .find_map(|t| match &t.kind {
            TokKind::Ident(s) => Some(s.clone()),
            _ => None,
        })
        .unwrap_or_default();
    // Walk back over attributes; a doc comment must sit above them.
    let mut j = at;
    loop {
        if j == 0 {
            break;
        }
        match tokens[j - 1].kind {
            TokKind::DocComment => return None, // documented
            TokKind::Close(Delim::Bracket) => {
                // Skip back over `#[…]`.
                let mut depth = 0usize;
                let mut b = j - 1;
                loop {
                    match tokens[b].kind {
                        TokKind::Close(Delim::Bracket) => depth += 1,
                        TokKind::Open(Delim::Bracket) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if b == 0 {
                        return None; // malformed; stay quiet
                    }
                    b -= 1;
                }
                if b > 0 && tokens[b - 1].kind == TokKind::Pound {
                    j = b - 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    Some(finding(
        file,
        tokens[at].line,
        "missing-docs",
        format!("public {kw} `{name}` has no doc comment"),
    ))
}

/// Decide which rules apply to a repo-relative path; `None` = not scanned.
pub fn rules_for(rel: &str) -> Option<RuleSet> {
    let rel = rel.replace('\\', "/");
    if !rel.ends_with(".rs") {
        return None;
    }
    if rel.starts_with("crates/shims/") {
        return None; // vendored API shims, not ours to lint
    }
    let in_crate_src = rel.starts_with("crates/") && rel.contains("/src/");
    let in_root_src = rel.starts_with("src/");
    if !in_crate_src && !in_root_src {
        return None; // tests/, benches/, examples/ are exercise code
    }
    let protocol = ["ntcp", "gridsim", "coordinator", "checkpoint", "telemetry"]
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
    // The archive data plane carries replay-relevant protocol state but
    // keeps its transfer spans open across handler invocations, so it
    // joins every protocol rule except span-balance (and docs, which
    // rides with the original protocol set).
    let archive = rel.starts_with("crates/archive/src/");
    // The campaign engine drives sweeps whose whole value is reproducible
    // verdicts: a panic mid-sweep loses the corpus, hash iteration breaks
    // byte-identical verdict tables, and its submit queue already rides
    // the portal's bounded admission path — so it takes the determinism
    // and robustness rules, but not the span/docs discipline of the
    // protocol crates.
    let campaign = rel.starts_with("crates/campaign/src/");
    Some(RuleSet {
        unwrap: protocol || archive || campaign,
        docs: protocol,
        wall_clock: !rel.starts_with("crates/bench/"),
        // The event engine owns time in the protocol crates and the ogsi
        // RPC/hosting layer; a blocking real-time wait there defeats it.
        blocking: protocol || rel.starts_with("crates/ogsi/src/"),
        todo: true,
        // ogsi is deliberately exempt: its rpc call/complete pair is a
        // legitimate cross-function span (started in call_async, ended in
        // complete). Protocol crates must keep spans function-local.
        span_balance: protocol,
        // The crates that queue between tenants: the portal's admission
        // queue, the coordinator's scheduling structures, and the daq
        // streaming buffers. Everywhere else an unbounded Vec is idiomatic.
        bounded_queues: archive
            || campaign
            || ["portal", "coordinator", "daq"]
                .iter()
                .any(|c| rel.starts_with(&format!("crates/{c}/src/"))),
        // Replay-relevant crates: anything whose iteration order feeds the
        // simulation, the wire, or a checkpoint. Hash iteration there
        // breaks the bit-identical-replay guarantee silently.
        hash_iteration: archive
            || campaign
            || [
                "gridsim",
                "ogsi",
                "ntcp",
                "coordinator",
                "portal",
                "telemetry",
            ]
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/src/"))),
        // The crates that hold mutexes across a shared-service boundary.
        lock_order: ["portal", "coordinator"]
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/src/"))),
        // Same scope as `no-unbounded-channel`: where a queue must be
        // bounded, its bound must also be declared and kept in sync.
        buffer_contract: archive
            || campaign
            || ["portal", "coordinator", "daq"]
                .iter()
                .any(|c| rel.starts_with(&format!("crates/{c}/src/"))),
    })
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every in-scope file under the workspace `root`.
pub fn lint_workspace(root: &Path) -> Result<LintSummary, String> {
    let mut files = Vec::new();
    for base in ["crates", "src"] {
        let dir = root.join(base);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut summary = LintSummary::default();
    let mut lock_files: Vec<FileLocks> = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(rules) = rules_for(&rel) else {
            continue;
        };
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let outcome = lint_source(&rel, &src, rules);
        summary.files_scanned += 1;
        summary.suppressed += outcome.suppressed;
        for (rule, n) in &outcome.suppressed_by_rule {
            *summary
                .suppressed_sites
                .entry((rel.clone(), rule.to_string()))
                .or_insert(0) += n;
        }
        summary.findings.extend(outcome.findings);
        if !outcome.lock_seqs.is_empty() || !outcome.lock_allows.is_empty() {
            lock_files.push(FileLocks {
                file: rel,
                seqs: outcome.lock_seqs,
                allows: outcome.lock_allows,
            });
        }
    }

    // The cross-file lock-order pass, plus dead-pragma adjudication for
    // its allows.
    let lock_outcome = lockorder::check_lock_order(&lock_files);
    summary.suppressed += lock_outcome.suppressed;
    for (file, _line) in &lock_outcome.used_allows {
        *summary
            .suppressed_sites
            .entry((file.clone(), "lock-order".to_string()))
            .or_insert(0) += 1;
    }
    summary.findings.extend(lock_outcome.findings);
    for fl in &lock_files {
        for &line in &fl.allows {
            if !lock_outcome
                .used_allows
                .iter()
                .any(|(f, l)| *f == fl.file && *l == line)
            {
                summary.findings.push(Finding {
                    file: fl.file.clone(),
                    line,
                    rule: DEAD_PRAGMA,
                    message: "allow(lock-order) pragma no longer suppresses anything — remove it or the invariant it documents is fiction".to_string(),
                });
            }
        }
    }

    summary
        .findings
        .sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> FileOutcome {
        lint_source("test.rs", src, RuleSet::all())
    }

    fn rules_of(out: &FileOutcome) -> Vec<&'static str> {
        out.findings.iter().map(|f| f.rule).collect()
    }

    // ---- no-unwrap ----

    #[test]
    fn unwrap_expect_panic_flagged() {
        let out = lint(
            "/// d\npub fn f(x: Option<u8>) -> u8 {\n    let a = x.unwrap();\n    let b = x.expect(\"b\");\n    panic!(\"boom\");\n}\n",
        );
        assert_eq!(rules_of(&out), vec!["no-unwrap", "no-unwrap", "no-unwrap"]);
        assert_eq!(out.findings[0].line, 3);
    }

    #[test]
    fn unwrap_or_variants_not_flagged() {
        let out = lint(
            "/// d\npub fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n",
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn unwrap_in_test_module_exempt() {
        let out = lint(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); panic!(); }\n}\n",
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn test_fn_outside_mod_exempt() {
        let out = lint("#[test]\nfn t() { None::<u8>.unwrap(); }\n");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn pragma_suppresses_on_same_or_next_line() {
        let out = lint(
            "/// d\npub fn f(x: Option<u8>) -> u8 {\n    // analyzer:allow(no-unwrap, reason = \"checked two lines up\")\n    x.unwrap()\n}\n",
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed, 1);
    }

    #[test]
    fn pragma_for_wrong_rule_does_not_suppress() {
        let out = lint(
            "/// d\npub fn f(x: Option<u8>) -> u8 {\n    // analyzer:allow(no-todo, reason = \"mismatched\")\n    x.unwrap()\n}\n",
        );
        // The unwrap stays a violation, and the mismatched pragma — which
        // suppressed nothing — is reported dead.
        assert_eq!(rules_of(&out), vec![DEAD_PRAGMA, "no-unwrap"]);
    }

    #[test]
    fn dead_pragmas_are_flagged_and_live_ones_are_not() {
        let out = lint(
            "/// d\npub fn f(x: Option<u8>) -> u8 {\n    // analyzer:allow(no-unwrap, reason = \"nothing to waive anymore\")\n    x.unwrap_or(0)\n}\n",
        );
        assert_eq!(rules_of(&out), vec![DEAD_PRAGMA]);
        assert!(out.findings[0].message.contains("no longer suppresses"));
        let out = lint(
            "/// d\npub fn f(x: Option<u8>) -> u8 {\n    // analyzer:allow(no-unwrap, reason = \"checked above\")\n    x.unwrap()\n}\n",
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn reasonless_or_unknown_pragma_is_a_violation() {
        let out = lint("// analyzer:allow(no-unwrap)\n// analyzer:allow(no-unwrap, reason = \"\")\n// analyzer:allow(nonsense, reason = \"x\")\n");
        assert_eq!(rules_of(&out), vec![BAD_PRAGMA, BAD_PRAGMA, BAD_PRAGMA]);
    }

    // ---- no-wall-clock ----

    #[test]
    fn wall_clock_patterns_flagged() {
        let out = lint(
            "fn f() {\n    let t = std::time::Instant::now();\n    let s = SystemTime::now();\n    std::thread::sleep(d);\n}\n",
        );
        assert_eq!(
            rules_of(&out),
            vec!["no-wall-clock", "no-wall-clock", "no-wall-clock"]
        );
        assert!(out.findings[0].message.contains("Instant::now"));
    }

    #[test]
    fn wall_clock_in_tests_exempt() {
        let out = lint("#[cfg(test)]\nmod tests {\n    fn f() { let t = Instant::now(); }\n}\n");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn virtual_clock_identifiers_unflagged() {
        let out = lint("fn f(c: &SimClock) -> SimTime { c.now() }\n");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn blocking_wait_patterns_flagged() {
        let out = lint(
            "fn f(rx: &Receiver<u8>) {\n    let _ = rx.recv_timeout(d);\n    let d = Duration::from_secs(5);\n}\n",
        );
        assert_eq!(rules_of(&out), vec!["no-wall-clock", "no-wall-clock"]);
        assert!(out.findings[0].message.contains("recv_timeout"));
        assert!(out.findings[1].message.contains("from_secs"));
    }

    #[test]
    fn virtual_time_and_subsecond_durations_unflagged() {
        // SimTime::from_secs is virtual time; from_secs_f64 and from_millis
        // are distinct identifiers; a bare `recv` doesn't block on a
        // duration.
        let out = lint(
            "fn f(rx: &Receiver<u8>) -> SimTime {\n    let _ = rx.recv();\n    let _ = Duration::from_secs_f64(0.5);\n    let _ = Duration::from_millis(5);\n    SimTime::from_secs(60)\n}\n",
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn blocking_waits_unflagged_without_blocking_rule() {
        let rules = RuleSet {
            blocking: false,
            ..RuleSet::all()
        };
        let out = lint_source(
            "test.rs",
            "fn f(rx: &Receiver<u8>) { let _ = rx.recv_timeout(Duration::from_secs(5)); }\n",
            rules,
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    // ---- no-todo ----

    #[test]
    fn todo_and_unimplemented_flagged() {
        let out = lint("fn f() { todo!() }\nfn g() { unimplemented!(\"later\") }\n");
        assert_eq!(rules_of(&out), vec!["no-todo", "no-todo"]);
    }

    #[test]
    fn todo_ident_without_bang_unflagged() {
        let out = lint("fn f(todo: u8) -> u8 { todo }\n");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    // ---- missing-docs ----

    #[test]
    fn undocumented_pub_items_flagged() {
        let out = lint("pub fn f() {}\npub struct S;\npub enum E { A }\n");
        assert_eq!(
            rules_of(&out),
            vec!["missing-docs", "missing-docs", "missing-docs"]
        );
        assert!(out.findings[0].message.contains("`f`"));
    }

    #[test]
    fn documented_and_attributed_items_pass() {
        let out = lint(
            "/// Docs.\npub fn f() {}\n/// Docs.\n#[derive(Debug)]\npub struct S;\n/** block */\npub const X: u8 = 0;\n",
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn pub_crate_and_pub_use_exempt() {
        let out = lint("pub(crate) fn f() {}\npub use other::Thing;\n");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn pub_const_fn_reports_fn() {
        let out = lint("pub const fn f() {}\n");
        assert_eq!(rules_of(&out), vec!["missing-docs"]);
        assert!(out.findings[0].message.contains("public fn"));
    }

    #[test]
    fn attribute_between_doc_and_item_still_documented() {
        let out = lint("/// Docs.\n#[derive(Debug, Clone)]\n#[repr(C)]\npub struct S;\n");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    // ---- telemetry-span-balance ----

    #[test]
    fn span_start_without_end_flagged() {
        let out = lint(
            "fn f(&self) {\n    let s = self.telemetry.span_start(t, \"x\", \"y\", vec![]);\n    work();\n}\n",
        );
        assert_eq!(rules_of(&out), vec!["telemetry-span-balance"]);
        assert!(out.findings[0].message.contains("never ends"));
    }

    #[test]
    fn return_between_start_and_end_flagged() {
        let out = lint(
            "fn f(&self) -> u8 {\n    let s = self.telemetry.span_start(t, \"x\", \"y\", vec![]);\n    if bad { return 0; }\n    self.telemetry.span_end(t, s, vec![]);\n    1\n}\n",
        );
        assert_eq!(rules_of(&out), vec!["telemetry-span-balance"]);
        assert_eq!(out.findings[0].line, 3);
    }

    #[test]
    fn question_mark_between_start_and_end_flagged() {
        let out = lint(
            "fn f(&self) -> Result<u8, E> {\n    let s = self.telemetry.span_start(t, \"x\", \"y\", vec![]);\n    let v = fallible()?;\n    self.telemetry.span_end(t, s, vec![]);\n    Ok(v)\n}\n",
        );
        assert_eq!(rules_of(&out), vec!["telemetry-span-balance"]);
    }

    #[test]
    fn wrapper_pattern_passes() {
        // The sanctioned shape: start, compute into a binding (the inner
        // call may fail — that's its problem), end, then return.
        let out = lint(
            "fn f(&self) -> Result<u8, E> {\n    let s = self.telemetry.span_start(t, \"x\", \"y\", vec![]);\n    let result = self.inner();\n    self.telemetry.span_end(t, s, vec![]);\n    result\n}\nfn g(&self) -> Result<u8, E> {\n    let v = fallible()?;\n    Ok(v)\n}\n",
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn span_fn_definitions_exempt() {
        // The telemetry crate's own span_start/span_end (and wrappers named
        // after them) are not unbalanced spans.
        let out = lint(
            "pub(crate) fn span_start(&self, t: u64) -> SpanId {\n    self.record(t);\n    SpanId(1)\n}\npub(crate) fn span_end(&self, t: u64) {\n    self.record(t);\n}\n",
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn span_in_test_module_exempt() {
        let out = lint(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let s = tel.span_start(0, \"a\", \"b\", vec![]); }\n}\n",
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    // ---- no-unbounded-channel ----

    #[test]
    fn unbounded_constructors_flagged() {
        let out = lint(
            "fn f() {\n    let (tx, rx) = unbounded();\n    let (a, b) = crossbeam::channel::unbounded::<u8>();\n    let (c, d) = std::sync::mpsc::channel();\n    let q: VecDeque<u8> = VecDeque::new();\n}\n",
        );
        assert_eq!(
            rules_of(&out),
            vec![
                "no-unbounded-channel",
                "no-unbounded-channel",
                "no-unbounded-channel",
                "no-unbounded-channel"
            ]
        );
        assert!(out.findings[1].message.contains("backpressure"));
        assert!(out.findings[3].message.contains("with_capacity"));
    }

    #[test]
    fn bounded_constructors_unflagged() {
        // buffer_contract off: this test checks only that bounded ctors
        // escape the no-unbounded-channel rule (the contract rule has its
        // own tests in `contracts`).
        let rules = RuleSet {
            buffer_contract: false,
            ..RuleSet::all()
        };
        let out = lint_source(
            "test.rs",
            "fn f() {\n    let (tx, rx) = bounded(64);\n    let (a, b) = sync_channel(16);\n    let (c, d) = channel(32);\n    let q: VecDeque<u8> = VecDeque::with_capacity(8);\n}\n",
            rules,
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn unbounded_pragma_and_scope_respected() {
        let out = lint(
            "fn f() {\n    // analyzer:allow(no-unbounded-channel, reason = \"drained every tick, bounded by pool size\")\n    let q: VecDeque<u8> = VecDeque::new();\n}\n",
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed, 1);
        let rules = RuleSet {
            bounded_queues: false,
            ..RuleSet::all()
        };
        let out = lint_source("test.rs", "fn f() { let (tx, rx) = unbounded(); }\n", rules);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn unbounded_in_tests_exempt() {
        let out = lint(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let q: VecDeque<u8> = VecDeque::new(); }\n}\n",
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    // ---- scoping ----

    #[test]
    fn rule_scope_by_path() {
        let p = rules_for("crates/ntcp/src/server.rs").unwrap();
        assert!(p.unwrap && p.docs && p.wall_clock && p.blocking && p.todo && p.span_balance);
        assert!(!p.bounded_queues);
        let t = rules_for("crates/telemetry/src/lib.rs").unwrap();
        assert!(t.unwrap && t.docs && t.wall_clock && t.blocking && t.todo && t.span_balance);
        let o = rules_for("crates/ogsi/src/rpc.rs").unwrap();
        assert!(!o.unwrap && !o.docs && o.wall_clock && o.blocking && o.todo && !o.span_balance);
        let m = rules_for("crates/most/src/runner.rs").unwrap();
        assert!(m.wall_clock && !m.blocking && !m.span_balance && !m.bounded_queues);
        let b = rules_for("crates/bench/src/lib.rs").unwrap();
        assert!(!b.wall_clock && !b.blocking && b.todo);
        let q = rules_for("crates/portal/src/scheduler.rs").unwrap();
        assert!(q.bounded_queues && q.wall_clock && !q.unwrap && !q.docs);
        assert!(
            rules_for("crates/coordinator/src/coordinator.rs")
                .unwrap()
                .bounded_queues
        );
        assert!(rules_for("crates/daq/src/nsds.rs").unwrap().bounded_queues);
        // Determinism/concurrency contracts: hash iteration everywhere
        // replayability matters, lock order + buffer contracts where the
        // concurrency actually lives.
        assert!(p.hash_iteration && !p.lock_order && !p.buffer_contract);
        assert!(t.hash_iteration);
        assert!(o.hash_iteration);
        assert!(!m.hash_iteration && !m.lock_order);
        assert!(q.hash_iteration && q.lock_order && q.buffer_contract);
        let c = rules_for("crates/coordinator/src/coordinator.rs").unwrap();
        assert!(c.hash_iteration && c.lock_order && c.buffer_contract);
        let d = rules_for("crates/daq/src/nsds.rs").unwrap();
        assert!(!d.hash_iteration && !d.lock_order && d.buffer_contract);
        // The archive data plane: every protocol-grade rule except docs
        // and span-balance (its transfer spans legitimately cross handler
        // invocations, like ogsi's rpc call/complete pair).
        let a = rules_for("crates/archive/src/stripe.rs").unwrap();
        assert!(a.unwrap && a.wall_clock && a.hash_iteration);
        assert!(a.bounded_queues && a.buffer_contract);
        assert!(!a.docs && !a.span_balance && !a.lock_order && !a.blocking);
        // The campaign engine: determinism + robustness rules (a panic
        // loses the sweep, hash iteration un-reproduces the verdict
        // table), minus the protocol span/docs discipline.
        let g = rules_for("crates/campaign/src/runner.rs").unwrap();
        assert!(g.unwrap && g.wall_clock && g.hash_iteration);
        assert!(g.bounded_queues && g.buffer_contract);
        assert!(!g.docs && !g.span_balance && !g.lock_order && !g.blocking);
        assert_eq!(rules_for("crates/shims/rand/src/lib.rs"), None);
        assert_eq!(rules_for("crates/ntcp/tests/integration.rs"), None);
        assert_eq!(rules_for("tests/most.rs"), None);
        assert!(rules_for("src/lib.rs").is_some());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let out = lint("#[cfg(not(test))]\nfn f() { x.unwrap(); }\n");
        assert_eq!(rules_of(&out), vec!["no-unwrap"]);
    }
}
