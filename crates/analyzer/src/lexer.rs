//! A minimal hand-rolled Rust lexer.
//!
//! The linter does not need a full grammar — only a token stream that is
//! *correct about what is code and what is not*. Getting strings, char
//! literals, lifetimes, raw strings, and nested block comments right is the
//! whole game: a naive substring scan would flag `"panic!"` inside a doc
//! string or miss `unwrap` because of an intervening comment. Everything
//! else (attributes, item boundaries, brace matching) is reconstructed from
//! this stream by the rule engine.
//!
//! The lexer also extracts the two comment artefacts the rules care about:
//! outer doc comments (`///`, `/** */`) become [`TokKind::DocComment`]
//! tokens so `missing-docs` can see them in sequence with items, and
//! `// analyzer:<kind>(...)` comments (`allow`, `buffer`, …) are collected
//! as raw [`Pragma`]s for the suppression and contract machinery.

/// Bracket-like delimiter kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` / `)`
    Paren,
    /// `[` / `]`
    Bracket,
    /// `{` / `}`
    Brace,
}

/// The token kinds the rule engine consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// An outer doc comment (`///` or `/** */`), position-significant for
    /// the `missing-docs` rule.
    DocComment,
    /// A string / char / byte / numeric literal (content discarded).
    Lit,
    /// `#`
    Pound,
    /// `!`
    Bang,
    /// `.`
    Dot,
    /// `::`
    PathSep,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// An opening delimiter.
    Open(Delim),
    /// A closing delimiter.
    Close(Delim),
    /// Any other punctuation character.
    Op(char),
}

/// A token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokKind,
    /// 1-based line number.
    pub line: u32,
}

/// An unparsed `// analyzer:<kind>…` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The word after `analyzer:` (`allow`, `buffer`, or a typo for the
    /// rule engine to reject).
    pub kind: String,
    /// Comment text after the kind, to end of line.
    pub text: String,
}

/// Output of [`lex`].
#[derive(Debug, Default)]
pub struct Lexed {
    /// The significant tokens, in source order.
    pub tokens: Vec<Token>,
    /// Every `analyzer:` comment encountered, in source order.
    pub pragmas: Vec<Pragma>,
}

/// Marker that starts an analyzer comment (`allow`, `buffer`, …).
pub const PRAGMA_MARKER: &str = "analyzer:";

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }
}

/// Tokenize `src`, separating code from comments and literals.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' => {
                cur.bump();
                match cur.peek() {
                    Some('/') => lex_line_comment(&mut cur, line, &mut out),
                    Some('*') => lex_block_comment(&mut cur, line, &mut out),
                    _ => out.tokens.push(Token {
                        kind: TokKind::Op('/'),
                        line,
                    }),
                }
            }
            '"' => {
                cur.bump();
                consume_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Lit,
                    line,
                });
            }
            '\'' => {
                cur.bump();
                lex_quote(&mut cur, line, &mut out);
            }
            c if c.is_ascii_digit() => {
                // After a `.` this is a tuple field index (`x.0.1`), which
                // must not swallow the next `.`-digit pair as a float.
                let field_index = matches!(out.tokens.last(), Some(t) if t.kind == TokKind::Dot);
                consume_number(&mut cur, field_index);
                out.tokens.push(Token {
                    kind: TokKind::Lit,
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let ident = consume_ident(&mut cur);
                let kind = match try_literal_prefix(&mut cur, &ident) {
                    Prefix::Literal => TokKind::Lit,
                    Prefix::RawIdent(name) => TokKind::Ident(name),
                    Prefix::No => TokKind::Ident(ident),
                };
                out.tokens.push(Token { kind, line });
            }
            ':' => {
                cur.bump();
                let kind = if cur.peek() == Some(':') {
                    cur.bump();
                    TokKind::PathSep
                } else {
                    TokKind::Op(':')
                };
                out.tokens.push(Token { kind, line });
            }
            _ => {
                cur.bump();
                let kind = match c {
                    '#' => TokKind::Pound,
                    '!' => TokKind::Bang,
                    '.' => TokKind::Dot,
                    ',' => TokKind::Comma,
                    ';' => TokKind::Semi,
                    '(' => TokKind::Open(Delim::Paren),
                    ')' => TokKind::Close(Delim::Paren),
                    '[' => TokKind::Open(Delim::Bracket),
                    ']' => TokKind::Close(Delim::Bracket),
                    '{' => TokKind::Open(Delim::Brace),
                    '}' => TokKind::Close(Delim::Brace),
                    other => TokKind::Op(other),
                };
                out.tokens.push(Token { kind, line });
            }
        }
    }
    out
}

/// `cur` sits on the second `/`. Classify `///` doc vs `//!` inner doc vs
/// plain comment (possibly carrying a pragma).
fn lex_line_comment(cur: &mut Cursor<'_>, line: u32, out: &mut Lexed) {
    cur.bump(); // second '/'
    let mut body = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        body.push(c);
        cur.bump();
    }
    // `///x` is a doc comment; `////…` (a rule-off line) is not.
    if body.starts_with('/') && !body.starts_with("//") {
        out.tokens.push(Token {
            kind: TokKind::DocComment,
            line,
        });
    } else if body.starts_with('!') {
        // `//!` inner doc: prose, never a pragma (doc text may quote the
        // pragma syntax without enabling it).
    } else if let Some(at) = body.find(PRAGMA_MARKER) {
        let rest = &body[at + PRAGMA_MARKER.len()..];
        let kind_len = rest
            .char_indices()
            .take_while(|&(_, c)| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        // A bare `analyzer:` with no kind word is prose, not a directive.
        if kind_len > 0 {
            out.pragmas.push(Pragma {
                line,
                kind: rest[..kind_len].to_string(),
                text: rest[kind_len..].trim().to_string(),
            });
        }
    }
}

/// `cur` sits on the `*` of `/*`. Handles nesting; `/** … */` is a doc.
fn lex_block_comment(cur: &mut Cursor<'_>, line: u32, out: &mut Lexed) {
    cur.bump(); // '*'
    let mut doc = false;
    if cur.peek() == Some('*') {
        // `/**…` is an outer doc unless it is the empty comment `/**/`.
        let mut lookahead = cur.chars.clone();
        lookahead.next();
        doc = lookahead.next() != Some('/');
    }
    let mut depth = 1u32;
    let mut prev = '\0';
    while let Some(c) = cur.bump() {
        match (prev, c) {
            ('/', '*') => {
                depth += 1;
                prev = '\0';
            }
            ('*', '/') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                prev = '\0';
            }
            _ => prev = c,
        }
    }
    if doc {
        out.tokens.push(Token {
            kind: TokKind::DocComment,
            line,
        });
    }
}

/// Consume a double-quoted string body (opening quote already taken).
fn consume_string(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consume a raw string: `cur` sits just past `r`; `hashes` were counted by
/// the caller. Body ends at `"` followed by the same number of `#`.
fn consume_raw_string(cur: &mut Cursor<'_>, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut seen = 0;
            while seen < hashes && cur.peek() == Some('#') {
                cur.bump();
                seen += 1;
            }
            if seen == hashes {
                break;
            }
        }
    }
}

/// What an apparent identifier turned out to be once the next characters
/// were examined.
enum Prefix {
    /// It was a literal prefix (`r"`, `r#"`, `b"`, `br#"`, `b'`); the whole
    /// literal has been consumed.
    Literal,
    /// It was a raw identifier (`r#name`); the real name is carried here.
    RawIdent(String),
    /// Just an ordinary identifier.
    No,
}

/// After an identifier, check whether it is actually a literal prefix or a
/// raw identifier, consuming whichever it is.
fn try_literal_prefix(cur: &mut Cursor<'_>, ident: &str) -> Prefix {
    let raw = matches!(ident, "r" | "br");
    let bytes = matches!(ident, "b" | "br");
    if !raw && !bytes {
        return Prefix::No;
    }
    match cur.peek() {
        Some('"') => {
            cur.bump();
            if raw {
                consume_raw_string(cur, 0);
            } else {
                consume_string(cur);
            }
            Prefix::Literal
        }
        Some('#') if raw => {
            // Count hashes; only a quote after them makes this a literal.
            // (A lone `r#ident` raw identifier has no quote.)
            let mut hashes = 0;
            while cur.peek() == Some('#') {
                cur.bump();
                hashes += 1;
            }
            if cur.peek() == Some('"') {
                cur.bump();
                consume_raw_string(cur, hashes);
                Prefix::Literal
            } else {
                // Raw identifier such as `r#type`.
                Prefix::RawIdent(consume_ident(cur))
            }
        }
        Some('\'') if ident == "b" => {
            cur.bump();
            consume_char_literal(cur);
            Prefix::Literal
        }
        _ => Prefix::No,
    }
}

/// `cur` sits just past a `'`. Distinguish a lifetime from a char literal.
fn lex_quote(cur: &mut Cursor<'_>, line: u32, out: &mut Lexed) {
    let mut lookahead = cur.chars.clone();
    let first = lookahead.next();
    let second = lookahead.next();
    let is_lifetime =
        matches!(first, Some(c) if c.is_alphabetic() || c == '_') && second != Some('\'');
    if is_lifetime {
        let name = consume_ident(cur);
        out.tokens.push(Token {
            kind: TokKind::Op('\''),
            line,
        });
        out.tokens.push(Token {
            kind: TokKind::Ident(name),
            line,
        });
    } else {
        consume_char_literal(cur);
        out.tokens.push(Token {
            kind: TokKind::Lit,
            line,
        });
    }
}

/// Consume a char literal body (opening quote already taken).
fn consume_char_literal(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
}

fn consume_ident(cur: &mut Cursor<'_>) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' {
            s.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

/// Consume a numeric literal. A `.` is part of the number only when a digit
/// follows (so `0..7` stays a range, `1.5e-3`'s mantissa is one literal).
/// A tuple field index (`field_index`) never contains a `.` — `x.0.1` is
/// two indices, not the float `0.1`.
fn consume_number(cur: &mut Cursor<'_>, field_index: bool) {
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.bump();
        } else if c == '.' && !field_index {
            let mut lookahead = cur.chars.clone();
            lookahead.next();
            if matches!(lookahead.next(), Some(d) if d.is_ascii_digit()) {
                cur.bump();
            } else {
                break;
            }
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn code_inside_strings_and_comments_is_invisible() {
        let src = r#"
            // panic! in a comment
            /* unwrap() in a block /* nested */ still comment */
            let s = "panic!(\"no\")";
            let r = r#inner; // raw identifier stays code
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"inner".to_string()));
    }

    #[test]
    fn raw_and_byte_strings_are_single_literals() {
        let ids = idents(r##"let x = r#"unwrap()"#; let y = b"panic!"; let z = br#"todo!"#;"##);
        assert_eq!(ids, vec!["let", "x", "let", "y", "let", "z"]);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(ids, vec!["fn", "f", "a", "x", "a", "str", "a", "str", "x"]);
    }

    #[test]
    fn char_literals_including_quotes() {
        let ids = idents(r"let c = 'x'; let q = '\''; let n = '\n'; let p = '(';");
        assert_eq!(ids, vec!["let", "c", "let", "q", "let", "n", "let", "p"]);
    }

    #[test]
    fn doc_comments_become_tokens() {
        let lexed = lex("/// docs\npub fn f() {}\n/** block */\npub struct S;");
        let docs: Vec<u32> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::DocComment)
            .map(|t| t.line)
            .collect();
        assert_eq!(docs, vec![1, 3]);
    }

    #[test]
    fn inner_docs_and_comment_rules_are_not_outer_docs() {
        let lexed = lex("//! inner\n//// ruled off\n/*! inner block */\nfn f() {}");
        assert!(lexed.tokens.iter().all(|t| t.kind != TokKind::DocComment));
    }

    #[test]
    fn pragmas_are_collected_with_lines() {
        let lexed = lex("fn f() {\n    // analyzer:allow(no-unwrap, reason = \"x\")\n    g();\n}");
        assert_eq!(lexed.pragmas.len(), 1);
        assert_eq!(lexed.pragmas[0].line, 2);
        assert_eq!(lexed.pragmas[0].kind, "allow");
        assert!(lexed.pragmas[0].text.starts_with("(no-unwrap"));
    }

    #[test]
    fn non_allow_pragma_kinds_are_collected() {
        let lexed = lex("// analyzer:buffer(cap = 64, drop = oldest)\nlet q = mk(64);");
        assert_eq!(lexed.pragmas.len(), 1);
        assert_eq!(lexed.pragmas[0].kind, "buffer");
        assert!(lexed.pragmas[0].text.starts_with("(cap"));
        // A typo'd kind is still collected so the rule engine can reject it.
        let typo = lex("// analyzer:alow(no-unwrap, reason = \"x\")\n");
        assert_eq!(typo.pragmas[0].kind, "alow");
    }

    #[test]
    fn pragma_syntax_quoted_in_doc_comments_is_not_a_pragma() {
        let lexed = lex(
            "//! Use `// analyzer:allow(<rule>, reason = \"…\")` to waive.\n/// Same: analyzer:allow(x, y).\nfn f() {}\n",
        );
        assert!(lexed.pragmas.is_empty(), "{:?}", lexed.pragmas);
    }

    #[test]
    fn path_sep_and_ranges_lex_distinctly() {
        let lexed = lex("Instant::now(); 0..7; 1.5e-3");
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::PathSep));
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Dot)
            .count();
        assert_eq!(dots, 2, "range dots survive, float dot does not");
    }

    #[test]
    fn tuple_field_chains_keep_their_dots() {
        // `x.0.1` is two field accesses; a naive number scan reads `0.1`
        // as a float and loses the second access.
        let lexed = lex("let y = x.0.1;");
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Dot)
            .count();
        assert_eq!(dots, 2, "{:?}", lexed.tokens);
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .count();
        assert_eq!(lits, 2);
        // Plain floats are unaffected.
        let float = lex("let z = 0.125 + 1.5e-3;");
        assert_eq!(
            float
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Dot)
                .count(),
            0
        );
    }

    #[test]
    fn byte_strings_with_escapes_and_quotes() {
        // An escaped quote must not terminate the byte string early.
        let ids = idents(r#"let a = b"quote \" unwrap()"; done();"#);
        assert_eq!(ids, vec!["let", "a", "done"]);
        // Byte char with an escaped quote.
        let ids = idents(r"let c = b'\''; after();");
        assert_eq!(ids, vec!["let", "c", "after"]);
    }

    #[test]
    fn nested_hash_raw_strings_terminate_on_matching_hashes() {
        // `br##"…"#…"##`: an interior `"#` must not end the literal.
        let src = r####"let s = br##"body "# panic!() still body"##; end();"####;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "end"]);
        // Same for plain raw strings with more hashes than the body uses.
        let src = r####"let t = r##"quote "# inner"##; tail();"####;
        assert_eq!(idents(src), vec!["let", "t", "tail"]);
    }

    #[test]
    fn multiline_byte_and_raw_strings_advance_lines() {
        let lexed = lex("let a = b\"one\ntwo\";\nlet b = r#\"three\nfour\"#;\nlet c = 1;");
        let c_line = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("c".into()))
            .unwrap()
            .line;
        assert_eq!(c_line, 5);
    }

    #[test]
    fn pragma_text_inside_string_literals_is_not_collected() {
        let lexed = lex("let s = \"// analyzer:allow(no-unwrap, reason = \\\"x\\\")\";");
        assert!(lexed.pragmas.is_empty(), "{:?}", lexed.pragmas);
    }

    #[test]
    fn lines_advance_through_multiline_constructs() {
        let lexed = lex("let a = \"line\nbreak\";\nlet b = 1;");
        let b_line = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("b".into()))
            .unwrap()
            .line;
        assert_eq!(b_line, 3);
    }
}
