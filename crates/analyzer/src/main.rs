//! CLI for the analyzer: `lint`, `check-ntcp`, `check-portal`, and
//! `bench` subcommands.

use std::path::PathBuf;
use std::process::ExitCode;

use neesgrid_analyzer::baseline::{regressions_text, Baseline};
use neesgrid_analyzer::portal_checker::{check_portal, PortalCheckConfig, PortalMutation};
use neesgrid_analyzer::{check, report, rules, CheckConfig, Mutation};

const USAGE: &str = "\
neesgrid-analyzer — workspace invariant linter + exhaustive schedule checkers

USAGE:
    neesgrid-analyzer lint [--json] [--root <dir>] [--baseline <file>]
                           [--write-baseline <file>]
    neesgrid-analyzer check-ntcp [--json] [--dup-budget N] [--drop-budget N]
                                 [--max-schedules N] [--mutate clear-dedup-on-restore]
    neesgrid-analyzer check-portal [--json] [--submissions N] [--steps N]
                                   [--kill-budget N] [--cancel-budget N]
                                   [--max-schedules N] [--mutate skip-cancel-refund]
    neesgrid-analyzer bench [--out <file>]

lint --baseline fails (exit 1) when any (file, rule) cell exceeds the
committed counts — new violations and new pragmas both trip the ratchet.
--write-baseline regenerates the snapshot (review the diff like code).

Exit codes: 0 clean, 1 violations found, 2 usage/internal error.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("check-ntcp") => run_check(&args[1..]),
        Some("check-portal") => run_check_portal(&args[1..]),
        Some("bench") => run_bench(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Locate the workspace root: walk up from `start` looking for a
/// `Cargo.toml` that declares `[workspace]`.
fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a file"),
            },
            "--write-baseline" => match it.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => return usage("--write-baseline needs a file"),
            },
            other => return usage(&format!("unknown lint flag '{other}'")),
        }
    }
    let root = match root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        find_root(cwd).or_else(|| {
            // Fallback for `cargo run` from anywhere inside the target dir.
            Some(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
        })
    }) {
        Some(r) => r,
        None => return usage("cannot locate workspace root; pass --root"),
    };
    let summary = match rules::lint_workspace(&root) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("analyzer: {e}");
            return ExitCode::from(2);
        }
    };
    // A gate that scanned nothing proves nothing — refuse to pass
    // vacuously (wrong --root, renamed crates dir, …).
    if summary.files_scanned == 0 {
        eprintln!(
            "analyzer: no lintable files under {} — wrong workspace root?",
            root.display()
        );
        return ExitCode::from(2);
    }

    if let Some(path) = write_baseline {
        let snapshot = Baseline::from_summary(&summary);
        let text = match serde_json::to_string_pretty(&snapshot.to_json()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("analyzer: baseline unencodable: {e:?}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&path, text + "\n") {
            eprintln!("analyzer: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "analyzer: baseline written to {} ({} findings, {} suppressed sites accepted)",
            path.display(),
            summary.findings.len(),
            summary.suppressed,
        );
        return ExitCode::SUCCESS;
    }

    // Against a baseline, the ratchet decides the exit code: accepted
    // debt passes, anything beyond it fails.
    let regressions = match &baseline_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("analyzer: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let base = match Baseline::from_json(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("analyzer: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            Some(base.check(&summary))
        }
        None => None,
    };

    if json {
        let mut v = report::lint_json(&summary);
        if let Some(regs) = &regressions {
            if let serde_json::Value::Object(map) = &mut v {
                map.insert(
                    "baseline_regressions".into(),
                    serde_json::json!(regs
                        .iter()
                        .map(|r| serde_json::json!({
                            "file": r.file,
                            "rule": r.rule,
                            "kind": r.kind,
                            "allowed": r.allowed as u64,
                            "actual": r.actual as u64,
                        }))
                        .collect::<Vec<serde_json::Value>>()),
                );
            }
        }
        println!("{v}");
    } else {
        print!("{}", report::lint_text(&summary));
        if let Some(regs) = &regressions {
            print!("{}", regressions_text(regs));
            println!("analyzer: baseline ratchet: {} regression(s)", regs.len());
        }
    }
    let failed = match &regressions {
        Some(regs) => !regs.is_empty(),
        None => !summary.findings.is_empty(),
    };
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn next_num(it: &mut std::slice::Iter<'_, String>, name: &str) -> Result<u64, String> {
    it.next()
        .ok_or_else(|| format!("{name} needs a number"))?
        .parse::<u64>()
        .map_err(|e| format!("{name}: {e}"))
}

fn run_check(args: &[String]) -> ExitCode {
    let mut cfg = CheckConfig::default();
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--dup-budget" => match next_num(&mut it, "--dup-budget") {
                Ok(n) => cfg.dup_budget = n as u32,
                Err(e) => return usage(&e),
            },
            "--drop-budget" => match next_num(&mut it, "--drop-budget") {
                Ok(n) => cfg.drop_budget = n as u32,
                Err(e) => return usage(&e),
            },
            "--max-schedules" => match next_num(&mut it, "--max-schedules") {
                Ok(n) => cfg.max_schedules = n,
                Err(e) => return usage(&e),
            },
            "--mutate" => match it.next().map(String::as_str) {
                Some("clear-dedup-on-restore") => {
                    cfg.mutation = Some(Mutation::ClearDedupOnRestore)
                }
                _ => return usage("--mutate takes 'clear-dedup-on-restore'"),
            },
            other => return usage(&format!("unknown check-ntcp flag '{other}'")),
        }
    }
    // analyzer:allow(no-wall-clock, reason = "host-side progress timing for the report, not simulation state")
    let started = std::time::Instant::now();
    let report_data = check(&cfg);
    let elapsed_ms = started.elapsed().as_millis();
    if json {
        println!("{}", report::check_json(&report_data, elapsed_ms));
    } else {
        print!("{}", report::check_text(&report_data, elapsed_ms));
    }
    if report_data.violation.is_none() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run_check_portal(args: &[String]) -> ExitCode {
    let mut cfg = PortalCheckConfig::default();
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--submissions" => match next_num(&mut it, "--submissions") {
                Ok(n) => cfg.submissions = n as usize,
                Err(e) => return usage(&e),
            },
            "--steps" => match next_num(&mut it, "--steps") {
                Ok(n) => cfg.steps = n as usize,
                Err(e) => return usage(&e),
            },
            "--kill-budget" => match next_num(&mut it, "--kill-budget") {
                Ok(n) => cfg.kill_budget = n as usize,
                Err(e) => return usage(&e),
            },
            "--cancel-budget" => match next_num(&mut it, "--cancel-budget") {
                Ok(n) => cfg.cancel_budget = n as usize,
                Err(e) => return usage(&e),
            },
            "--max-schedules" => match next_num(&mut it, "--max-schedules") {
                Ok(n) => cfg.max_schedules = n,
                Err(e) => return usage(&e),
            },
            "--mutate" => match it.next().map(String::as_str) {
                Some("skip-cancel-refund") => cfg.mutation = Some(PortalMutation::SkipCancelRefund),
                _ => return usage("--mutate takes 'skip-cancel-refund'"),
            },
            other => return usage(&format!("unknown check-portal flag '{other}'")),
        }
    }
    // analyzer:allow(no-wall-clock, reason = "host-side progress timing for the report, not simulation state")
    let started = std::time::Instant::now();
    let report_data = check_portal(&cfg);
    let elapsed_ms = started.elapsed().as_millis();
    if json {
        println!("{}", report::portal_check_json(&report_data, elapsed_ms));
    } else {
        print!("{}", report::portal_check_text(&report_data, elapsed_ms));
    }
    if report_data.violation.is_none() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// `bench`: run both exhaustive checkers at their default configs and
/// record schedule counts + wall time, optionally into a JSON file for
/// `scripts/bench.sh` trend tracking.
fn run_bench(args: &[String]) -> ExitCode {
    let mut out_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => return usage("--out needs a file"),
            },
            other => return usage(&format!("unknown bench flag '{other}'")),
        }
    }

    // analyzer:allow(no-wall-clock, reason = "host-side bench timing for the report, not simulation state")
    let started = std::time::Instant::now();
    let ntcp = check(&CheckConfig::default());
    let ntcp_ms = started.elapsed().as_millis();
    if let Some(v) = &ntcp.violation {
        eprintln!(
            "bench: check-ntcp found a violation: {} — {}",
            v.invariant, v.detail
        );
        return ExitCode::from(1);
    }
    println!(
        "bench: check-ntcp {} schedules (deepest {}) in {} ms",
        ntcp.schedules, ntcp.deepest, ntcp_ms
    );

    // analyzer:allow(no-wall-clock, reason = "host-side bench timing for the report, not simulation state")
    let started = std::time::Instant::now();
    let portal = check_portal(&PortalCheckConfig::default());
    let portal_ms = started.elapsed().as_millis();
    if let Some(v) = &portal.violation {
        eprintln!(
            "bench: check-portal found a violation: {} — {}",
            v.invariant, v.detail
        );
        return ExitCode::from(1);
    }
    println!(
        "bench: check-portal {} schedules (deepest {}) in {} ms",
        portal.schedules, portal.deepest, portal_ms
    );

    if let Some(path) = out_path {
        let doc = serde_json::json!({
            "check_ntcp": {
                "schedules": ntcp.schedules,
                "deepest": ntcp.deepest as u64,
                "elapsed_ms": ntcp_ms as u64,
            },
            "check_portal": {
                "schedules": portal.schedules,
                "deepest": portal.deepest as u64,
                "elapsed_ms": portal_ms as u64,
            },
        });
        let text = match serde_json::to_string_pretty(&doc) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench: unencodable: {e:?}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&path, text + "\n") {
            eprintln!("bench: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("bench: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("neesgrid-analyzer: {msg}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}
