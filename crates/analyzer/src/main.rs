//! CLI for the analyzer: `lint` and `check-ntcp` subcommands.

use std::path::PathBuf;
use std::process::ExitCode;

use neesgrid_analyzer::{check, report, rules, CheckConfig, Mutation};

const USAGE: &str = "\
neesgrid-analyzer — workspace invariant linter + NTCP schedule checker

USAGE:
    neesgrid-analyzer lint [--json] [--root <dir>]
    neesgrid-analyzer check-ntcp [--json] [--dup-budget N] [--drop-budget N]
                                 [--max-schedules N] [--mutate clear-dedup-on-restore]

Exit codes: 0 clean, 1 violations found, 2 usage/internal error.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("check-ntcp") => run_check(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Locate the workspace root: walk up from `start` looking for a
/// `Cargo.toml` that declares `[workspace]`.
fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            other => return usage(&format!("unknown lint flag '{other}'")),
        }
    }
    let root = match root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        find_root(cwd).or_else(|| {
            // Fallback for `cargo run` from anywhere inside the target dir.
            Some(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
        })
    }) {
        Some(r) => r,
        None => return usage("cannot locate workspace root; pass --root"),
    };
    match rules::lint_workspace(&root) {
        Ok(summary) => {
            // A gate that scanned nothing proves nothing — refuse to pass
            // vacuously (wrong --root, renamed crates dir, …).
            if summary.files_scanned == 0 {
                eprintln!(
                    "analyzer: no lintable files under {} — wrong workspace root?",
                    root.display()
                );
                return ExitCode::from(2);
            }
            if json {
                println!("{}", report::lint_json(&summary));
            } else {
                print!("{}", report::lint_text(&summary));
            }
            if summary.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("analyzer: {e}");
            ExitCode::from(2)
        }
    }
}

fn next_num(it: &mut std::slice::Iter<'_, String>, name: &str) -> Result<u64, String> {
    it.next()
        .ok_or_else(|| format!("{name} needs a number"))?
        .parse::<u64>()
        .map_err(|e| format!("{name}: {e}"))
}

fn run_check(args: &[String]) -> ExitCode {
    let mut cfg = CheckConfig::default();
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--dup-budget" => match next_num(&mut it, "--dup-budget") {
                Ok(n) => cfg.dup_budget = n as u32,
                Err(e) => return usage(&e),
            },
            "--drop-budget" => match next_num(&mut it, "--drop-budget") {
                Ok(n) => cfg.drop_budget = n as u32,
                Err(e) => return usage(&e),
            },
            "--max-schedules" => match next_num(&mut it, "--max-schedules") {
                Ok(n) => cfg.max_schedules = n,
                Err(e) => return usage(&e),
            },
            "--mutate" => match it.next().map(String::as_str) {
                Some("clear-dedup-on-restore") => {
                    cfg.mutation = Some(Mutation::ClearDedupOnRestore)
                }
                _ => return usage("--mutate takes 'clear-dedup-on-restore'"),
            },
            other => return usage(&format!("unknown check-ntcp flag '{other}'")),
        }
    }
    // analyzer:allow(no-wall-clock, reason = "host-side progress timing for the report, not simulation state")
    let started = std::time::Instant::now();
    let report_data = check(&cfg);
    let elapsed_ms = started.elapsed().as_millis();
    if json {
        println!("{}", report::check_json(&report_data, elapsed_ms));
    } else {
        print!("{}", report::check_text(&report_data, elapsed_ms));
    }
    if report_data.violation.is_none() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("neesgrid-analyzer: {msg}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}
