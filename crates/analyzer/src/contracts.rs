//! Contract rules built on the parse layer: `no-hash-iteration` and
//! `bounded-buffer-contract`.
//!
//! Both reason about *what* code touches, not which tokens appear:
//!
//! * [`check_hash_iteration`] tracks which struct fields, locals, and
//!   parameters are `HashMap`/`HashSet`-typed (through `Arc`/`Mutex`
//!   wrappers and `use … as` aliases) and flags any iteration over them —
//!   `.iter()`, `.values()`, `.drain()`, `for x in &map`, … — because hash
//!   iteration order varies run-to-run and silently breaks the platform's
//!   bit-identical-replay guarantee. Iterations that visibly re-sort in
//!   the same statement (a `BTreeMap`/`BTreeSet` collect or a `sort*`
//!   call) pass; everything else needs a `BTreeMap` conversion or an
//!   `analyzer:allow(no-hash-iteration, …)` pragma stating the invariant.
//! * [`check_buffer_contract`] demands that every bounded channel/ring
//!   construction (`sync_channel`, `bounded`, `VecDeque::with_capacity`)
//!   in queueing code carries a machine-checkable declaration —
//!   `// analyzer:buffer(cap = <expr>, drop = oldest|shed|block)` — whose
//!   capacity expression textually matches the constructed one. The
//!   declaration is the reviewable contract (what bounds the queue, what
//!   happens on overflow); the rule keeps it from rotting.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::lexer::{Delim, TokKind, Token};
use crate::parse::{call_chains, render, ParsedFile};
use crate::rules::Finding;

/// Methods whose call iterates the receiver in storage order.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Methods that hand back the same underlying collection (possibly behind
/// a guard), so a binding of the result stays hash-typed.
const GUARD_METHODS: [&str; 9] = [
    "lock",
    "read",
    "write",
    "borrow",
    "borrow_mut",
    "clone",
    "as_ref",
    "as_mut",
    "get_mut",
];

/// True when `name` occurs in `text` as a whole word (identifier
/// boundaries on both sides), so `TxHashMapIdx` does not match `HashMap`.
fn word_contains(text: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(at) = text[from..].find(name) {
        let at = from + at;
        let before_ok = at == 0
            || !text[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + name.len();
        let after_ok = after >= text.len()
            || !text[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + name.len();
    }
    false
}

/// Does an identifier mark the statement as explicitly ordered? A
/// `BTreeMap`/`BTreeSet` (collect target or conversion) or any `sort*`
/// call counts.
fn is_ordering_ident(s: &str) -> bool {
    s.starts_with("BTree") || s.starts_with("sort")
}

/// The `no-hash-iteration` pass over one file.
pub fn check_hash_iteration(
    file: &str,
    tokens: &[Token],
    mask: &[bool],
    parsed: &ParsedFile,
    raw: &mut Vec<Finding>,
) {
    // Hash type names in force in this file: the std names plus any
    // `use std::collections::HashMap as …` aliases from the use graph.
    let mut hash_names: BTreeSet<String> = ["HashMap", "HashSet"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    for b in parsed.bindings_of(&["collections::HashMap", "collections::HashSet"]) {
        if b != "*" {
            hash_names.insert(b);
        }
    }

    // Struct fields whose type text mentions a hash type (wrappers like
    // `Arc<Mutex<HashMap<…>>>` included).
    let mut hash_fields: BTreeSet<String> = BTreeSet::new();
    for st in &parsed.structs {
        for f in &st.fields {
            if hash_names.iter().any(|n| word_contains(&f.ty, n)) {
                hash_fields.insert(f.name.clone());
            }
        }
    }

    // Analyze each outermost fn body once (nested fns are contained in
    // their parent's range and would double-report).
    let mut covered: Vec<Range<usize>> = Vec::new();
    for f in &parsed.fns {
        if covered
            .iter()
            .any(|r| r.start <= f.body.start && f.body.end <= r.end)
        {
            continue;
        }
        covered.push(f.body.clone());
        let base = f.body.start;
        let body = &tokens[f.body.clone()];
        let header = &tokens[f.header.clone()];
        let locals = hash_locals(header, body, &hash_names, &hash_fields);
        let resolve = |root: &[String]| -> Option<String> {
            let last = root.last()?;
            if last == "#" {
                return None;
            }
            let is_hash = if root.len() == 1 {
                locals.contains(last)
            } else {
                hash_fields.contains(last)
            };
            is_hash.then(|| root.join("."))
        };

        for chain in call_chains(body) {
            // The first link that is not a guard/alias hop is the one that
            // determines what happens to the container: `.lock().values()`
            // still iterates the hash map behind the guard.
            let Some(link) = chain
                .links
                .iter()
                .find(|l| !GUARD_METHODS.contains(&l.method.as_str()))
            else {
                continue;
            };
            if mask[base + link.tok] || !ITER_METHODS.contains(&link.method.as_str()) {
                continue;
            }
            let Some(what) = resolve(&chain.root) else {
                continue;
            };
            if statement_is_ordered(body, chain.start, link.tok) {
                continue;
            }
            raw.push(Finding {
                file: file.to_string(),
                line: link.line,
                rule: "no-hash-iteration",
                message: format!(
                    "iterating hash-ordered `{what}` via .{}() is nondeterministic across runs — use a BTreeMap/BTreeSet, sort in the same statement, or pragma the ordering invariant",
                    link.method
                ),
            });
        }

        check_for_loops(file, body, base, mask, &locals, &hash_fields, raw);
    }
}

/// Hash-typed bindings in one fn: typed parameters, annotated lets,
/// constructor lets, and guard/alias propagation from hash fields.
fn hash_locals(
    header: &[Token],
    body: &[Token],
    hash_names: &BTreeSet<String>,
    hash_fields: &BTreeSet<String>,
) -> BTreeSet<String> {
    let mut locals: BTreeSet<String> = BTreeSet::new();
    // Parameters: `name: Type` pairs in the signature.
    let mut i = 0;
    while i < header.len() {
        if let TokKind::Ident(name) = &header[i].kind {
            if matches!(header.get(i + 1).map(|t| &t.kind), Some(TokKind::Op(':')))
                && !matches!(header.get(i + 2).map(|t| &t.kind), Some(TokKind::PathSep))
            {
                let mut j = i + 2;
                let mut angle = 0i32;
                while j < header.len() {
                    match header[j].kind {
                        TokKind::Op('<') => angle += 1,
                        TokKind::Op('>') => angle -= 1,
                        TokKind::Comma if angle <= 0 => break,
                        TokKind::Close(Delim::Paren) if angle <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let ty = render(&header[i + 2..j]);
                if hash_names.iter().any(|n| word_contains(&ty, n)) {
                    locals.insert(name.clone());
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    // Lets in the body.
    let mut i = 0;
    while i < body.len() {
        if !matches!(&body[i].kind, TokKind::Ident(s) if s == "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if matches!(&body.get(j).map(|t| &t.kind), Some(TokKind::Ident(s)) if *s == "mut") {
            j += 1;
        }
        let Some(TokKind::Ident(name)) = body.get(j).map(|t| &t.kind) else {
            i += 1;
            continue;
        };
        let name = name.clone();
        // The statement's remaining tokens, to the terminating `;`.
        let mut end = j + 1;
        let mut depth = 0i32;
        while end < body.len() {
            match body[end].kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                TokKind::Semi if depth <= 0 => break,
                _ => {}
            }
            end += 1;
        }
        let stmt = &body[j + 1..end.min(body.len())];
        let text = render(stmt);
        let mut is_hash = hash_names.iter().any(|n| word_contains(&text, n));
        if !is_hash {
            // Guard/alias propagation: `= self.field.lock()`, `= &map`.
            if let Some(eq) = stmt.iter().position(|t| t.kind == TokKind::Op('=')) {
                let rhs = &stmt[eq + 1..];
                let chains = call_chains(rhs);
                if let Some(c) = chains.iter().find(|c| c.start <= 1) {
                    let rooted = match c.root.last() {
                        Some(last) if last != "#" => {
                            (c.root.len() > 1 && hash_fields.contains(last))
                                || (c.root.len() == 1
                                    && (locals.contains(last) || hash_fields.contains(last)))
                        }
                        _ => false,
                    };
                    is_hash = rooted
                        && c.links
                            .iter()
                            .all(|l| GUARD_METHODS.contains(&l.method.as_str()));
                } else {
                    // Bare alias: `= &self.map;`
                    let rhs_text = render(rhs);
                    let path = rhs_text.trim_start_matches(['&', ' ', '*']);
                    let last = path.rsplit('.').next().unwrap_or("");
                    is_hash = !last.is_empty()
                        && last.chars().all(|c| c.is_alphanumeric() || c == '_')
                        && (hash_fields.contains(last) || locals.contains(last));
                }
            }
        }
        if is_hash {
            locals.insert(name);
        }
        i = end;
    }
    locals
}

/// Does the statement containing tokens `[start, end]` visibly restore an
/// order (BTree collect target or a sort)? The window runs from the
/// previous statement boundary to the next `;` or block open.
fn statement_is_ordered(body: &[Token], start: usize, end: usize) -> bool {
    let mut lo = start;
    while lo > 0 {
        match body[lo - 1].kind {
            TokKind::Semi | TokKind::Open(Delim::Brace) | TokKind::Close(Delim::Brace) => break,
            _ => lo -= 1,
        }
    }
    let mut hi = end;
    while hi < body.len() {
        match body[hi].kind {
            TokKind::Semi | TokKind::Open(Delim::Brace) => break,
            _ => hi += 1,
        }
    }
    body[lo..hi]
        .iter()
        .any(|t| matches!(&t.kind, TokKind::Ident(s) if is_ordering_ident(s)))
}

/// Flag `for pat in <hash container> { … }` loops where the container is
/// referenced bare (method-call iterations are handled by the chain pass).
fn check_for_loops(
    file: &str,
    body: &[Token],
    base: usize,
    mask: &[bool],
    locals: &BTreeSet<String>,
    hash_fields: &BTreeSet<String>,
    raw: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < body.len() {
        if mask[base + i] || !matches!(&body[i].kind, TokKind::Ident(s) if s == "for") {
            i += 1;
            continue;
        }
        // Find `in` at bracket depth 0 (the pattern may destructure).
        let mut j = i + 1;
        let mut depth = 0i32;
        let in_at = loop {
            match body.get(j).map(|t| &t.kind) {
                Some(TokKind::Open(Delim::Brace)) | Some(TokKind::Semi) | None => break None,
                Some(TokKind::Open(_)) => depth += 1,
                Some(TokKind::Close(_)) => depth -= 1,
                Some(TokKind::Ident(s)) if s == "in" && depth <= 0 => break Some(j),
                _ => {}
            }
            j += 1;
        };
        let Some(in_at) = in_at else {
            i += 1;
            continue;
        };
        // Expression runs to the loop body's `{` at depth 0.
        let mut k = in_at + 1;
        let mut depth = 0i32;
        while k < body.len() {
            match body[k].kind {
                TokKind::Open(Delim::Brace) if depth <= 0 => break,
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        let expr = &body[in_at + 1..k];
        let ordered = expr
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Ident(s) if is_ordering_ident(s)));
        if !ordered {
            // Bare container paths in the expression, not followed by `(`.
            let mut e = 0;
            while e < expr.len() {
                let starts = matches!(&expr[e].kind, TokKind::Ident(_))
                    && (e == 0 || !matches!(expr[e - 1].kind, TokKind::Dot | TokKind::PathSep));
                if !starts {
                    e += 1;
                    continue;
                }
                let mut path: Vec<String> = Vec::new();
                let mut p = e;
                while let Some(TokKind::Ident(s)) = expr.get(p).map(|t| &t.kind) {
                    path.push(s.clone());
                    p += 1;
                    match expr.get(p).map(|t| &t.kind) {
                        Some(TokKind::Dot) | Some(TokKind::PathSep) => p += 1,
                        _ => break,
                    }
                }
                let is_call = matches!(
                    expr.get(p).map(|t| &t.kind),
                    Some(TokKind::Open(Delim::Paren))
                );
                if !is_call {
                    if let Some(last) = path.last() {
                        let hit = (path.len() == 1 && locals.contains(last))
                            || hash_fields.contains(last);
                        if hit {
                            raw.push(Finding {
                                file: file.to_string(),
                                line: expr[e].line,
                                rule: "no-hash-iteration",
                                message: format!(
                                    "`for … in {}` iterates a hash-ordered container nondeterministically — use a BTreeMap/BTreeSet or an explicitly sorted view, or pragma the ordering invariant",
                                    path.join(".")
                                ),
                            });
                        }
                    }
                }
                e = p.max(e + 1);
            }
        }
        i = k;
    }
}

/// A parsed `// analyzer:buffer(cap = …, drop = …)` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferDecl {
    /// 1-based line of the pragma comment.
    pub line: u32,
    /// Declared capacity expression, verbatim.
    pub cap: String,
    /// Declared overflow policy: `oldest`, `shed`, or `block`.
    pub drop: String,
    /// Set when a construction site claims this declaration.
    pub used: bool,
}

/// Constructor idents whose call builds a bounded channel.
const CHANNEL_CTORS: [&str; 2] = ["sync_channel", "bounded"];

/// The `bounded-buffer-contract` pass: every channel/ring construction in
/// scope must carry a matching [`BufferDecl`] on the same or previous line.
pub fn check_buffer_contract(
    file: &str,
    src: &str,
    tokens: &[Token],
    mask: &[bool],
    decls: &mut [BufferDecl],
    raw: &mut Vec<Finding>,
) {
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(
            src.char_indices()
                .filter(|&(_, c)| c == '\n')
                .map(|(i, _)| i + 1),
        )
        .collect();

    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        let TokKind::Ident(ident) = &tokens[i].kind else {
            continue;
        };
        let ctor: Option<&str> = if CHANNEL_CTORS.contains(&ident.as_str()) {
            let callish = matches!(
                tokens.get(i + 1).map(|t| &t.kind),
                Some(TokKind::Open(Delim::Paren)) | Some(TokKind::PathSep)
            );
            let prev_dot = i > 0 && tokens[i - 1].kind == TokKind::Dot;
            let is_decl = i > 0 && matches!(&tokens[i - 1].kind, TokKind::Ident(s) if s == "fn");
            (callish && !prev_dot && !is_decl).then_some(ident.as_str())
        } else if ident == "with_capacity"
            && i >= 2
            && tokens[i - 1].kind == TokKind::PathSep
            && matches!(&tokens[i - 2].kind, TokKind::Ident(s) if s == "VecDeque")
        {
            Some("with_capacity")
        } else {
            None
        };
        let Some(ctor) = ctor else { continue };
        let line = tokens[i].line;

        let Some(decl) = decls
            .iter_mut()
            .find(|d| d.line == line || d.line + 1 == line)
        else {
            raw.push(Finding {
                file: file.to_string(),
                line,
                rule: "bounded-buffer-contract",
                message: format!(
                    "`{ctor}` constructs a bounded buffer without a contract — declare `// analyzer:buffer(cap = <expr>, drop = oldest|shed|block)` on the line above, matching the constructed capacity"
                ),
            });
            continue;
        };
        decl.used = true;
        if let Some(arg) = extract_call_arg(src, &line_starts, line, ctor) {
            let declared: String = decl.cap.chars().filter(|c| !c.is_whitespace()).collect();
            let actual: String = arg.chars().filter(|c| !c.is_whitespace()).collect();
            if declared != actual {
                raw.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: "bounded-buffer-contract",
                    message: format!(
                        "buffer contract declares cap = `{}` but the construction uses `{}` — keep the declaration in sync with the code",
                        decl.cap, arg
                    ),
                });
            }
        }
    }
}

/// Extract the argument text of `ctor(…)` starting on 1-based `line`,
/// balancing parentheses across lines.
fn extract_call_arg(src: &str, line_starts: &[usize], line: u32, ctor: &str) -> Option<String> {
    let start = *line_starts.get(line as usize - 1)?;
    let at = src[start..].find(ctor)? + start;
    let open = src[at..].find('(')? + at;
    let mut depth = 0i32;
    for (off, c) in src[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    // A trailing comma is formatting, not capacity.
                    let arg = src[open + 1..open + off].trim().trim_end_matches(',');
                    return Some(arg.trim().to_string());
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{lint_source, RuleSet};

    fn hash_findings(src: &str) -> Vec<(u32, String)> {
        let out = lint_source("test.rs", src, RuleSet::all());
        out.findings
            .iter()
            .filter(|f| f.rule == "no-hash-iteration")
            .map(|f| (f.line, f.message.clone()))
            .collect()
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(word_contains("Arc<Mutex<HashMap<K,V>>>", "HashMap"));
        assert!(!word_contains("TxHashMapIdx", "HashMap"));
        assert!(word_contains("HashMap", "HashMap"));
    }

    #[test]
    fn field_iteration_is_flagged() {
        let f = hash_findings(
            "use std::collections::HashMap;\nstruct S { m: HashMap<u8, u8> }\nimpl S {\n    fn f(&self) {\n        for v in self.m.values() { use_it(v); }\n    }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].0, 5);
        assert!(f[0].1.contains("self.m"));
    }

    #[test]
    fn local_and_param_iteration_flagged() {
        let f = hash_findings(
            "fn f(m: &HashMap<u8, u8>) {\n    let n = HashMap::new();\n    m.keys().count();\n    n.iter().count();\n    for x in &n {}\n}\n",
        );
        assert_eq!(f.len(), 3, "{f:?}");
    }

    #[test]
    fn guard_propagation_through_lock() {
        let f = hash_findings(
            "struct S { inner: Arc<Mutex<HashMap<u8, u8>>> }\nimpl S {\n    fn f(&self) {\n        let g = self.inner.lock();\n        for v in g.values() { use_it(v); }\n    }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].0, 5);
    }

    #[test]
    fn btreemap_and_sorted_statements_pass() {
        let f = hash_findings(
            "struct S { m: HashMap<u8, u8>, b: BTreeMap<u8, u8> }\nimpl S {\n    fn f(&self) {\n        for v in self.b.values() {}\n        let v: BTreeMap<u8, u8> = self.m.iter().map(|(k, v)| (*k, *v)).collect();\n        let mut k: Vec<u8> = self.m.keys().copied().collect::<BTreeSet<u8>>().into_iter().collect();\n    }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lookup_calls_are_not_iteration() {
        let f = hash_findings(
            "struct S { m: HashMap<u8, u8> }\nimpl S {\n    fn f(&self) {\n        self.m.get(&1);\n        self.m.len();\n        self.m.contains_key(&1);\n        self.m.insert(1, 2);\n    }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn alias_imports_are_tracked() {
        let f = hash_findings(
            "use std::collections::HashMap as Map;\nstruct S { m: Map<u8, u8> }\nimpl S {\n    fn f(&self) { self.m.values().count(); }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn pragma_waives_hash_iteration() {
        let out = lint_source(
            "test.rs",
            "struct S { m: HashMap<u8, u8> }\nimpl S {\n    fn f(&self) {\n        // analyzer:allow(no-hash-iteration, reason = \"order folded through a commutative sum\")\n        self.m.values().sum::<u8>();\n    }\n}\n",
            RuleSet::all(),
        );
        assert!(
            out.findings.iter().all(|f| f.rule != "no-hash-iteration"),
            "{:?}",
            out.findings
        );
        assert_eq!(out.suppressed, 1);
    }

    #[test]
    fn hash_iteration_in_tests_exempt() {
        let f = hash_findings(
            "struct S { m: HashMap<u8, u8> }\n#[cfg(test)]\nmod tests {\n    fn f(s: &super::S) { s.m.values().count(); }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    fn buffer_findings(src: &str) -> Vec<(u32, String)> {
        let out = lint_source("test.rs", src, RuleSet::all());
        out.findings
            .iter()
            .filter(|f| f.rule == "bounded-buffer-contract")
            .map(|f| (f.line, f.message.clone()))
            .collect()
    }

    #[test]
    fn undeclared_construction_flagged() {
        let f = buffer_findings(
            "fn f() {\n    let q: VecDeque<u8> = VecDeque::with_capacity(64);\n    let (tx, rx) = sync_channel(16);\n    let (a, b) = bounded(8);\n}\n",
        );
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f[0].1.contains("analyzer:buffer"));
    }

    #[test]
    fn matching_declaration_passes() {
        let f = buffer_findings(
            "fn f(capacity: usize) {\n    // analyzer:buffer(cap = capacity, drop = shed)\n    let q: VecDeque<u8> = VecDeque::with_capacity(capacity);\n    // analyzer:buffer(cap = 16, drop = block)\n    let (tx, rx) = sync_channel(16);\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn mismatched_capacity_flagged() {
        let f = buffer_findings(
            "fn f() {\n    // analyzer:buffer(cap = 32, drop = oldest)\n    let q: VecDeque<u8> = VecDeque::with_capacity(64);\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].1.contains("cap = `32`"));
        assert!(f[0].1.contains("`64`"));
    }

    #[test]
    fn complex_capacity_expressions_compare_whitespace_insensitively() {
        let f = buffer_findings(
            "fn f(capacity: usize) {\n    // analyzer:buffer(cap = capacity.min(1024), drop = oldest)\n    let q: VecDeque<u8> = VecDeque::with_capacity(capacity.min( 1024 ));\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn method_calls_and_fn_decls_named_bounded_ignored() {
        let f = buffer_findings(
            "fn run_bounded(&self) { self.run_bounded(1); }\nfn g(x: &S) { x.bounded(3); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn vec_with_capacity_is_not_a_queue() {
        let f = buffer_findings("fn f() { let v = Vec::with_capacity(64); }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn extract_arg_spans_lines() {
        let src = "let q = VecDeque::with_capacity(\n    BOARD_RETENTION,\n);\n";
        let starts: Vec<usize> = std::iter::once(0)
            .chain(
                src.char_indices()
                    .filter(|&(_, c)| c == '\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        assert_eq!(
            extract_call_arg(src, &starts, 1, "with_capacity").as_deref(),
            Some("BOARD_RETENTION")
        );
        let _ = lex(src);
    }
}
