//! Exhaustive schedule checker for the NTCP transaction machine.
//!
//! A loom-style *stateless* model checker: it re-runs a small
//! client/server model from its initial state once per schedule, making
//! every nondeterministic choice (which message the network delivers
//! next, whether to duplicate it, whether to drop the reply, when to
//! snapshot and when to crash-and-restore) by exhaustive enumeration.
//! The paper's MOST run died at step 1493 on exactly this class of bug:
//! an interleaving of loss and retransmission nobody had tested. PR 1
//! answered with an at-most-once proptest — random schedules; this
//! module upgrades that to *all* schedules within the configured budget.
//!
//! The model: a coordinator-side client proposes transaction `t1`, and —
//! once it has *seen* the acceptance — races an `execute` against a
//! `cancel` (failover looks like this: the backup coordinator cancels
//! what the primary was executing). The network may duplicate each
//! request and lose each reply, within budgets. At some point a snapshot
//! is taken, and later the server crashes and is restored from it while
//! client retransmissions are still in flight.
//!
//! Invariants checked after every event, on every schedule:
//!
//! 1. **at-most-once** — the server's execution counter (which survives
//!    snapshot/restore) never exceeds 1;
//! 2. **no double actuation / no double cancel** — the plugin probe
//!    observes at most one `execute` and one `cancel` call per world
//!    line;
//! 3. **dedup consistency across restore** — every response the server
//!    produces for a request id equals the first response it produced
//!    for that id; responses recorded before the snapshot must replay
//!    identically after restore;
//! 4. **execute/cancel exclusivity** — one world line never reports both
//!    a successful execute and a successful cancel of the same
//!    transaction.
//!
//! [`Mutation::ClearDedupOnRestore`] deliberately wipes the dedup cache
//! from the snapshot before restoring — the seeded bug the mutation test
//! proves this checker catches (invariant 3 fires: a pre-snapshot
//! `execute` Ok replays as an `InvalidState` fault).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use neesgrid_gridsim::{SimClock, SimTime};
use neesgrid_gsi::{ActionLimits, DistinguishedName, SitePolicy};
use neesgrid_ntcp::plugin::{ExecuteOutcome, PluginError};
use neesgrid_ntcp::{ControlPlugin, ControlPoint, NtcpServer, SimulationPlugin};
use neesgrid_ogsi::{CallContext, GridService, ServiceFault};
use neesgrid_structsim::{LinearElastic, SimulatedSubstructure};
use serde_json::{json, Value};

/// Request ids: the fixed little script the client plays.
const RID_PROPOSE: u64 = 1;
const RID_EXECUTE: u64 = 2;
const RID_CANCEL: u64 = 3;

/// A seeded bug for mutation testing the checker itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Drop the dedup cache from the snapshot before restoring — the
    /// "retransmission after resume re-executes" bug class.
    ClearDedupOnRestore,
}

/// Checker configuration (all bounds, so the state space is finite).
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// How many times the network may duplicate a request (total).
    pub dup_budget: u32,
    /// How many replies the network may lose (total).
    pub drop_budget: u32,
    /// Safety cap on explored schedules.
    pub max_schedules: u64,
    /// Optional seeded bug, for mutation testing.
    pub mutation: Option<Mutation>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        // dup=2/drop=1 explores ~69k schedules in a couple of seconds
        // (release); dup=2/drop=2 is ~610k and ~10× slower — available
        // via --dup-budget/--drop-budget for deeper offline runs.
        CheckConfig {
            dup_budget: 2,
            drop_budget: 1,
            max_schedules: 2_000_000,
            mutation: None,
        }
    }
}

/// An invariant violation, with the schedule that produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant fired.
    pub invariant: String,
    /// What was observed.
    pub detail: String,
    /// The event sequence, in order.
    pub trace: Vec<String>,
}

/// Result of an exhaustive run.
#[derive(Debug)]
pub struct CheckReport {
    /// Complete schedules explored.
    pub schedules: u64,
    /// Longest schedule (events).
    pub deepest: usize,
    /// First violation found, if any (exploration stops there).
    pub violation: Option<Violation>,
    /// True if `max_schedules` stopped exploration before exhaustion.
    pub truncated: bool,
}

/// One nondeterministic event the scheduler can pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Deliver one copy of a request; the client sees the reply.
    Deliver(u64),
    /// The network duplicates an in-flight request (copy count +1).
    Duplicate(u64),
    /// Deliver one copy but lose the reply: the server processes it, the
    /// client learns nothing and will retransmit (copy count unchanged).
    DropReply(u64),
    /// Take the checkpoint snapshot.
    Snapshot,
    /// Crash the server and restore from the snapshot.
    Restore,
}

impl Ev {
    fn describe(self) -> String {
        let op = |rid| match rid {
            RID_PROPOSE => "propose",
            RID_EXECUTE => "execute",
            RID_CANCEL => "cancel",
            _ => "?",
        };
        match self {
            Ev::Deliver(r) => format!("deliver rid={r} {}", op(r)),
            Ev::Duplicate(r) => format!("duplicate rid={r} {}", op(r)),
            Ev::DropReply(r) => format!("deliver rid={r} {} (reply lost)", op(r)),
            Ev::Snapshot => "snapshot".into(),
            Ev::Restore => "restore".into(),
        }
    }
}

/// A `SimulationPlugin` wrapper counting physical `execute`/`cancel`
/// calls through shared probes that survive the wrapper being rebuilt.
struct ProbedPlugin {
    inner: SimulationPlugin,
    execs: Arc<AtomicU64>,
    cancels: Arc<AtomicU64>,
}

impl ControlPlugin for ProbedPlugin {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn review(&mut self, actions: &[ControlPoint]) -> Result<(), String> {
        self.inner.review(actions)
    }
    fn execute(&mut self, actions: &[ControlPoint]) -> Result<ExecuteOutcome, PluginError> {
        self.execs.fetch_add(1, Ordering::SeqCst);
        self.inner.execute(actions)
    }
    fn cancel(&mut self, actions: &[ControlPoint]) -> Result<(), PluginError> {
        self.cancels.fetch_add(1, Ordering::SeqCst);
        self.inner.cancel(actions)
    }
    fn state(&self) -> Option<Value> {
        self.inner.state()
    }
    fn restore(&mut self, state: &Value) -> Result<(), PluginError> {
        self.inner.restore(state)
    }
}

/// What the world remembers about a request id's canonical response.
struct Recorded {
    response: Result<Value, ServiceFault>,
    in_snapshot: bool,
}

/// The model world one schedule runs in.
struct World {
    server: NtcpServer,
    execs: Arc<AtomicU64>,
    cancels: Arc<AtomicU64>,
    /// In-flight request copies: rid → copy count. A `BTreeMap` collapses
    /// symmetric copies and keeps event enumeration deterministic.
    pool: BTreeMap<u64, u32>,
    dup_left: u32,
    drop_left: u32,
    snapshot: Option<Value>,
    restored: bool,
    /// Has the client seen the proposal accepted (and queued the
    /// execute/cancel race)?
    follow_ups_queued: bool,
    recorded: BTreeMap<u64, Recorded>,
    exec_ok: bool,
    cancel_ok: bool,
    mutation: Option<Mutation>,
    trace: Vec<String>,
}

fn build_server(execs: &Arc<AtomicU64>, cancels: &Arc<AtomicU64>) -> NtcpServer {
    let plugin = ProbedPlugin {
        inner: SimulationPlugin::new(
            "model",
            Box::new(SimulatedSubstructure::spring_to_ground(
                "col",
                Box::new(LinearElastic::new(1.0e5)),
            )),
        ),
        execs: Arc::clone(execs),
        cancels: Arc::clone(cancels),
    };
    NtcpServer::new(
        "model-site",
        SitePolicy::permissive("model-site", ActionLimits::most_large_scale()),
        Box::new(plugin),
        SimClock::new(),
    )
}

fn ctx(request_id: u64) -> CallContext {
    CallContext {
        caller: DistinguishedName::nees_user("NCSA", "Coordinator"),
        now: SimTime::from_secs(request_id),
        request_id,
    }
}

fn request_body(rid: u64) -> (&'static str, Value) {
    match rid {
        RID_PROPOSE => (
            "propose",
            json!({
                "transaction": "t1",
                "actions": [ControlPoint::displacement("dof-0", 0.01, 1000.0)],
                "timeout": SimTime::from_secs(30),
            }),
        ),
        RID_EXECUTE => ("execute", json!({"transaction": "t1"})),
        _ => ("cancel", json!({"transaction": "t1"})),
    }
}

impl World {
    fn new(cfg: &CheckConfig) -> Self {
        let execs = Arc::new(AtomicU64::new(0));
        let cancels = Arc::new(AtomicU64::new(0));
        let server = build_server(&execs, &cancels);
        let mut pool = BTreeMap::new();
        pool.insert(RID_PROPOSE, 1u32);
        World {
            server,
            execs,
            cancels,
            pool,
            dup_left: cfg.dup_budget,
            drop_left: cfg.drop_budget,
            snapshot: None,
            restored: false,
            follow_ups_queued: false,
            recorded: BTreeMap::new(),
            exec_ok: false,
            cancel_ok: false,
            mutation: cfg.mutation,
            trace: Vec::new(),
        }
    }

    /// Enumerate enabled events in a fixed, deterministic order. An empty
    /// answer terminates the schedule — which can only happen once every
    /// message is consumed and the snapshot/restore pair has happened, so
    /// every explored schedule crosses a checkpoint-restore boundary.
    fn enabled(&self) -> Vec<Ev> {
        let mut evs = Vec::new();
        for &rid in self.pool.keys() {
            evs.push(Ev::Deliver(rid));
        }
        if self.dup_left > 0 {
            for &rid in self.pool.keys() {
                evs.push(Ev::Duplicate(rid));
            }
        }
        if self.drop_left > 0 {
            for &rid in self.pool.keys() {
                evs.push(Ev::DropReply(rid));
            }
        }
        if self.snapshot.is_none() {
            evs.push(Ev::Snapshot);
        } else if !self.restored {
            evs.push(Ev::Restore);
        }
        evs
    }

    fn violation(&self, invariant: &str, detail: String) -> Violation {
        Violation {
            invariant: invariant.to_string(),
            detail,
            trace: self.trace.clone(),
        }
    }

    /// Process one delivery of `rid` through the server and check the
    /// response invariants. `client_sees` is false for lost replies.
    fn process(&mut self, rid: u64, client_sees: bool) -> Result<(), Violation> {
        let (op, body) = request_body(rid);
        let response = self.server.handle(&ctx(rid), op, &body);

        // Invariant 3: a request id has exactly one answer, forever.
        match self.recorded.get(&rid) {
            Some(rec) if rec.response != response => {
                return Err(self.violation(
                    "dedup-consistency",
                    format!(
                        "rid {rid} ({op}) answered {:?} but was previously answered {:?}",
                        response, rec.response
                    ),
                ));
            }
            Some(_) => {}
            None => {
                self.recorded.insert(
                    rid,
                    Recorded {
                        response: response.clone(),
                        in_snapshot: false,
                    },
                );
            }
        }

        // Invariant 4: the transaction cannot both complete and cancel.
        if response.is_ok() {
            match rid {
                RID_EXECUTE => {
                    if self.cancel_ok {
                        return Err(self.violation(
                            "execute-cancel-exclusivity",
                            "execute succeeded after cancel succeeded".into(),
                        ));
                    }
                    self.exec_ok = true;
                }
                RID_CANCEL => {
                    if self.exec_ok {
                        return Err(self.violation(
                            "execute-cancel-exclusivity",
                            "cancel succeeded after execute succeeded".into(),
                        ));
                    }
                    self.cancel_ok = true;
                }
                _ => {}
            }
        }

        // Client reaction: seeing the proposal accepted starts the
        // execute/cancel race (the failover scenario).
        // (With the permissive model policy the proposal is always
        // accepted, so any Ok answer means the race may begin.)
        if client_sees && rid == RID_PROPOSE && !self.follow_ups_queued && response.is_ok() {
            self.queue_follow_ups();
        }
        Ok(())
    }

    fn queue_follow_ups(&mut self) {
        self.pool.insert(RID_EXECUTE, 1);
        self.pool.insert(RID_CANCEL, 1);
        self.follow_ups_queued = true;
    }

    fn step(&mut self, ev: Ev) -> Result<(), Violation> {
        self.trace.push(ev.describe());
        match ev {
            Ev::Deliver(rid) => {
                let n = self.pool.get_mut(&rid).map(|n| {
                    *n -= 1;
                    *n
                });
                if n == Some(0) {
                    self.pool.remove(&rid);
                }
                self.process(rid, true)?;
            }
            Ev::Duplicate(rid) => {
                if let Some(n) = self.pool.get_mut(&rid) {
                    *n += 1;
                }
                self.dup_left -= 1;
            }
            Ev::DropReply(rid) => {
                self.drop_left -= 1;
                self.process(rid, false)?;
            }
            Ev::Snapshot => {
                self.snapshot = Some(self.server.snapshot());
                for rec in self.recorded.values_mut() {
                    rec.in_snapshot = true;
                }
            }
            Ev::Restore => {
                let mut snap = self.snapshot.clone().unwrap_or_default();
                if self.mutation == Some(Mutation::ClearDedupOnRestore) {
                    if let Value::Object(map) = &mut snap {
                        map.insert("dedup".to_string(), json!([]));
                    }
                }
                // Crash: the server and its plugin are rebuilt from
                // nothing, then the snapshot is applied. Fresh probes —
                // physical motion on the abandoned world line is gone.
                self.execs = Arc::new(AtomicU64::new(0));
                self.cancels = Arc::new(AtomicU64::new(0));
                self.server = build_server(&self.execs, &self.cancels);
                if let Err(e) = self
                    .server
                    .restore_snapshot(&snap, SimTime::from_secs(1000))
                {
                    return Err(self.violation(
                        "restore-failed",
                        format!("restore_snapshot rejected its own snapshot: {e:?}"),
                    ));
                }
                // The world rewound to the snapshot: responses first
                // produced after it belong to the abandoned world line.
                self.recorded.retain(|_, rec| rec.in_snapshot);
                self.exec_ok = self
                    .recorded
                    .get(&RID_EXECUTE)
                    .is_some_and(|r| r.response.is_ok());
                self.cancel_ok = self
                    .recorded
                    .get(&RID_CANCEL)
                    .is_some_and(|r| r.response.is_ok());
                self.restored = true;
            }
        }

        // Invariant 1: the restored execution counter never passes 1.
        if self.server.executions() > 1 {
            return Err(self.violation(
                "at-most-once",
                format!("server execution counter = {}", self.server.executions()),
            ));
        }
        // Invariant 2: the probe saw at most one physical execute and one
        // physical cancel on this world line.
        let (e, c) = (
            self.execs.load(Ordering::SeqCst),
            self.cancels.load(Ordering::SeqCst),
        );
        if e > 1 || c > 1 {
            return Err(self.violation(
                "single-actuation",
                format!("plugin probe saw {e} execute call(s), {c} cancel call(s)"),
            ));
        }
        Ok(())
    }
}

/// Depth safety bound: budgets cap real schedules far below this.
const MAX_DEPTH: usize = 64;

/// Run one schedule, replaying `choices` and extending it at fresh
/// decision points. Returns the depth reached.
fn run_one(cfg: &CheckConfig, choices: &mut Vec<(usize, usize)>) -> Result<usize, Violation> {
    let mut world = World::new(cfg);
    let mut depth = 0usize;
    loop {
        let evs = world.enabled();
        if evs.is_empty() {
            return Ok(depth);
        }
        if depth >= MAX_DEPTH {
            return Err(world.violation(
                "depth-bound",
                format!("schedule exceeded {MAX_DEPTH} events"),
            ));
        }
        let pick = if depth < choices.len() {
            if choices[depth].1 != evs.len() {
                return Err(world.violation(
                    "nondeterministic-model",
                    format!(
                        "replay divergence at depth {depth}: {} enabled events, expected {}",
                        evs.len(),
                        choices[depth].1
                    ),
                ));
            }
            choices[depth].0
        } else {
            choices.push((0, evs.len()));
            0
        };
        world.step(evs[pick])?;
        depth += 1;
    }
}

/// Advance `choices` to the next unexplored schedule; false = exhausted.
fn backtrack(choices: &mut Vec<(usize, usize)>) -> bool {
    while let Some(last) = choices.last_mut() {
        if last.0 + 1 < last.1 {
            last.0 += 1;
            return true;
        }
        choices.pop();
    }
    false
}

/// Exhaustively explore every schedule within the budgets.
pub fn check(cfg: &CheckConfig) -> CheckReport {
    let mut choices: Vec<(usize, usize)> = Vec::new();
    let mut report = CheckReport {
        schedules: 0,
        deepest: 0,
        violation: None,
        truncated: false,
    };
    loop {
        match run_one(cfg, &mut choices) {
            Ok(depth) => {
                report.schedules += 1;
                report.deepest = report.deepest.max(depth);
            }
            Err(v) => {
                report.schedules += 1;
                report.violation = Some(v);
                return report;
            }
        }
        if report.schedules >= cfg.max_schedules {
            report.truncated = true;
            return report;
        }
        if !backtrack(&mut choices) {
            return report;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_machine_survives_small_exhaustive_run() {
        let cfg = CheckConfig {
            dup_budget: 1,
            drop_budget: 1,
            ..CheckConfig::default()
        };
        let report = check(&cfg);
        assert!(
            report.violation.is_none(),
            "unexpected violation: {:?}",
            report.violation
        );
        assert!(!report.truncated);
        assert!(
            report.schedules > 100,
            "suspiciously small space: {}",
            report.schedules
        );
    }

    #[test]
    fn seeded_dedup_mutation_is_caught() {
        let cfg = CheckConfig {
            dup_budget: 1,
            drop_budget: 1,
            mutation: Some(Mutation::ClearDedupOnRestore),
            ..CheckConfig::default()
        };
        let report = check(&cfg);
        let v = report
            .violation
            .expect("clearing the dedup cache on restore must violate an invariant");
        assert_eq!(v.invariant, "dedup-consistency", "got {v:?}");
        assert!(
            v.trace.iter().any(|t| t == "restore"),
            "violation should occur after the restore: {:?}",
            v.trace
        );
    }

    #[test]
    fn one_known_bad_schedule_replays_exactly() {
        // Hand-driven: propose delivered, execute processed with the
        // reply lost, snapshot, restore with the dedup cache wiped, then
        // the retransmitted execute arrives. The transaction is already
        // Completed in the restored state, so without the cache the
        // replay answers InvalidState where it once answered Ok.
        let cfg = CheckConfig {
            dup_budget: 0,
            drop_budget: 1,
            mutation: Some(Mutation::ClearDedupOnRestore),
            ..CheckConfig::default()
        };
        let mut world = World::new(&cfg);
        for ev in [
            Ev::Deliver(RID_PROPOSE),
            Ev::DropReply(RID_EXECUTE),
            Ev::Snapshot,
            Ev::Restore,
        ] {
            world.step(ev).expect("prefix must be violation-free");
        }
        let err = world
            .step(Ev::Deliver(RID_EXECUTE))
            .expect_err("retransmission after mutated restore must be caught");
        assert_eq!(err.invariant, "dedup-consistency");
        assert!(err.detail.contains("rid 2"), "{}", err.detail);
    }
}
