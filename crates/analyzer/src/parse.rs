//! A lightweight parse layer over the token stream.
//!
//! The token-stream rules of PR 2 ask "which tokens appear"; the contract
//! rules of this layer ask "*what* is iterated, locked, or constructed".
//! That needs just enough structure — no full grammar:
//!
//! * the **use graph** ([`UsePath`]): every `use` declaration flattened,
//!   `{…}` groups expanded and `as` aliases recorded, so a rule can tell
//!   that `Map` *is* `std::collections::HashMap` in this file;
//! * **items**: struct declarations with their fields' type text (enough
//!   to see `Arc<Mutex<HashMap<…>>>` through the wrappers) and function
//!   bodies as token ranges;
//! * **method-call chains** ([`Chain`]): a receiver path (`self.sessions`,
//!   `guard`) plus the ordered `.method(…)` links hanging off it, which is
//!   what the `no-hash-iteration` and `lock-order` passes walk.
//!
//! Everything here is resilient by construction: unparseable stretches are
//! skipped, never fatal, because a linter that dies on odd syntax is worse
//! than one that under-reports it.

use std::ops::Range;

use crate::lexer::{Delim, TokKind, Token};

/// One flattened `use` path, e.g. `std::collections::HashMap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsePath {
    /// Path segments, in order.
    pub segments: Vec<String>,
    /// The name this import binds (`as` alias, or the last segment).
    pub binding: String,
    /// 1-based line of the `use` keyword.
    pub line: u32,
}

/// A struct field with its type rendered back to text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Type text with whitespace collapsed, e.g. `Arc<Mutex<HashMap<K,V>>>`.
    pub ty: String,
    /// 1-based line the field starts on.
    pub line: u32,
}

/// A struct item and its named fields (tuple structs report none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// Named fields.
    pub fields: Vec<Field>,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
}

/// A function body located in the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Token indices of the signature, from the `fn` keyword to the body's
    /// opening brace (exclusive) — parameter types live here.
    pub header: Range<usize>,
    /// Token indices of the body, exclusive of the braces.
    pub body: Range<usize>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// One `.method(…)` link of a call chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLink {
    /// Method name.
    pub method: String,
    /// 1-based line of the method identifier.
    pub line: u32,
    /// Token index of the method identifier.
    pub tok: usize,
}

/// A method-call chain: the receiver path and its ordered links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Leading receiver path, e.g. `["self", "sessions"]` or `["guard"]`.
    /// Tuple-index fields appear as `"#"` placeholders.
    pub root: Vec<String>,
    /// The `.method(…)` calls, in order.
    pub links: Vec<ChainLink>,
    /// Token index where the chain's first root segment sits.
    pub start: usize,
}

/// The parse-layer view of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Flattened `use` graph.
    pub uses: Vec<UsePath>,
    /// Struct items with field types.
    pub structs: Vec<StructItem>,
    /// Function bodies (nested functions are reported separately, their
    /// ranges contained in the parent's).
    pub fns: Vec<FnItem>,
}

impl ParsedFile {
    /// Parse the token stream into uses, structs, and fn bodies.
    pub fn parse(tokens: &[Token]) -> ParsedFile {
        let mut out = ParsedFile::default();
        let mut i = 0;
        while i < tokens.len() {
            match ident_at(tokens, i) {
                Some("use") => {
                    i = parse_use(tokens, i, &mut out.uses);
                    continue;
                }
                Some("struct") => {
                    if let Some(next) = parse_struct(tokens, i, &mut out.structs) {
                        i = next;
                        continue;
                    }
                }
                Some("fn") => {
                    if let Some((item, descend)) = parse_fn(tokens, i) {
                        out.fns.push(item);
                        // Descend into the body so nested fns are found.
                        i = descend;
                        continue;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        out
    }

    /// The local names (binding or alias) under which any of `targets`
    /// (full path suffixes like `collections::HashMap`) are imported.
    pub fn bindings_of(&self, targets: &[&str]) -> Vec<String> {
        let mut out = Vec::new();
        for u in &self.uses {
            let joined = u.segments.join("::");
            if targets
                .iter()
                .any(|t| joined == *t || joined.ends_with(&format!("::{t}")))
            {
                out.push(u.binding.clone());
            }
        }
        out
    }
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Parse `use a::b::{c, d as e};` starting at the `use` keyword; returns
/// the index just past the terminating `;`.
fn parse_use(tokens: &[Token], at: usize, out: &mut Vec<UsePath>) -> usize {
    let line = tokens[at].line;
    let mut i = at + 1;
    let mut prefix: Vec<String> = Vec::new();
    collect_use_tree(tokens, &mut i, &mut prefix, line, out);
    // Skip to just past the `;` (collect_use_tree stops at it or at EOF).
    while i < tokens.len() && tokens[i].kind != TokKind::Semi {
        i += 1;
    }
    i + 1
}

/// Recursive descent over one use-tree level. `i` advances in place.
fn collect_use_tree(
    tokens: &[Token],
    i: &mut usize,
    prefix: &mut Vec<String>,
    line: u32,
    out: &mut Vec<UsePath>,
) {
    let depth_here = prefix.len();
    loop {
        match tokens.get(*i).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) if s == "as" => {
                *i += 1;
                if let Some(alias) = ident_at(tokens, *i) {
                    out.push(UsePath {
                        segments: prefix.clone(),
                        binding: alias.to_string(),
                        line,
                    });
                    *i += 1;
                }
                prefix.truncate(depth_here);
            }
            Some(TokKind::Ident(s)) => {
                prefix.push(s.clone());
                *i += 1;
                match tokens.get(*i).map(|t| &t.kind) {
                    Some(TokKind::PathSep) => {
                        *i += 1;
                    }
                    Some(TokKind::Ident(a)) if a == "as" => { /* handled next loop */ }
                    _ => {
                        // Path ends here: bind the last segment.
                        out.push(UsePath {
                            segments: prefix.clone(),
                            binding: prefix.last().cloned().unwrap_or_default(),
                            line,
                        });
                        prefix.truncate(depth_here);
                    }
                }
            }
            Some(TokKind::Op('*')) => {
                // Glob import: record with a `*` binding (unusable as an
                // alias, but keeps the graph complete).
                out.push(UsePath {
                    segments: prefix.clone(),
                    binding: "*".to_string(),
                    line,
                });
                *i += 1;
                prefix.truncate(depth_here);
            }
            Some(TokKind::Open(Delim::Brace)) => {
                *i += 1;
                collect_use_tree(tokens, i, prefix, line, out);
                prefix.truncate(depth_here);
            }
            Some(TokKind::Comma) => {
                *i += 1;
                prefix.truncate(depth_here);
            }
            Some(TokKind::Close(Delim::Brace)) => {
                *i += 1;
                return;
            }
            Some(TokKind::Semi) | None => return,
            _ => {
                *i += 1;
            }
        }
    }
}

/// Parse a struct declaration at the `struct` keyword. Returns the index
/// just past the item, or `None` if this isn't a declaration site (e.g.
/// the ident `struct` appearing in other positions).
fn parse_struct(tokens: &[Token], at: usize, out: &mut Vec<StructItem>) -> Option<usize> {
    let line = tokens[at].line;
    let name = ident_at(tokens, at + 1)?.to_string();
    let mut i = at + 2;
    // Skip generics `<…>` by angle-depth counting.
    if matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Op('<'))) {
        let mut depth = 0i32;
        while i < tokens.len() {
            match tokens[i].kind {
                TokKind::Op('<') => depth += 1,
                TokKind::Op('>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Skip a where-clause up to the body/semicolon.
    while i < tokens.len() {
        match &tokens[i].kind {
            TokKind::Semi => {
                // Unit struct (or tuple struct whose parens we skipped past).
                out.push(StructItem {
                    name,
                    fields: Vec::new(),
                    line,
                });
                return Some(i + 1);
            }
            TokKind::Open(Delim::Paren) => {
                // Tuple struct: skip the parens, fields are unnamed.
                let close = matching_tok(tokens, i, Delim::Paren)?;
                i = close + 1;
            }
            TokKind::Open(Delim::Brace) => {
                let close = matching_tok(tokens, i, Delim::Brace)?;
                let fields = parse_fields(&tokens[i + 1..close]);
                out.push(StructItem { name, fields, line });
                return Some(close + 1);
            }
            _ => i += 1,
        }
    }
    None
}

/// Parse `name: Type,` field lists inside a struct body.
fn parse_fields(body: &[Token]) -> Vec<Field> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // Skip attributes and doc comments.
        match &body[i].kind {
            TokKind::DocComment => {
                i += 1;
                continue;
            }
            TokKind::Pound => {
                if let Some(close) = matching_tok(body, i + 1, Delim::Bracket) {
                    i = close + 1;
                    continue;
                }
                i += 1;
                continue;
            }
            _ => {}
        }
        // Optional `pub` / `pub(crate)` prefix.
        if ident_at(body, i) == Some("pub") {
            i += 1;
            if matches!(
                body.get(i).map(|t| &t.kind),
                Some(TokKind::Open(Delim::Paren))
            ) {
                if let Some(close) = matching_tok(body, i, Delim::Paren) {
                    i = close + 1;
                }
            }
        }
        let Some(name) = ident_at(body, i) else {
            i += 1;
            continue;
        };
        if !matches!(body.get(i + 1).map(|t| &t.kind), Some(TokKind::Op(':'))) {
            i += 1;
            continue;
        }
        let line = body[i].line;
        let name = name.to_string();
        // Type text runs to the next comma at angle/paren depth zero.
        let mut j = i + 2;
        let mut angle = 0i32;
        let mut paren = 0i32;
        let ty_start = j;
        while j < body.len() {
            match body[j].kind {
                TokKind::Op('<') => angle += 1,
                TokKind::Op('>') => angle -= 1,
                TokKind::Open(Delim::Paren) => paren += 1,
                TokKind::Close(Delim::Paren) => paren -= 1,
                TokKind::Comma if angle <= 0 && paren <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        out.push(Field {
            name,
            ty: render(&body[ty_start..j]),
            line,
        });
        i = j + 1;
    }
    out
}

/// Parse a fn at the `fn` keyword; returns the item and the index to
/// continue scanning from (inside the body, so nested fns are seen).
fn parse_fn(tokens: &[Token], at: usize) -> Option<(FnItem, usize)> {
    let line = tokens[at].line;
    let name = ident_at(tokens, at + 1)?.to_string();
    let mut j = at + 2;
    let open = loop {
        match tokens.get(j).map(|t| &t.kind) {
            Some(TokKind::Open(Delim::Brace)) => break j,
            Some(TokKind::Semi) | None => return None, // bodyless signature
            _ => j += 1,
        }
    };
    let close = matching_tok(tokens, open, Delim::Brace).unwrap_or(tokens.len() - 1);
    Some((
        FnItem {
            name,
            header: at..open,
            body: open + 1..close,
            line,
        },
        open + 1,
    ))
}

/// Index of the delimiter closing the one opened at `open`.
fn matching_tok(tokens: &[Token], open: usize, delim: Delim) -> Option<usize> {
    if !matches!(tokens.get(open).map(|t| &t.kind), Some(TokKind::Open(d)) if *d == delim) {
        return None;
    }
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match &t.kind {
            TokKind::Open(d) if *d == delim => depth += 1,
            TokKind::Close(d) if *d == delim => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Render tokens back to compact text (whitespace collapsed, literals as
/// `_`). Good enough to substring-match type names through wrappers.
pub fn render(tokens: &[Token]) -> String {
    let mut s = String::new();
    for t in tokens {
        match &t.kind {
            TokKind::Ident(id) => {
                if s.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                    s.push(' ');
                }
                s.push_str(id);
            }
            TokKind::PathSep => s.push_str("::"),
            TokKind::Dot => s.push('.'),
            TokKind::Comma => s.push(','),
            TokKind::Semi => s.push(';'),
            TokKind::Pound => s.push('#'),
            TokKind::Bang => s.push('!'),
            TokKind::Lit => s.push('_'),
            TokKind::DocComment => {}
            TokKind::Open(Delim::Paren) => s.push('('),
            TokKind::Close(Delim::Paren) => s.push(')'),
            TokKind::Open(Delim::Bracket) => s.push('['),
            TokKind::Close(Delim::Bracket) => s.push(']'),
            TokKind::Open(Delim::Brace) => s.push('{'),
            TokKind::Close(Delim::Brace) => s.push('}'),
            TokKind::Op(c) => s.push(*c),
        }
    }
    s
}

/// Extract every method-call chain in `body` (token indices are relative
/// to the slice handed in). A chain starts at a path not preceded by `.`
/// and records each `.method(…)` link; plain field accesses extend the
/// root until the first call.
pub fn call_chains(body: &[Token]) -> Vec<Chain> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // A chain root starts at an identifier not preceded by `.` or `::`.
        let starts_root = matches!(&body[i].kind, TokKind::Ident(_))
            && (i == 0 || !matches!(body[i - 1].kind, TokKind::Dot | TokKind::PathSep));
        if !starts_root {
            i += 1;
            continue;
        }
        let start = i;
        let mut root: Vec<String> = Vec::new();
        // Leading `a::b::c` path.
        while let Some(TokKind::Ident(s)) = body.get(i).map(|t| &t.kind) {
            root.push(s.clone());
            i += 1;
            if matches!(body.get(i).map(|t| &t.kind), Some(TokKind::PathSep)) {
                i += 1;
            } else {
                break;
            }
        }
        // `.field` accesses extend the root; the first `.method(` starts
        // the links.
        let mut links: Vec<ChainLink> = Vec::new();
        loop {
            if !matches!(body.get(i).map(|t| &t.kind), Some(TokKind::Dot)) {
                break;
            }
            match body.get(i + 1).map(|t| &t.kind) {
                Some(TokKind::Ident(m)) => {
                    let is_call = matches!(
                        body.get(i + 2).map(|t| &t.kind),
                        Some(TokKind::Open(Delim::Paren))
                    ) || (
                        // Turbofish: `.collect::<T>()`.
                        matches!(body.get(i + 2).map(|t| &t.kind), Some(TokKind::PathSep))
                            && matches!(body.get(i + 3).map(|t| &t.kind), Some(TokKind::Op('<')))
                    );
                    if is_call {
                        links.push(ChainLink {
                            method: m.clone(),
                            line: body[i + 1].line,
                            tok: i + 1,
                        });
                        // Skip past the call's argument list (and any
                        // turbofish) so nested chains inside arguments are
                        // scanned on their own.
                        let mut k = i + 2;
                        if matches!(body.get(k).map(|t| &t.kind), Some(TokKind::PathSep)) {
                            // `::<…>` — skip to the matching `>`.
                            k += 1;
                            let mut depth = 0i32;
                            while k < body.len() {
                                match body[k].kind {
                                    TokKind::Op('<') => depth += 1,
                                    TokKind::Op('>') => {
                                        depth -= 1;
                                        if depth == 0 {
                                            k += 1;
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                        }
                        if matches!(
                            body.get(k).map(|t| &t.kind),
                            Some(TokKind::Open(Delim::Paren))
                        ) {
                            match matching_tok(body, k, Delim::Paren) {
                                Some(close) => {
                                    // Recurse into the argument list so
                                    // chains inside closures and nested
                                    // calls are found on their own.
                                    let off = k + 1;
                                    for mut c in call_chains(&body[off..close]) {
                                        c.start += off;
                                        for l in &mut c.links {
                                            l.tok += off;
                                        }
                                        out.push(c);
                                    }
                                    i = close + 1;
                                }
                                None => {
                                    i = body.len();
                                }
                            }
                        } else {
                            i = k;
                        }
                    } else if links.is_empty() {
                        // Field access before any call: part of the root.
                        root.push(m.clone());
                        i += 2;
                    } else {
                        // Field access after a call (`x.lock().field`):
                        // ends the interesting part of the chain.
                        i += 2;
                        break;
                    }
                }
                Some(TokKind::Lit) if links.is_empty() => {
                    // Tuple index in the root (`pair.0`).
                    root.push("#".to_string());
                    i += 2;
                }
                _ => break,
            }
        }
        if !links.is_empty() {
            out.push(Chain { root, links, start });
        }
        if i == start {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse(&lex(src).tokens)
    }

    #[test]
    fn use_graph_flattens_groups_and_aliases() {
        let p = parse(
            "use std::collections::{HashMap, BTreeMap as Sorted};\nuse std::sync::Arc;\nuse crate::x::*;\n",
        );
        let bindings: Vec<(&str, &str)> = p
            .uses
            .iter()
            .map(|u| {
                (
                    u.binding.as_str(),
                    u.segments.last().map(String::as_str).unwrap_or(""),
                )
            })
            .collect();
        assert!(bindings.contains(&("HashMap", "HashMap")));
        assert!(bindings.contains(&("Sorted", "BTreeMap")));
        assert!(bindings.contains(&("Arc", "Arc")));
        assert!(bindings.contains(&("*", "x")));
        assert_eq!(
            p.bindings_of(&["collections::HashMap"]),
            vec!["HashMap".to_string()]
        );
        assert_eq!(
            p.bindings_of(&["collections::BTreeMap"]),
            vec!["Sorted".to_string()]
        );
    }

    #[test]
    fn struct_fields_carry_type_text() {
        let p = parse(
            "pub struct Dir {\n    /// doc\n    pub sessions: HashMap<Name, Session>,\n    inner: Arc<Mutex<HashMap<LinkKey, LinkStats>>>,\n    n: usize,\n}\nstruct Unit;\nstruct Tup(u8, u8);\n",
        );
        assert_eq!(p.structs.len(), 3);
        let dir = &p.structs[0];
        assert_eq!(dir.name, "Dir");
        assert_eq!(dir.fields.len(), 3);
        assert_eq!(dir.fields[0].name, "sessions");
        assert!(dir.fields[0].ty.contains("HashMap<Name,Session>"));
        assert!(dir.fields[1]
            .ty
            .contains("Mutex<HashMap<LinkKey,LinkStats>>"));
        assert_eq!(p.structs[1].fields.len(), 0);
        assert_eq!(p.structs[2].fields.len(), 0);
    }

    #[test]
    fn fn_bodies_are_ranged_and_nested_fns_found() {
        let src = "fn outer() {\n    fn inner() { x(); }\n    y();\n}\nfn sig();\n";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        let outer = &p.fns[0];
        let inner = &p.fns[1];
        assert!(outer.body.start < inner.body.start && inner.body.end < outer.body.end);
    }

    #[test]
    fn call_chains_resolve_roots_and_links() {
        let toks = lex(
            "self.sessions.values().filter(|s| s.ok()).count();\nm.iter();\nstd::mem::drop(x);\n",
        )
        .tokens;
        let chains = call_chains(&toks);
        let summary: Vec<(Vec<String>, Vec<String>)> = chains
            .iter()
            .map(|c| {
                (
                    c.root.clone(),
                    c.links.iter().map(|l| l.method.clone()).collect(),
                )
            })
            .collect();
        assert!(summary.contains(&(
            vec!["self".into(), "sessions".into()],
            vec!["values".into(), "filter".into(), "count".into()]
        )));
        assert!(summary.contains(&(vec!["m".into()], vec!["iter".into()])));
        // Closure arguments are scanned independently.
        assert!(summary.contains(&(vec!["s".into()], vec!["ok".into()])));
    }

    #[test]
    fn turbofish_collect_is_a_link() {
        let toks = lex("let v = m.iter().collect::<Vec<_>>();").tokens;
        let chains = call_chains(&toks);
        assert_eq!(chains.len(), 1);
        let methods: Vec<&str> = chains[0].links.iter().map(|l| l.method.as_str()).collect();
        assert_eq!(methods, vec!["iter", "collect"]);
    }

    #[test]
    fn guard_field_access_ends_chain_root() {
        // `x.lock().field.iter()` — the iter belongs to a post-call chain,
        // but the root chain records lock first.
        let toks = lex("self.inner.lock();").tokens;
        let chains = call_chains(&toks);
        assert_eq!(
            chains[0].root,
            vec!["self".to_string(), "inner".to_string()]
        );
        assert_eq!(chains[0].links[0].method, "lock");
    }
}
