//! The `lock-order` pass: derive the mutex-acquisition partial order and
//! flag pairs acquired in both orders.
//!
//! A deadlock needs two locks and two code paths that take them in
//! opposite orders — exactly the kind of bug that survives testing
//! (both paths work alone) and strikes under an unlucky interleaving,
//! like the paper's step-1493 failure. This pass extracts, per function,
//! the ordered sequence of `.lock()` receivers (`self.core`,
//! `handler_core`, …), merges the sequences across every file in scope
//! into a directed acquired-before graph, and reports every 2-cycle:
//! `a → b` somewhere and `b → a` somewhere else.
//!
//! Guard lifetimes are not tracked: two sequential `.lock()` calls in one
//! function count as nested even if the first guard was dropped. That is
//! deliberately conservative — if the pair is provably disjoint, the
//! `analyzer:allow(lock-order, reason = "…")` pragma states the proof
//! where the next reader needs it.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::lexer::Token;
use crate::parse::{call_chains, ParsedFile};
use crate::rules::Finding;

/// One lock acquisition: the receiver path text and its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// Receiver rendered as text, e.g. `self.core` or `state.inner`.
    pub receiver: String,
    /// 1-based line of the `.lock()` call.
    pub line: u32,
}

/// One file's contribution to the workspace-wide pass.
#[derive(Debug, Default)]
pub struct FileLocks {
    /// Repo-relative path.
    pub file: String,
    /// Per-function acquisition sequences, in source order.
    pub seqs: Vec<Vec<LockSite>>,
    /// Lines carrying an `analyzer:allow(lock-order, …)` pragma.
    pub allows: Vec<u32>,
}

/// Result of the cross-file pass.
#[derive(Debug, Default)]
pub struct LockOrderOutcome {
    /// Unsuppressed inversion findings.
    pub findings: Vec<Finding>,
    /// Findings waived by pragmas.
    pub suppressed: usize,
    /// `(file, line)` of every pragma that waived at least one finding.
    pub used_allows: Vec<(String, u32)>,
}

/// Extract per-function lock-acquisition sequences from one file. Each
/// `.lock()` call is attributed to the innermost enclosing function, so a
/// nested helper's acquisitions do not leak into its parent's sequence.
pub fn lock_sequences(tokens: &[Token], mask: &[bool], parsed: &ParsedFile) -> Vec<Vec<LockSite>> {
    let mut out = Vec::new();
    for (fi, f) in parsed.fns.iter().enumerate() {
        let inner: Vec<&Range<usize>> = parsed
            .fns
            .iter()
            .enumerate()
            .filter(|(gi, g)| *gi != fi && f.body.start <= g.body.start && g.body.end <= f.body.end)
            .map(|(_, g)| &g.body)
            .collect();
        let base = f.body.start;
        let body = &tokens[f.body.clone()];
        let mut seq = Vec::new();
        for chain in call_chains(body) {
            let Some(pos) = chain.links.iter().position(|l| l.method == "lock") else {
                continue;
            };
            let link = &chain.links[pos];
            let abs = base + link.tok;
            if mask[abs] || inner.iter().any(|r| r.contains(&abs)) {
                continue;
            }
            let mut receiver = chain.root.join(".");
            for l in &chain.links[..pos] {
                receiver.push_str(&format!(".{}()", l.method));
            }
            seq.push(LockSite {
                receiver,
                line: link.line,
            });
        }
        if !seq.is_empty() {
            out.push(seq);
        }
    }
    out
}

/// Merge every file's sequences into the acquired-before graph and report
/// each pair of locks taken in both orders, applying per-file pragmas.
pub fn check_lock_order(files: &[FileLocks]) -> LockOrderOutcome {
    // (first, second) -> first site where `second` was acquired while
    // `first` was (conservatively) held.
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for fl in files {
        for seq in &fl.seqs {
            for i in 0..seq.len() {
                for j in i + 1..seq.len() {
                    let (a, b) = (&seq[i], &seq[j]);
                    if a.receiver == b.receiver {
                        continue;
                    }
                    edges
                        .entry((a.receiver.clone(), b.receiver.clone()))
                        .or_insert((fl.file.clone(), b.line));
                }
            }
        }
    }

    let mut outcome = LockOrderOutcome::default();
    let mut raw: Vec<Finding> = Vec::new();
    for ((a, b), (file, line)) in &edges {
        // Visit each unordered pair once.
        if a >= b {
            continue;
        }
        let Some((rfile, rline)) = edges.get(&(b.clone(), a.clone())) else {
            continue;
        };
        raw.push(Finding {
            file: file.clone(),
            line: *line,
            rule: "lock-order",
            message: format!(
                "lock-order inversion: `{a}` is held when `{b}` is acquired here, but {rfile}:{rline} acquires them in the opposite order — deadlock under an unlucky interleaving; pick one global order or pragma the proven-disjoint pair"
            ),
        });
        raw.push(Finding {
            file: rfile.clone(),
            line: *rline,
            rule: "lock-order",
            message: format!(
                "lock-order inversion: `{b}` is held when `{a}` is acquired here, but {file}:{line} acquires them in the opposite order — deadlock under an unlucky interleaving; pick one global order or pragma the proven-disjoint pair"
            ),
        });
    }

    for f in raw {
        let waiver = files.iter().find(|fl| fl.file == f.file).and_then(|fl| {
            fl.allows
                .iter()
                .find(|&&l| l == f.line || l + 1 == f.line)
                .copied()
        });
        match waiver {
            Some(line) => {
                outcome.suppressed += 1;
                if !outcome.used_allows.contains(&(f.file.clone(), line)) {
                    outcome.used_allows.push((f.file.clone(), line));
                }
            }
            None => outcome.findings.push(f),
        }
    }
    outcome
        .findings
        .sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    outcome.used_allows.sort();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask_for;

    fn locks_of(src: &str) -> FileLocks {
        let lexed = lex(src);
        let parsed = ParsedFile::parse(&lexed.tokens);
        let mask = test_mask_for(&lexed.tokens);
        FileLocks {
            file: "test.rs".into(),
            seqs: lock_sequences(&lexed.tokens, &mask, &parsed),
            allows: Vec::new(),
        }
    }

    #[test]
    fn sequences_follow_source_order() {
        let fl = locks_of(
            "fn f(&self) {\n    let a = self.core.lock();\n    let b = self.aux.lock();\n}\n",
        );
        assert_eq!(fl.seqs.len(), 1);
        let recv: Vec<&str> = fl.seqs[0].iter().map(|s| s.receiver.as_str()).collect();
        assert_eq!(recv, vec!["self.core", "self.aux"]);
    }

    #[test]
    fn nested_fn_locks_do_not_leak_into_parent() {
        let fl = locks_of(
            "fn outer(&self) {\n    fn inner(s: &S) { s.aux.lock(); }\n    self.core.lock();\n}\n",
        );
        // Two sequences of one lock each — no ordered pair exists.
        assert_eq!(fl.seqs.len(), 2);
        assert!(fl.seqs.iter().all(|s| s.len() == 1));
        let out = check_lock_order(&[fl]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn consistent_global_order_is_clean() {
        let a = locks_of("fn f(&self) { self.core.lock(); self.aux.lock(); }\n");
        let b = locks_of("fn g(&self) { self.core.lock(); self.aux.lock(); }\n");
        let out = check_lock_order(&[a, b]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn seeded_inversion_is_caught_across_files() {
        // The planted bug: one file locks core→aux, another aux→core.
        let mut a = locks_of("fn f(&self) {\n    self.core.lock();\n    self.aux.lock();\n}\n");
        a.file = "crates/x/src/a.rs".into();
        let mut b = locks_of("fn g(&self) {\n    self.aux.lock();\n    self.core.lock();\n}\n");
        b.file = "crates/x/src/b.rs".into();
        let out = check_lock_order(&[a, b]);
        assert_eq!(out.findings.len(), 2, "{:?}", out.findings);
        assert!(out.findings[0].message.contains("opposite order"));
        assert!(out
            .findings
            .iter()
            .any(|f| f.file == "crates/x/src/a.rs" && f.line == 3));
        assert!(out
            .findings
            .iter()
            .any(|f| f.file == "crates/x/src/b.rs" && f.line == 3));
    }

    #[test]
    fn pragma_waives_one_direction_and_is_marked_used() {
        let mut a = locks_of("fn f(&self) {\n    self.core.lock();\n    self.aux.lock();\n}\n");
        a.file = "a.rs".into();
        a.allows = vec![2]; // line above the second acquisition
        let mut b = locks_of("fn g(&self) { self.aux.lock(); self.core.lock(); }\n");
        b.file = "b.rs".into();
        b.allows = vec![1];
        let out = check_lock_order(&[a, b]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed, 2);
        assert_eq!(
            out.used_allows,
            vec![("a.rs".to_string(), 2), ("b.rs".to_string(), 1)]
        );
    }

    #[test]
    fn guard_receivers_render_through_calls() {
        let fl = locks_of("fn f(&self) { self.state().lock(); }\n");
        assert_eq!(fl.seqs[0][0].receiver, "self.state()");
    }

    #[test]
    fn test_code_locks_are_masked() {
        let fl = locks_of(
            "#[cfg(test)]\nmod tests {\n    fn t(s: &S) { s.aux.lock(); s.core.lock(); }\n}\n",
        );
        assert!(fl.seqs.is_empty(), "{:?}", fl.seqs);
    }
}
