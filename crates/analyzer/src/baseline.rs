//! The lint **baseline ratchet**: a committed snapshot of accepted
//! findings and pragma'd sites, compared against every lint run.
//!
//! The linter's job is to stop *new* debt, not to force a big-bang
//! cleanup. The baseline records, per `(file, rule)`, how many findings
//! and how many suppressed (pragma-waived) sites the tree carried when
//! the snapshot was taken. `lint --baseline <path>` then fails if any
//! `(file, rule)` cell *exceeds* its recorded count — a new violation or
//! a new pragma both trip the ratchet — while cells that shrink or
//! disappear pass silently, so the debt can only go down.
//!
//! `lint --write-baseline <path>` regenerates the snapshot; the diff is
//! reviewed like any other code change.

use std::collections::BTreeMap;

use serde_json::{json, Value};

use crate::rules::LintSummary;

/// Accepted counts for one `(file, rule)` cell.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Open findings accepted at snapshot time.
    pub findings: usize,
    /// Pragma-suppressed sites accepted at snapshot time.
    pub suppressed: usize,
}

/// The full snapshot.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(file, rule)` → accepted counts. BTreeMap keeps the serialized
    /// form stable so regenerated baselines diff cleanly.
    pub cells: BTreeMap<(String, String), Cell>,
}

/// One cell that got worse than the baseline allows.
#[derive(Debug, PartialEq, Eq)]
pub struct Regression {
    pub file: String,
    pub rule: String,
    /// What exceeded: "findings" or "suppressed".
    pub kind: &'static str,
    pub allowed: usize,
    pub actual: usize,
}

impl Baseline {
    /// Snapshot the current lint result.
    pub fn from_summary(summary: &LintSummary) -> Baseline {
        let mut cells: BTreeMap<(String, String), Cell> = BTreeMap::new();
        for f in &summary.findings {
            cells
                .entry((f.file.clone(), f.rule.to_string()))
                .or_default()
                .findings += 1;
        }
        for ((file, rule), n) in &summary.suppressed_sites {
            cells
                .entry((file.clone(), rule.clone()))
                .or_default()
                .suppressed += n;
        }
        Baseline { cells }
    }

    /// Serialize to the committed JSON form.
    pub fn to_json(&self) -> Value {
        let entries: Vec<Value> = self
            .cells
            .iter()
            .map(|((file, rule), c)| {
                json!({
                    "file": file,
                    "rule": rule,
                    "findings": c.findings as u64,
                    "suppressed": c.suppressed as u64,
                })
            })
            .collect();
        json!({ "version": 1u64, "entries": entries })
    }

    /// Parse a committed baseline file.
    pub fn from_json(src: &str) -> Result<Baseline, String> {
        let v: Value =
            serde_json::from_str(src).map_err(|e| format!("baseline is not valid JSON: {e:?}"))?;
        if v.get("version").and_then(Value::as_u64) != Some(1) {
            return Err("baseline version must be 1".into());
        }
        let entries = v
            .get("entries")
            .and_then(Value::as_array)
            .ok_or("baseline has no `entries` array")?;
        let mut cells = BTreeMap::new();
        for e in entries {
            let file = e
                .get("file")
                .and_then(Value::as_str)
                .ok_or("entry missing `file`")?;
            let rule = e
                .get("rule")
                .and_then(Value::as_str)
                .ok_or("entry missing `rule`")?;
            let findings = e.get("findings").and_then(Value::as_u64).unwrap_or(0) as usize;
            let suppressed = e.get("suppressed").and_then(Value::as_u64).unwrap_or(0) as usize;
            cells.insert(
                (file.to_string(), rule.to_string()),
                Cell {
                    findings,
                    suppressed,
                },
            );
        }
        Ok(Baseline { cells })
    }

    /// Compare a fresh lint run against this baseline. Empty result means
    /// the ratchet holds; each entry is a cell that regressed.
    pub fn check(&self, summary: &LintSummary) -> Vec<Regression> {
        let current = Baseline::from_summary(summary);
        let mut out = Vec::new();
        for ((file, rule), cur) in &current.cells {
            let allowed = self
                .cells
                .get(&(file.clone(), rule.clone()))
                .copied()
                .unwrap_or_default();
            if cur.findings > allowed.findings {
                out.push(Regression {
                    file: file.clone(),
                    rule: rule.clone(),
                    kind: "findings",
                    allowed: allowed.findings,
                    actual: cur.findings,
                });
            }
            if cur.suppressed > allowed.suppressed {
                out.push(Regression {
                    file: file.clone(),
                    rule: rule.clone(),
                    kind: "suppressed",
                    allowed: allowed.suppressed,
                    actual: cur.suppressed,
                });
            }
        }
        out
    }
}

/// Render regressions for the text report.
pub fn regressions_text(regs: &[Regression]) -> String {
    let mut out = String::new();
    for r in regs {
        out.push_str(&format!(
            "{}: [{}] {} {} exceeds baseline {} — fix the new site or regenerate the baseline with --write-baseline (reviewed like code)\n",
            r.file, r.rule, r.actual, r.kind, r.allowed
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    fn summary(
        findings: Vec<(&str, &'static str)>,
        sites: Vec<(&str, &str, usize)>,
    ) -> LintSummary {
        LintSummary {
            findings: findings
                .into_iter()
                .map(|(file, rule)| Finding {
                    file: file.into(),
                    line: 1,
                    rule,
                    message: "m".into(),
                })
                .collect(),
            files_scanned: 1,
            suppressed: sites.iter().map(|(_, _, n)| n).sum(),
            suppressed_sites: sites
                .into_iter()
                .map(|(f, r, n)| ((f.to_string(), r.to_string()), n))
                .collect(),
        }
    }

    #[test]
    fn roundtrip_through_json() {
        let s = summary(
            vec![
                ("a.rs", "no-unwrap"),
                ("a.rs", "no-unwrap"),
                ("b.rs", "lock-order"),
            ],
            vec![("a.rs", "no-hash-iteration", 2)],
        );
        let base = Baseline::from_summary(&s);
        let text = serde_json::to_string_pretty(&base.to_json()).unwrap();
        let back = Baseline::from_json(&text).unwrap();
        assert_eq!(base, back);
        assert_eq!(
            back.cells[&("a.rs".to_string(), "no-unwrap".to_string())].findings,
            2
        );
    }

    #[test]
    fn ratchet_holds_when_debt_shrinks() {
        let old = summary(vec![("a.rs", "no-unwrap")], vec![("a.rs", "no-todo", 1)]);
        let base = Baseline::from_summary(&old);
        let improved = summary(vec![], vec![]);
        assert!(base.check(&improved).is_empty());
    }

    #[test]
    fn new_finding_trips_the_ratchet() {
        let base = Baseline::from_summary(&summary(vec![], vec![]));
        let cur = summary(vec![("a.rs", "no-unwrap")], vec![]);
        let regs = base.check(&cur);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].kind, "findings");
        assert_eq!((regs[0].allowed, regs[0].actual), (0, 1));
    }

    #[test]
    fn new_pragma_site_trips_the_ratchet() {
        let base = Baseline::from_summary(&summary(vec![], vec![("a.rs", "no-unwrap", 1)]));
        let cur = summary(vec![], vec![("a.rs", "no-unwrap", 2)]);
        let regs = base.check(&cur);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].kind, "suppressed");
        let text = regressions_text(&regs);
        assert!(text.contains("exceeds baseline 1"));
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(Baseline::from_json("{").is_err());
        assert!(Baseline::from_json("{\"version\": 2, \"entries\": []}").is_err());
        assert!(Baseline::from_json("{\"version\": 1}").is_err());
    }
}
