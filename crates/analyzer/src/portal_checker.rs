//! Exhaustive schedule checker for the portal worker pool.
//!
//! The same loom-style stateless technique as [`crate::checker`], aimed
//! at the scheduling layer instead of the wire protocol: one schedule is
//! a sequence of operator/tenant events — **submit**, **tick** (place
//! queued runs + advance every busy worker one slice), **kill** a busy
//! worker (checkpoint-restore recovery path), **cancel** a live run —
//! and the checker enumerates *every* interleaving within small budgets,
//! driving the real [`neesgrid_portal::Portal`] through the real
//! [`neesgrid_portal::PortalClient`] wire frames on a fresh
//! `VirtualNetwork` per schedule. No mocked scheduler: whatever the
//! service does under an adversarial operator is what gets checked.
//!
//! Invariants, checked after **every event** on every schedule:
//!
//! 1. **at-most-once execution** — every submitted run reaches exactly
//!    one terminal state and is counted exactly once in the portal's
//!    completed/cancelled/failed counters, even when a kill forces the
//!    run through `Rescheduling` and a second placement;
//! 2. **step-budget conservation** — the tenant ledger never leaks or
//!    double-refunds: `in_flight` equals the number of live runs, and
//!    `steps_admitted` equals the sum over runs of (full request while
//!    live or completed, steps actually executed once cancelled or
//!    failed);
//! 3. **bit-identical completion** — every run that completes reports
//!    the same CRC-32 history digest as an undisturbed reference
//!    execution of the same spec, regardless of how many crashes and
//!    reschedules the schedule inflicted on it.
//!
//! [`PortalMutation::SkipCancelRefund`] seeds the classic accounting
//! leak (cancel forgets to return the unexecuted steps) via
//! [`neesgrid_portal::PortalFaults`]; the mutation test proves invariant
//! 2 fires on it.

use std::sync::Arc;

use neesgrid_gridsim::{NetworkProfile, SimTime, VirtualNetwork};
use neesgrid_gsi::{CertificateAuthority, Credential, DistinguishedName};
use neesgrid_portal::{
    ExperimentSpec, Portal, PortalClient, PortalConfig, PortalFaults, Request, Response, RunState,
    TenantQuotas,
};

use crate::checker::Violation;

/// A seeded bug for mutation testing the portal checker itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortalMutation {
    /// Cancel keeps the unexecuted step budget (quota leak).
    SkipCancelRefund,
}

/// Checker configuration — every knob bounds the state space.
#[derive(Debug, Clone, Copy)]
pub struct PortalCheckConfig {
    /// Runs submitted (in order) during exploration.
    pub submissions: usize,
    /// Steps per submitted run.
    pub steps: usize,
    /// Steps a busy worker advances per tick.
    pub slice_steps: u64,
    /// Checkpoint cadence within a run (steps).
    pub checkpoint_every: u64,
    /// Worker slots in the pool.
    pub workers: usize,
    /// Worker crashes the adversary may inject per schedule.
    pub kill_budget: usize,
    /// Cancels the adversary may issue per schedule.
    pub cancel_budget: usize,
    /// Safety cap on explored schedules.
    pub max_schedules: u64,
    /// Optional seeded bug, for mutation testing.
    pub mutation: Option<PortalMutation>,
}

impl Default for PortalCheckConfig {
    fn default() -> Self {
        // Three runs racing for one worker, one crash and two cancels in
        // the adversary's pocket: ~11.6k schedules, exhaustive in under
        // ten seconds (release). `steps = 3` with `checkpoint_every = 2`
        // makes a crash after step 1 restart from scratch and a crash
        // after step 2 resume from the snapshot — both recovery paths in
        // every exploration. Raising any budget grows the space fast.
        PortalCheckConfig {
            submissions: 3,
            steps: 3,
            slice_steps: 1,
            checkpoint_every: 2,
            workers: 1,
            kill_budget: 1,
            cancel_budget: 2,
            max_schedules: 2_000_000,
            mutation: None,
        }
    }
}

/// Result of an exhaustive portal run (same shape as the NTCP checker's
/// report so both render through [`crate::report`]).
#[derive(Debug)]
pub struct PortalCheckReport {
    /// Complete schedules explored.
    pub schedules: u64,
    /// Longest schedule (events).
    pub deepest: usize,
    /// First violation found, if any (exploration stops there).
    pub violation: Option<Violation>,
    /// True if `max_schedules` stopped exploration before exhaustion.
    pub truncated: bool,
}

/// One nondeterministic event the adversarial scheduler can pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Submit the next run (in order — specs are identical, so
    /// permuting submissions only duplicates schedules).
    Submit,
    /// One scheduling round: place queued runs, advance busy workers.
    Tick,
    /// Crash the worker in this slot (its run re-enters the queue).
    Kill(usize),
    /// Cancel run `i` (by submission index) while it is still live.
    Cancel(usize),
}

impl Ev {
    fn describe(self) -> String {
        match self {
            Ev::Submit => "submit".into(),
            Ev::Tick => "tick".into(),
            Ev::Kill(w) => format!("kill worker {w}"),
            Ev::Cancel(i) => format!("cancel run {i}"),
        }
    }
}

/// What the driver knows about one submitted run after the last event.
#[derive(Debug, Clone)]
struct RunInfo {
    id: String,
    state: RunState,
    steps_completed: usize,
    /// Completion digest already fetched and verified (checked once —
    /// a completed run's history is immutable).
    digest_ok: bool,
}

impl RunInfo {
    fn live(&self) -> bool {
        matches!(
            self.state,
            RunState::Queued | RunState::Running { .. } | RunState::Rescheduling
        )
    }
}

/// Everything one schedule needs: a fresh deployment plus the driver's
/// mirror of run states (refreshed over the wire after every event).
struct PortalWorld {
    cfg: PortalCheckConfig,
    // Field order is drop order: the portal and client must go before
    // the network they are attached to.
    portal: Portal,
    client: PortalClient,
    _net: VirtualNetwork,
    tenant: DistinguishedName,
    runs: Vec<RunInfo>,
    kills_used: usize,
    cancels_used: usize,
    trace: Vec<String>,
    ref_digest: u32,
}

/// The experiment every schedule submits: smallest spec that still
/// exercises multi-slice execution and mid-run checkpoints.
fn spec(cfg: &PortalCheckConfig) -> ExperimentSpec {
    ExperimentSpec::basic(1, cfg.steps, 1493, cfg.checkpoint_every)
}

fn portal_config(cfg: &PortalCheckConfig) -> PortalConfig {
    PortalConfig {
        workers: cfg.workers,
        slice_steps: cfg.slice_steps,
        faults: PortalFaults {
            skip_cancel_refund: cfg.mutation == Some(PortalMutation::SkipCancelRefund),
        },
        ..PortalConfig::default()
    }
}

/// Build a deployment and log the tenant in.
fn deploy(
    cfg: &PortalCheckConfig,
    ca: &CertificateAuthority,
    cred: &Credential,
) -> (VirtualNetwork, Portal, PortalClient) {
    let net = VirtualNetwork::new(NetworkProfile::CampusWan.config(1493));
    let portal = Portal::serve(
        &net,
        "portal",
        ca.verifier(),
        Arc::new(neesgrid_checkpoint::MemoryCheckpointStore::new()),
        portal_config(cfg),
    )
    .expect("portal node is fresh");
    portal.set_quotas(
        cred.identity().clone(),
        TenantQuotas {
            max_concurrent: cfg.submissions.max(1),
            ..TenantQuotas::default()
        },
    );
    let client = PortalClient::connect(&net, "driver", "portal").expect("driver node is fresh");
    let reply = client
        .call_as(
            cred.identity(),
            Request::Login {
                token: cred.token(),
            },
        )
        .expect("login frame round-trips");
    assert!(
        matches!(reply, Response::Session { .. }),
        "checker tenant refused: {reply:?}"
    );
    (net, portal, client)
}

/// The digest an undisturbed execution of the checker's spec produces —
/// the reference for the bit-identical-completion invariant.
fn reference_digest(cfg: &PortalCheckConfig, ca: &CertificateAuthority, cred: &Credential) -> u32 {
    let (_net, portal, client) = deploy(cfg, ca, cred);
    let run = match client
        .call_as(cred.identity(), Request::Submit { spec: spec(cfg) })
        .expect("submit frame round-trips")
    {
        Response::Submitted { run, .. } => run,
        other => panic!("reference submission refused: {other:?}"),
    };
    portal.drain();
    match client
        .call_as(cred.identity(), Request::Fetch { run })
        .expect("fetch frame round-trips")
    {
        Response::History { digest, .. } => digest,
        other => panic!("reference history missing: {other:?}"),
    }
}

impl PortalWorld {
    fn new(
        cfg: &PortalCheckConfig,
        ca: &CertificateAuthority,
        cred: &Credential,
        ref_digest: u32,
    ) -> PortalWorld {
        let (net, portal, client) = deploy(cfg, ca, cred);
        PortalWorld {
            cfg: *cfg,
            portal,
            client,
            _net: net,
            tenant: cred.identity().clone(),
            runs: Vec::new(),
            kills_used: 0,
            cancels_used: 0,
            trace: Vec::new(),
            ref_digest,
        }
    }

    fn violation(&self, invariant: &str, detail: String) -> Violation {
        Violation {
            invariant: invariant.to_string(),
            detail,
            trace: self.trace.clone(),
        }
    }

    /// The deterministic enabled-event set for the current state.
    fn enabled(&self) -> Vec<Ev> {
        let mut evs = Vec::new();
        if self.runs.len() < self.cfg.submissions {
            evs.push(Ev::Submit);
        }
        if self.runs.iter().any(RunInfo::live) {
            evs.push(Ev::Tick);
        }
        if self.kills_used < self.cfg.kill_budget {
            for r in &self.runs {
                if let RunState::Running { worker } = r.state {
                    evs.push(Ev::Kill(worker));
                }
            }
        }
        if self.cancels_used < self.cfg.cancel_budget {
            for (i, r) in self.runs.iter().enumerate() {
                if r.live() {
                    evs.push(Ev::Cancel(i));
                }
            }
        }
        evs
    }

    /// Apply one event, refresh the state mirror, check every invariant.
    fn step(&mut self, ev: Ev) -> Result<(), Violation> {
        self.trace.push(ev.describe());
        match ev {
            Ev::Submit => {
                let reply = self
                    .client
                    .call_as(
                        &self.tenant,
                        Request::Submit {
                            spec: spec(&self.cfg),
                        },
                    )
                    .expect("submit frame round-trips");
                match reply {
                    Response::Submitted { run, .. } => self.runs.push(RunInfo {
                        id: run,
                        state: RunState::Queued,
                        steps_completed: 0,
                        digest_ok: false,
                    }),
                    other => {
                        return Err(self.violation(
                            "admission",
                            format!("in-quota submission refused: {other:?}"),
                        ))
                    }
                }
            }
            Ev::Tick => {
                self.portal.tick();
            }
            Ev::Kill(worker) => {
                self.kills_used += 1;
                let orphaned = self.portal.kill_worker(worker);
                if orphaned.is_none() {
                    return Err(self.violation(
                        "kill-target",
                        format!("worker {worker} was enabled as busy but had no run"),
                    ));
                }
            }
            Ev::Cancel(i) => {
                self.cancels_used += 1;
                let run = self.runs[i].id.clone();
                let reply = self
                    .client
                    .call_as(&self.tenant, Request::Cancel { run })
                    .expect("cancel frame round-trips");
                if !matches!(reply, Response::Ok) {
                    return Err(self.violation(
                        "cancel",
                        format!("cancel of live run {i} refused: {reply:?}"),
                    ));
                }
            }
        }
        // Only the runs this event could have changed need a wire
        // refresh: a tick moves every live run, a kill or cancel moves
        // one, a submit moves none (the entry was just pushed Queued).
        let stale: Vec<usize> = match ev {
            Ev::Submit => Vec::new(),
            Ev::Tick => (0..self.runs.len())
                .filter(|&i| self.runs[i].live())
                .collect(),
            Ev::Kill(worker) => (0..self.runs.len())
                .filter(|&i| self.runs[i].state == (RunState::Running { worker }))
                .collect(),
            Ev::Cancel(i) => vec![i],
        };
        self.refresh(&stale)?;
        self.check_invariants()
    }

    /// Re-read the named runs' states over the wire.
    fn refresh(&mut self, stale: &[usize]) -> Result<(), Violation> {
        for &i in stale {
            let run = self.runs[i].id.clone();
            let reply = self
                .client
                .call_as(&self.tenant, Request::Status { run })
                .expect("status frame round-trips");
            match reply {
                Response::Status { report } => {
                    self.runs[i].state = report.state;
                    self.runs[i].steps_completed = report.steps_completed;
                }
                other => {
                    return Err(self.violation(
                        "run-tracking",
                        format!("status of own run {i} refused: {other:?}"),
                    ))
                }
            }
        }
        Ok(())
    }

    fn check_invariants(&mut self) -> Result<(), Violation> {
        let stats = self.portal.stats();

        // 1. At-most-once: terminal runs and terminal counters agree,
        // and no run regresses out of a terminal state.
        let terminal = self.runs.iter().filter(|r| !r.live()).count() as u64;
        let counted = stats.completed + stats.cancelled + stats.failed;
        if counted != terminal {
            return Err(self.violation(
                "at-most-once",
                format!(
                    "{terminal} run(s) in a terminal state but counters say \
                     completed={} cancelled={} failed={} (a run was finalized \
                     zero or multiple times)",
                    stats.completed, stats.cancelled, stats.failed
                ),
            ));
        }
        for (i, r) in self.runs.iter().enumerate() {
            if r.steps_completed > self.cfg.steps {
                return Err(self.violation(
                    "at-most-once",
                    format!(
                        "run {i} reports {} steps completed of {} requested",
                        r.steps_completed, self.cfg.steps
                    ),
                ));
            }
        }

        // 2. Step-budget conservation.
        let usage = self.portal.usage(&self.tenant);
        let live = self.runs.iter().filter(|r| r.live()).count();
        if usage.in_flight != live {
            return Err(self.violation(
                "budget-conservation",
                format!(
                    "{live} live run(s) but tenant ledger says in_flight={}",
                    usage.in_flight
                ),
            ));
        }
        let expected_steps: u64 = self
            .runs
            .iter()
            .map(|r| match r.state {
                // Live and successfully-completed runs hold their full
                // request; cancelled/failed runs were refunded down to
                // what they actually executed.
                RunState::Queued
                | RunState::Running { .. }
                | RunState::Rescheduling
                | RunState::Completed => self.cfg.steps as u64,
                RunState::Cancelled | RunState::Failed { .. } => r.steps_completed as u64,
            })
            .sum();
        if usage.steps_admitted != expected_steps {
            return Err(self.violation(
                "budget-conservation",
                format!(
                    "tenant ledger says steps_admitted={} but run states add up \
                     to {expected_steps} (lost or double-counted refund)",
                    usage.steps_admitted
                ),
            ));
        }

        // 3. Bit-identical completion, whatever crashes happened. A
        // completed run's history is sealed, so each is fetched once.
        for i in 0..self.runs.len() {
            if self.runs[i].digest_ok || !matches!(self.runs[i].state, RunState::Completed) {
                continue;
            }
            let reply = self
                .client
                .call_as(
                    &self.tenant,
                    Request::Fetch {
                        run: self.runs[i].id.clone(),
                    },
                )
                .expect("fetch frame round-trips");
            match reply {
                Response::History { digest, .. } => {
                    if digest != self.ref_digest {
                        return Err(self.violation(
                            "bit-identical-completion",
                            format!(
                                "run {i} completed with digest {digest:#010x}, \
                                 reference is {:#010x}",
                                self.ref_digest
                            ),
                        ));
                    }
                    self.runs[i].digest_ok = true;
                }
                other => {
                    return Err(self.violation(
                        "bit-identical-completion",
                        format!("completed run {i} has no fetchable history: {other:?}"),
                    ))
                }
            }
        }
        Ok(())
    }
}

/// Depth safety bound: budgets cap real schedules far below this.
const MAX_DEPTH: usize = 64;

/// Run one schedule, replaying `choices` and extending it at fresh
/// decision points. Returns the depth reached.
fn run_one(
    cfg: &PortalCheckConfig,
    ca: &CertificateAuthority,
    cred: &Credential,
    ref_digest: u32,
    choices: &mut Vec<(usize, usize)>,
) -> Result<usize, Violation> {
    let mut world = PortalWorld::new(cfg, ca, cred, ref_digest);
    let mut depth = 0usize;
    loop {
        let evs = world.enabled();
        if evs.is_empty() {
            return Ok(depth);
        }
        if depth >= MAX_DEPTH {
            return Err(world.violation(
                "depth-bound",
                format!("schedule exceeded {MAX_DEPTH} events"),
            ));
        }
        let pick = if depth < choices.len() {
            if choices[depth].1 != evs.len() {
                return Err(world.violation(
                    "nondeterministic-model",
                    format!(
                        "replay divergence at depth {depth}: {} enabled events, expected {}",
                        evs.len(),
                        choices[depth].1
                    ),
                ));
            }
            choices[depth].0
        } else {
            choices.push((0, evs.len()));
            0
        };
        world.step(evs[pick])?;
        depth += 1;
    }
}

/// Advance `choices` to the next unexplored schedule; false = exhausted.
fn backtrack(choices: &mut Vec<(usize, usize)>) -> bool {
    while let Some(last) = choices.last_mut() {
        if last.0 + 1 < last.1 {
            last.0 += 1;
            return true;
        }
        choices.pop();
    }
    false
}

/// Exhaustively explore every portal schedule within the budgets.
pub fn check_portal(cfg: &PortalCheckConfig) -> PortalCheckReport {
    let ca = CertificateAuthority::nees(1493);
    let cred = Credential::issue(
        &ca,
        DistinguishedName::nees_user("REMOTE", "checker"),
        SimTime::ZERO,
        SimTime::from_secs(6 * 3600),
        1493,
    );
    // The reference digest comes from a clean config: the mutation under
    // test must not poison the oracle.
    let ref_digest = reference_digest(
        &PortalCheckConfig {
            mutation: None,
            ..*cfg
        },
        &ca,
        &cred,
    );

    let mut choices: Vec<(usize, usize)> = Vec::new();
    let mut report = PortalCheckReport {
        schedules: 0,
        deepest: 0,
        violation: None,
        truncated: false,
    };
    loop {
        match run_one(cfg, &ca, &cred, ref_digest, &mut choices) {
            Ok(depth) => {
                report.schedules += 1;
                report.deepest = report.deepest.max(depth);
            }
            Err(v) => {
                report.schedules += 1;
                report.violation = Some(v);
                return report;
            }
        }
        if report.schedules >= cfg.max_schedules {
            report.truncated = true;
            return report;
        }
        if !backtrack(&mut choices) {
            return report;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced space for test-speed (the tests run unoptimized):
    /// three runs, one kill, no cancels.
    fn quick_cfg() -> PortalCheckConfig {
        PortalCheckConfig {
            cancel_budget: 0,
            ..PortalCheckConfig::default()
        }
    }

    #[test]
    fn clean_portal_survives_small_exhaustive_run() {
        let report = check_portal(&quick_cfg());
        assert!(
            report.violation.is_none(),
            "unexpected violation: {:?}",
            report.violation
        );
        assert!(!report.truncated);
        assert!(
            report.schedules > 50,
            "suspiciously small space: {}",
            report.schedules
        );
    }

    #[test]
    fn seeded_refund_mutation_is_caught() {
        let cfg = PortalCheckConfig {
            submissions: 2,
            kill_budget: 0,
            cancel_budget: 1,
            mutation: Some(PortalMutation::SkipCancelRefund),
            ..PortalCheckConfig::default()
        };
        let report = check_portal(&cfg);
        let v = report
            .violation
            .expect("skipping the cancel refund must violate an invariant");
        assert_eq!(v.invariant, "budget-conservation", "got {v:?}");
        assert!(
            v.trace.iter().any(|t| t.starts_with("cancel")),
            "violation should follow a cancel: {:?}",
            v.trace
        );
    }
}
