//! Rendering lint and checker results as text or machine-readable JSON.

use serde_json::{json, Value};

use crate::checker::CheckReport;
use crate::portal_checker::PortalCheckReport;
use crate::rules::LintSummary;

/// Human-readable lint report: one `file:line: [rule] message` per
/// finding plus the violation-count summary line used for trend
/// tracking in `scripts/check.sh`.
pub fn lint_text(summary: &LintSummary) -> String {
    let mut out = String::new();
    for f in &summary.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    let per_rule: Vec<String> = summary
        .per_rule()
        .into_iter()
        .map(|(rule, n)| format!("{rule}={n}"))
        .collect();
    let breakdown = if per_rule.is_empty() {
        String::new()
    } else {
        format!(" ({})", per_rule.join(", "))
    };
    out.push_str(&format!(
        "analyzer: {} violation(s){}, {} suppressed, {} files scanned\n",
        summary.findings.len(),
        breakdown,
        summary.suppressed,
        summary.files_scanned
    ));
    out
}

/// Machine-readable lint report.
pub fn lint_json(summary: &LintSummary) -> Value {
    json!({
        "violations": summary.findings.len(),
        "suppressed": summary.suppressed,
        "files_scanned": summary.files_scanned,
        "findings": summary.findings.iter().map(|f| json!({
            "file": f.file,
            "line": f.line,
            "rule": f.rule,
            "message": f.message,
        })).collect::<Vec<Value>>(),
    })
}

/// Human-readable checker report.
pub fn check_text(report: &CheckReport, elapsed_ms: u128) -> String {
    let mut out = format!(
        "check-ntcp: {} schedule(s) explored (deepest {} events) in {} ms{}\n",
        report.schedules,
        report.deepest,
        elapsed_ms,
        if report.truncated {
            " [truncated by --max-schedules]"
        } else {
            ""
        }
    );
    match &report.violation {
        None => out.push_str(
            "check-ntcp: all schedules satisfy at-most-once, single-actuation, \
             dedup-consistency, execute/cancel exclusivity\n",
        ),
        Some(v) => {
            out.push_str(&format!(
                "check-ntcp: VIOLATION of {} — {}\n  schedule:\n",
                v.invariant, v.detail
            ));
            for (i, step) in v.trace.iter().enumerate() {
                out.push_str(&format!("    {:>2}. {step}\n", i + 1));
            }
        }
    }
    out
}

/// Machine-readable checker report.
pub fn check_json(report: &CheckReport, elapsed_ms: u128) -> Value {
    json!({
        "schedules": report.schedules,
        "deepest": report.deepest,
        "elapsed_ms": elapsed_ms as u64,
        "truncated": report.truncated,
        "violation": match &report.violation {
            None => Value::Null,
            Some(v) => json!({
                "invariant": v.invariant,
                "detail": v.detail,
                "trace": v.trace,
            }),
        },
    })
}

/// Human-readable portal-checker report.
pub fn portal_check_text(report: &PortalCheckReport, elapsed_ms: u128) -> String {
    let mut out = format!(
        "check-portal: {} schedule(s) explored (deepest {} events) in {} ms{}\n",
        report.schedules,
        report.deepest,
        elapsed_ms,
        if report.truncated {
            " [truncated by --max-schedules]"
        } else {
            ""
        }
    );
    match &report.violation {
        None => out.push_str(
            "check-portal: all schedules satisfy at-most-once, budget-conservation, \
             bit-identical-completion\n",
        ),
        Some(v) => {
            out.push_str(&format!(
                "check-portal: VIOLATION of {} — {}\n  schedule:\n",
                v.invariant, v.detail
            ));
            for (i, step) in v.trace.iter().enumerate() {
                out.push_str(&format!("    {:>2}. {step}\n", i + 1));
            }
        }
    }
    out
}

/// Machine-readable portal-checker report.
pub fn portal_check_json(report: &PortalCheckReport, elapsed_ms: u128) -> Value {
    json!({
        "schedules": report.schedules,
        "deepest": report.deepest,
        "elapsed_ms": elapsed_ms as u64,
        "truncated": report.truncated,
        "violation": match &report.violation {
            None => Value::Null,
            Some(v) => json!({
                "invariant": v.invariant,
                "detail": v.detail,
                "trace": v.trace,
            }),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    #[test]
    fn lint_text_has_findings_and_summary_line() {
        let summary = LintSummary {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                rule: "no-unwrap",
                message: "bad".into(),
            }],
            files_scanned: 3,
            suppressed: 2,
            suppressed_sites: Default::default(),
        };
        let text = lint_text(&summary);
        assert!(text.contains("crates/x/src/lib.rs:7: [no-unwrap] bad"));
        assert!(
            text.contains("analyzer: 1 violation(s) (no-unwrap=1), 2 suppressed, 3 files scanned")
        );
    }

    #[test]
    fn lint_json_shape() {
        let summary = LintSummary {
            findings: vec![],
            files_scanned: 5,
            suppressed: 1,
            suppressed_sites: Default::default(),
        };
        let v = lint_json(&summary);
        assert_eq!(v["violations"], json!(0));
        assert_eq!(v["files_scanned"], json!(5));
        assert_eq!(v["findings"], json!([]));
    }
}
