//! The portal facade.
//!
//! Ties the pieces into the experience §3 describes: log in with a GSI
//! credential, join the chat, watch the structure respond in the data
//! viewer (fed from an NSDS subscription), drive a camera, download
//! archived data through the https bridge — and, for the §3.4 scale
//! test, generate a MOST-sized synthetic crowd.

use bytes::Bytes;

use neesgrid_daq::nsds::{NsdsServer, NsdsSubscription};
use neesgrid_gridsim::SimTime;
use neesgrid_gsi::{CaVerifier, Credential, DistinguishedName};
use neesgrid_repo::{HttpsBridge, Nfms};

use crate::chat::ChatRoom;
use crate::notebook::Notebook;
use crate::session::{Role, Session, SessionManager};
use crate::telepresence::CameraServer;
use crate::viewer::DataViewer;

/// The collaboration portal for one experiment.
pub struct CollabPortal {
    /// Session management.
    pub sessions: SessionManager,
    /// The main chat room.
    pub chat: ChatRoom,
    /// The experiment notebook.
    pub notebook: Notebook,
    /// Camera fleet.
    pub cameras: CameraServer,
    bridge: HttpsBridge,
    downloads: u64,
}

impl CollabPortal {
    /// A portal trusting `root`, with the MOST camera fleet.
    pub fn new(root: CaVerifier) -> Self {
        CollabPortal {
            sessions: SessionManager::new(root),
            chat: ChatRoom::new(),
            notebook: Notebook::new(),
            cameras: CameraServer::most(),
            bridge: HttpsBridge::new(),
            downloads: 0,
        }
    }

    /// Log a participant in.
    pub fn login(&mut self, credential: &Credential, now: SimTime) -> Result<Session, String> {
        self.sessions
            .login(credential, now)
            .map_err(|e| e.to_string())
    }

    /// Post to chat (requires a live Participant+ session).
    pub fn post_chat(
        &mut self,
        user: &DistinguishedName,
        text: impl Into<String>,
        now: SimTime,
    ) -> Result<u64, String> {
        let session = self
            .sessions
            .session(user, now)
            .ok_or_else(|| format!("{user} has no live session"))?;
        if session.role == Role::Observer {
            return Err(format!("{user} is observer-only"));
        }
        Ok(self.chat.post(user.clone(), text, now))
    }

    /// Open a data viewer fed from an NSDS subscription over `pattern`.
    /// Returns the viewer and the subscription to pump.
    pub fn open_viewer(
        &self,
        nsds: &NsdsServer,
        pattern: &str,
        buffer: usize,
    ) -> (DataViewer, NsdsSubscription) {
        (DataViewer::new(), nsds.subscribe(pattern, buffer))
    }

    /// Pump pending NSDS samples into a viewer (called on the UI cadence).
    pub fn pump_viewer(viewer: &mut DataViewer, subscription: &NsdsSubscription) -> usize {
        let samples = subscription.drain();
        let n = samples.len();
        for s in samples {
            viewer.ingest(&s.channel, s.t, s.value);
        }
        n
    }

    /// Download an archived file through the https bridge (requires a
    /// live session of any role).
    pub fn download(
        &mut self,
        user: &DistinguishedName,
        nfms: &Nfms,
        logical: &str,
        now: SimTime,
    ) -> Result<Bytes, String> {
        if self.sessions.session(user, now).is_none() {
            return Err(format!("{user} has no live session"));
        }
        let bytes = self.bridge.get(nfms, logical)?;
        self.downloads += 1;
        Ok(bytes)
    }

    /// Files downloaded through the portal.
    pub fn downloads(&self) -> u64 {
        self.downloads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neesgrid_daq::nsds::NsdsSample;
    use neesgrid_gsi::CertificateAuthority;
    use neesgrid_repo::VirtualStore;

    fn setup() -> (CertificateAuthority, CollabPortal) {
        let ca = CertificateAuthority::nees(33);
        let portal = CollabPortal::new(ca.verifier());
        (ca, portal)
    }

    fn participant(ca: &CertificateAuthority, name: &str, seed: u64) -> Credential {
        Credential::issue(
            ca,
            DistinguishedName::nees_user("REMOTE", name),
            SimTime::ZERO,
            SimTime::from_secs(6 * 3600),
            seed,
        )
    }

    #[test]
    fn observer_cannot_chat_participant_can() {
        let (ca, mut portal) = setup();
        let obs = participant(&ca, "observer", 1);
        let part = participant(&ca, "participant", 2);
        portal
            .sessions
            .assign_role(part.identity().clone(), Role::Participant);
        portal.login(&obs, SimTime::from_secs(1)).unwrap();
        portal.login(&part, SimTime::from_secs(1)).unwrap();
        assert!(portal
            .post_chat(obs.identity(), "hi", SimTime::from_secs(2))
            .is_err());
        portal
            .post_chat(part.identity(), "step 100 done", SimTime::from_secs(2))
            .unwrap();
        assert_eq!(portal.chat.len(), 1);
    }

    #[test]
    fn viewer_fed_from_nsds() {
        let (_, portal) = setup();
        let nsds = NsdsServer::new();
        let (mut viewer, sub) = portal.open_viewer(&nsds, "resp/*", 256);
        for i in 0..50u64 {
            nsds.publish(NsdsSample {
                channel: "resp/dof-0".into(),
                t: SimTime::from_millis(i * 10),
                value: i as f64,
            });
        }
        let n = CollabPortal::pump_viewer(&mut viewer, &sub);
        assert_eq!(n, 50);
        viewer.seek(viewer.live_edge);
        assert_eq!(viewer.visible_series("resp/dof-0").len(), 50);
    }

    #[test]
    fn download_requires_session() {
        let (ca, mut portal) = setup();
        let mut nfms = Nfms::new(VirtualStore::new());
        nfms.upload("/most/d.csv", Bytes::from_static(b"x,y"), SimTime::ZERO)
            .unwrap();
        let user = participant(&ca, "dl", 3);
        // No session yet.
        assert!(portal
            .download(user.identity(), &nfms, "/most/d.csv", SimTime::from_secs(1))
            .is_err());
        portal.login(&user, SimTime::from_secs(1)).unwrap();
        let bytes = portal
            .download(user.identity(), &nfms, "/most/d.csv", SimTime::from_secs(2))
            .unwrap();
        assert_eq!(&bytes[..], b"x,y");
        assert_eq!(portal.downloads(), 1);
    }

    #[test]
    fn most_scale_crowd() {
        // §3.4: "over 130 remote participants logged on to observe MOST."
        let (ca, mut portal) = setup();
        let nsds = NsdsServer::new();
        let mut viewers = Vec::new();
        for i in 0..132 {
            let cred = participant(&ca, &format!("crowd-{i}"), 1000 + i);
            portal.login(&cred, SimTime::from_secs(1)).unwrap();
            viewers.push(portal.open_viewer(&nsds, "resp/*", 128));
        }
        // Stream a burst of response data to the whole crowd.
        for i in 0..100u64 {
            nsds.publish(NsdsSample {
                channel: "resp/dof-0".into(),
                t: SimTime::from_millis(i * 10),
                value: (i as f64 * 0.01).sin(),
            });
        }
        for (viewer, sub) in viewers.iter_mut() {
            CollabPortal::pump_viewer(viewer, sub);
            assert_eq!(sub.dropped(), 0);
        }
        assert!(portal.sessions.peak_concurrent() >= 130);
    }
}
