//! The portal facade — a thin client of the portal wire service.
//!
//! CHEF no longer owns sessions, chat, or stream fan-out: every one of
//! those flows through the `neesgrid-portal` wire API as length-prefixed
//! JSON frames. Logging in presents the credential's serializable token;
//! chat and the notebook are service-side collaboration boards; the data
//! viewer is fed by polling a facility observer held open on the
//! service. Only strictly client-local equipment stays here: the camera
//! fleet (control gated on a live wire session) and the https download
//! bridge.

use std::sync::Arc;

use bytes::Bytes;

use neesgrid_gridsim::{NetworkError, NodeId, SimClock, SimTime, VirtualNetwork};
use neesgrid_gsi::{Credential, DistinguishedName};
use neesgrid_portal::{BoardEntry, PortalClient, Request, Response, Role, Session};
use neesgrid_repo::{HttpsBridge, Nfms};

use crate::telepresence::CameraServer;
use crate::viewer::DataViewer;

/// The collaboration portal client for one experiment.
pub struct CollabPortal {
    client: PortalClient,
    clock: Arc<SimClock>,
    /// Camera fleet (control is gated on a live wire session).
    pub cameras: CameraServer,
    bridge: HttpsBridge,
    downloads: u64,
}

/// A facility-stream observer held open on the portal service. Pumping
/// it drains samples over the wire into a [`DataViewer`].
pub struct RemoteFeed {
    client: PortalClient,
    owner: DistinguishedName,
    observer: u64,
    dropped: u64,
}

impl RemoteFeed {
    /// Drain everything currently buffered on the service into `viewer`.
    pub fn pump(&mut self, viewer: &mut DataViewer) -> Result<usize, String> {
        let mut total = 0;
        loop {
            let reply = self
                .client
                .call_as(
                    &self.owner,
                    Request::Poll {
                        observer: self.observer,
                        max: 1024,
                    },
                )
                .map_err(|e| e.to_string())?;
            match reply {
                Response::Samples {
                    samples, dropped, ..
                } => {
                    self.dropped = dropped;
                    if samples.is_empty() {
                        return Ok(total);
                    }
                    total += samples.len();
                    for s in &samples {
                        viewer.ingest(&s.channel, s.t, s.value);
                    }
                }
                Response::Rejected { rejection } => return Err(rejection.to_string()),
                Response::Error { message } => return Err(message),
                other => return Err(format!("unexpected Poll reply: {other:?}")),
            }
        }
    }

    /// Samples this observer has lost to ring overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Release the observer slot on the service.
    pub fn close(self) -> Result<(), String> {
        match self
            .client
            .call_as(
                &self.owner,
                Request::Unobserve {
                    observer: self.observer,
                },
            )
            .map_err(|e| e.to_string())?
        {
            Response::Ok => Ok(()),
            Response::Rejected { rejection } => Err(rejection.to_string()),
            other => Err(format!("unexpected Unobserve reply: {other:?}")),
        }
    }
}

impl CollabPortal {
    /// Connect a CHEF client node to a served portal on the same control
    /// network.
    pub fn connect(
        net: &VirtualNetwork,
        node: &str,
        portal: impl Into<NodeId>,
    ) -> Result<CollabPortal, NetworkError> {
        let client = PortalClient::connect(net, node, portal)?;
        Ok(CollabPortal {
            clock: Arc::clone(client.clock()),
            client,
            cameras: CameraServer::most(),
            bridge: HttpsBridge::new(),
            downloads: 0,
        })
    }

    /// The underlying wire client (for operations beyond the facade).
    pub fn client(&self) -> &PortalClient {
        &self.client
    }

    /// Issue a request as `user`, flattening rejections into strings.
    fn call(&self, user: &DistinguishedName, request: Request) -> Result<Response, String> {
        match self
            .client
            .call_as(user, request)
            .map_err(|e| e.to_string())?
        {
            Response::Rejected { rejection } => Err(rejection.to_string()),
            Response::Error { message } => Err(message),
            other => Ok(other),
        }
    }

    /// Log a participant in over the wire.
    pub fn login(&mut self, credential: &Credential, now: SimTime) -> Result<Session, String> {
        self.clock.advance_to(now);
        let user = credential.identity().clone();
        match self.call(
            &user,
            Request::Login {
                token: credential.token(),
            },
        )? {
            Response::Session { role, expires_at } => Ok(Session {
                user,
                role,
                opened_at: now,
                expires_at,
            }),
            other => Err(format!("unexpected Login reply: {other:?}")),
        }
    }

    /// The caller's live role, per the service.
    pub fn whoami(&self, user: &DistinguishedName, now: SimTime) -> Result<Role, String> {
        self.clock.advance_to(now);
        match self.call(user, Request::Whoami)? {
            Response::Session { role, .. } => Ok(role),
            other => Err(format!("unexpected Whoami reply: {other:?}")),
        }
    }

    /// Post to the chat board (requires a Participant+ session).
    pub fn post_chat(
        &mut self,
        user: &DistinguishedName,
        text: impl Into<String>,
        now: SimTime,
    ) -> Result<u64, String> {
        self.post_board(user, "chat", text, now)
    }

    /// Post to the electronic notebook (requires a Participant+ session).
    pub fn post_note(
        &mut self,
        user: &DistinguishedName,
        text: impl Into<String>,
        now: SimTime,
    ) -> Result<u64, String> {
        self.post_board(user, "notebook", text, now)
    }

    fn post_board(
        &mut self,
        user: &DistinguishedName,
        board: &str,
        text: impl Into<String>,
        now: SimTime,
    ) -> Result<u64, String> {
        self.clock.advance_to(now);
        match self.call(
            user,
            Request::Post {
                board: board.to_string(),
                text: text.into(),
            },
        )? {
            Response::Posted { seq } => Ok(seq),
            other => Err(format!("unexpected Post reply: {other:?}")),
        }
    }

    /// Read a collaboration board (any live session).
    pub fn board(&self, user: &DistinguishedName, board: &str) -> Result<Vec<BoardEntry>, String> {
        match self.call(
            user,
            Request::Board {
                board: board.to_string(),
            },
        )? {
            Response::BoardEntries { entries } => Ok(entries),
            other => Err(format!("unexpected Board reply: {other:?}")),
        }
    }

    /// Open a data viewer fed from a facility observer over `pattern`.
    /// Returns the viewer and the remote feed to pump.
    pub fn open_viewer(
        &self,
        user: &DistinguishedName,
        pattern: &str,
        buffer: usize,
    ) -> Result<(DataViewer, RemoteFeed), String> {
        match self.call(
            user,
            Request::ObserveFacility {
                pattern: pattern.to_string(),
                buffer,
            },
        )? {
            Response::Observing { observer } => Ok((
                DataViewer::new(),
                RemoteFeed {
                    client: self.client.clone(),
                    owner: user.clone(),
                    observer,
                    dropped: 0,
                },
            )),
            other => Err(format!("unexpected ObserveFacility reply: {other:?}")),
        }
    }

    /// Pump pending samples from a remote feed into a viewer (called on
    /// the UI cadence).
    pub fn pump_viewer(viewer: &mut DataViewer, feed: &mut RemoteFeed) -> usize {
        feed.pump(viewer).unwrap_or(0)
    }

    /// Take exclusive control of a camera (requires a Participant+
    /// session on the service).
    pub fn acquire_camera(
        &mut self,
        user: &DistinguishedName,
        camera: &str,
        now: SimTime,
    ) -> Result<(), String> {
        let role = self.whoami(user, now)?;
        if role < Role::Participant {
            return Err(format!("{user} is observer-only"));
        }
        self.cameras
            .camera_mut(camera)
            .ok_or_else(|| format!("no camera '{camera}'"))?
            .acquire(user.clone())
    }

    /// Download an archived file through the https bridge (requires a
    /// live session of any role).
    pub fn download(
        &mut self,
        user: &DistinguishedName,
        nfms: &Nfms,
        logical: &str,
        now: SimTime,
    ) -> Result<Bytes, String> {
        self.whoami(user, now)
            .map_err(|e| format!("{user} has no live session: {e}"))?;
        let bytes = self.bridge.get(nfms, logical)?;
        self.downloads += 1;
        Ok(bytes)
    }

    /// Files downloaded through the portal.
    pub fn downloads(&self) -> u64 {
        self.downloads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neesgrid_checkpoint::MemoryCheckpointStore;
    use neesgrid_daq::nsds::{NsdsSample, NsdsServer};
    use neesgrid_gridsim::NetworkProfile;
    use neesgrid_gsi::CertificateAuthority;
    use neesgrid_portal::{Portal, PortalConfig};
    use neesgrid_repo::VirtualStore;

    fn setup() -> (VirtualNetwork, CertificateAuthority, Portal, CollabPortal) {
        let net = VirtualNetwork::new(NetworkProfile::CampusWan.config(33));
        let ca = CertificateAuthority::nees(33);
        let service = Portal::serve(
            &net,
            "portal",
            ca.verifier(),
            Arc::new(MemoryCheckpointStore::new()),
            PortalConfig {
                default_role: Role::Observer,
                ..PortalConfig::default()
            },
        )
        .expect("portal node is fresh");
        let portal = CollabPortal::connect(&net, "chef", "portal").expect("client node is fresh");
        (net, ca, service, portal)
    }

    fn participant(ca: &CertificateAuthority, name: &str, seed: u64) -> Credential {
        Credential::issue(
            ca,
            DistinguishedName::nees_user("REMOTE", name),
            SimTime::ZERO,
            SimTime::from_secs(6 * 3600),
            seed,
        )
    }

    #[test]
    fn observer_cannot_chat_participant_can() {
        let (_net, ca, service, mut portal) = setup();
        let obs = participant(&ca, "observer", 1);
        let part = participant(&ca, "participant", 2);
        service.assign_role(part.identity().clone(), Role::Participant);
        portal.login(&obs, SimTime::from_secs(1)).unwrap();
        portal.login(&part, SimTime::from_secs(1)).unwrap();
        assert!(portal
            .post_chat(obs.identity(), "hi", SimTime::from_secs(2))
            .is_err());
        portal
            .post_chat(part.identity(), "step 100 done", SimTime::from_secs(2))
            .unwrap();
        assert_eq!(portal.board(part.identity(), "chat").unwrap().len(), 1);
        // The notebook is a separate board.
        portal
            .post_note(part.identity(), "observations", SimTime::from_secs(3))
            .unwrap();
        assert_eq!(portal.board(part.identity(), "notebook").unwrap().len(), 1);
    }

    #[test]
    fn viewer_fed_from_facility_hub_over_the_wire() {
        let (_net, ca, service, mut portal) = setup();
        let hub = Arc::new(NsdsServer::new());
        service.attach_facility_hub(Arc::clone(&hub));
        let user = participant(&ca, "viewer", 4);
        portal.login(&user, SimTime::from_secs(1)).unwrap();
        let (mut viewer, mut feed) = portal.open_viewer(user.identity(), "resp/*", 256).unwrap();
        for i in 0..50u64 {
            hub.publish(NsdsSample {
                channel: "resp/dof-0".into(),
                t: SimTime::from_millis(i * 10),
                value: i as f64,
            });
        }
        let n = CollabPortal::pump_viewer(&mut viewer, &mut feed);
        assert_eq!(n, 50);
        assert_eq!(feed.dropped(), 0);
        viewer.seek(viewer.live_edge);
        assert_eq!(viewer.visible_series("resp/dof-0").len(), 50);
        feed.close().unwrap();
    }

    #[test]
    fn download_requires_session() {
        let (_net, ca, _service, mut portal) = setup();
        let mut nfms = Nfms::new(VirtualStore::new());
        nfms.upload("/most/d.csv", Bytes::from_static(b"x,y"), SimTime::ZERO)
            .unwrap();
        let user = participant(&ca, "dl", 3);
        // No session yet.
        assert!(portal
            .download(user.identity(), &nfms, "/most/d.csv", SimTime::from_secs(1))
            .is_err());
        portal.login(&user, SimTime::from_secs(1)).unwrap();
        let bytes = portal
            .download(user.identity(), &nfms, "/most/d.csv", SimTime::from_secs(2))
            .unwrap();
        assert_eq!(&bytes[..], b"x,y");
        assert_eq!(portal.downloads(), 1);
    }

    #[test]
    fn camera_control_gated_by_wire_session_role() {
        let (_net, ca, service, mut portal) = setup();
        let obs = participant(&ca, "watcher", 5);
        let driver = participant(&ca, "driver", 6);
        service.assign_role(driver.identity().clone(), Role::Participant);
        portal.login(&obs, SimTime::from_secs(1)).unwrap();
        portal.login(&driver, SimTime::from_secs(1)).unwrap();
        let camera = portal.cameras.names()[0].to_string();
        assert!(portal
            .acquire_camera(obs.identity(), &camera, SimTime::from_secs(2))
            .is_err());
        portal
            .acquire_camera(driver.identity(), &camera, SimTime::from_secs(2))
            .unwrap();
    }

    #[test]
    fn most_scale_crowd() {
        // §3.4: "over 130 remote participants logged on to observe MOST."
        let (_net, ca, service, mut portal) = setup();
        let hub = Arc::new(NsdsServer::new());
        service.attach_facility_hub(Arc::clone(&hub));
        let mut viewers = Vec::new();
        for i in 0..132 {
            let cred = participant(&ca, &format!("crowd-{i}"), 1000 + i);
            portal.login(&cred, SimTime::from_secs(1)).unwrap();
            viewers.push(
                portal
                    .open_viewer(cred.identity(), "resp/*", 128)
                    .expect("observer slot within quota"),
            );
        }
        // Stream a burst of response data to the whole crowd.
        for i in 0..100u64 {
            hub.publish(NsdsSample {
                channel: "resp/dof-0".into(),
                t: SimTime::from_millis(i * 10),
                value: (i as f64 * 0.01).sin(),
            });
        }
        for (viewer, feed) in viewers.iter_mut() {
            CollabPortal::pump_viewer(viewer, feed);
            assert_eq!(feed.dropped(), 0);
        }
        assert!(service.peak_sessions() >= 130);
        assert_eq!(service.stats().observers, 132);
    }
}
