//! Chat and message board.
//!
//! §3.4: "CHEF's chat feature was crucial to user interaction. It allowed
//! developers to communicate with one another, while keeping other
//! participants informed of status and progress."

use serde::{Deserialize, Serialize};

use neesgrid_gridsim::SimTime;
use neesgrid_gsi::DistinguishedName;

/// One chat line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatMessage {
    /// Monotone message id within the room.
    pub id: u64,
    /// When it was posted.
    pub at: SimTime,
    /// Who posted it.
    pub from: DistinguishedName,
    /// The text.
    pub text: String,
}

/// A chat room (or message board — same mechanics, slower cadence).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChatRoom {
    messages: Vec<ChatMessage>,
}

impl ChatRoom {
    /// An empty room.
    pub fn new() -> Self {
        Self::default()
    }

    /// Post a message; returns its id.
    pub fn post(&mut self, from: DistinguishedName, text: impl Into<String>, at: SimTime) -> u64 {
        let id = self.messages.len() as u64;
        self.messages.push(ChatMessage {
            id,
            at,
            from,
            text: text.into(),
        });
        id
    }

    /// All messages with id ≥ `since` (a client's catch-up cursor).
    pub fn since(&self, since: u64) -> &[ChatMessage] {
        let start = (since as usize).min(self.messages.len());
        &self.messages[start..]
    }

    /// Full history.
    pub fn history(&self) -> &[ChatMessage] {
        &self.messages
    }

    /// Message count.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the room is silent.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(n: &str) -> DistinguishedName {
        DistinguishedName::nees_user("REMOTE", n)
    }

    #[test]
    fn post_and_catch_up() {
        let mut room = ChatRoom::new();
        room.post(dn("a"), "dry run starting", SimTime::from_secs(1));
        room.post(dn("b"), "seeing data at step 10", SimTime::from_secs(2));
        let id = room.post(dn("a"), "UIUC column at 3mm", SimTime::from_secs(3));
        assert_eq!(id, 2);
        assert_eq!(room.len(), 3);
        let new = room.since(1);
        assert_eq!(new.len(), 2);
        assert_eq!(new[0].text, "seeing data at step 10");
        // Cursor beyond the end is empty, not a panic.
        assert!(room.since(99).is_empty());
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut room = ChatRoom::new();
        for i in 0..50 {
            let id = room.post(dn("x"), format!("m{i}"), SimTime::from_secs(i));
            assert_eq!(id, i);
        }
        assert!(room.history().windows(2).all(|w| w[0].id + 1 == w[1].id));
    }
}
