//! Portal login sessions.
//!
//! "The CHEF interface used the various NEESgrid protocols to authenticate
//! to NEESgrid resources" — logging in means presenting a GSI credential;
//! the portal validates it against the community trust root and opens a
//! role-scoped session bounded by the credential's lifetime.

use std::collections::HashMap;

use neesgrid_gridsim::SimTime;
use neesgrid_gsi::{CaVerifier, Credential, CredentialError, DistinguishedName};

/// What a logged-in user may do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Watch streams, read chat/notebook.
    Observer,
    /// Observer + post to chat/notebook, drive cameras.
    Participant,
    /// Participant + experiment control surfaces.
    Operator,
}

/// An open portal session.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// The authenticated identity.
    pub user: DistinguishedName,
    /// Granted role.
    pub role: Role,
    /// Login time.
    pub opened_at: SimTime,
    /// Expiry (credential-bounded).
    pub expires_at: SimTime,
}

impl Session {
    /// Whether the session is live at `now`.
    pub fn valid_at(&self, now: SimTime) -> bool {
        now >= self.opened_at && now < self.expires_at
    }
}

/// Login failures.
#[derive(Debug, Clone, PartialEq)]
pub enum LoginError {
    /// Credential failed validation.
    BadCredential(CredentialError),
    /// Already logged in.
    AlreadyLoggedIn,
}

impl std::fmt::Display for LoginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoginError::BadCredential(e) => write!(f, "credential rejected: {e}"),
            LoginError::AlreadyLoggedIn => write!(f, "already logged in"),
        }
    }
}

impl std::error::Error for LoginError {}

/// Manages the portal's live sessions.
pub struct SessionManager {
    trust_root: CaVerifier,
    sessions: HashMap<DistinguishedName, Session>,
    /// Role assignments (default: Observer).
    roles: HashMap<DistinguishedName, Role>,
    peak_concurrent: usize,
}

impl SessionManager {
    /// A manager trusting the given root.
    pub fn new(trust_root: CaVerifier) -> Self {
        SessionManager {
            trust_root,
            sessions: HashMap::new(),
            roles: HashMap::new(),
            peak_concurrent: 0,
        }
    }

    /// Pre-assign a role to an identity (defaults to Observer otherwise).
    pub fn assign_role(&mut self, user: DistinguishedName, role: Role) {
        self.roles.insert(user, role);
    }

    /// Log in with a credential; returns the opened session.
    pub fn login(&mut self, credential: &Credential, now: SimTime) -> Result<Session, LoginError> {
        credential
            .validate(&self.trust_root, now)
            .map_err(LoginError::BadCredential)?;
        let user = credential.identity().clone();
        if let Some(existing) = self.sessions.get(&user) {
            if existing.valid_at(now) {
                return Err(LoginError::AlreadyLoggedIn);
            }
        }
        let role = self.roles.get(&user).copied().unwrap_or(Role::Observer);
        let session = Session {
            user: user.clone(),
            role,
            opened_at: now,
            expires_at: credential.expires_at(),
        };
        self.sessions.insert(user, session.clone());
        self.peak_concurrent = self.peak_concurrent.max(self.active_count(now));
        Ok(session)
    }

    /// Log out.
    pub fn logout(&mut self, user: &DistinguishedName) -> bool {
        self.sessions.remove(user).is_some()
    }

    /// The live session for a user, if any.
    pub fn session(&self, user: &DistinguishedName, now: SimTime) -> Option<&Session> {
        self.sessions.get(user).filter(|s| s.valid_at(now))
    }

    /// Number of live sessions at `now`.
    pub fn active_count(&self, now: SimTime) -> usize {
        self.sessions.values().filter(|s| s.valid_at(now)).count()
    }

    /// Highest concurrent session count seen (the "over 130 remote
    /// participants" figure).
    pub fn peak_concurrent(&self) -> usize {
        self.peak_concurrent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neesgrid_gsi::CertificateAuthority;

    fn setup() -> (CertificateAuthority, SessionManager) {
        let ca = CertificateAuthority::nees(21);
        let mgr = SessionManager::new(ca.verifier());
        (ca, mgr)
    }

    fn cred(ca: &CertificateAuthority, name: &str, seed: u64) -> Credential {
        Credential::issue(
            ca,
            DistinguishedName::nees_user("REMOTE", name),
            SimTime::ZERO,
            SimTime::from_secs(3600),
            seed,
        )
    }

    #[test]
    fn login_opens_role_scoped_session() {
        let (ca, mut mgr) = setup();
        let c = cred(&ca, "viewer", 1);
        let s = mgr.login(&c, SimTime::from_secs(1)).unwrap();
        assert_eq!(s.role, Role::Observer);
        assert_eq!(s.expires_at, SimTime::from_secs(3600));
        assert!(mgr.session(c.identity(), SimTime::from_secs(2)).is_some());
    }

    #[test]
    fn assigned_roles_stick() {
        let (ca, mut mgr) = setup();
        let c = cred(&ca, "spencer", 2);
        mgr.assign_role(c.identity().clone(), Role::Operator);
        let s = mgr.login(&c, SimTime::from_secs(1)).unwrap();
        assert_eq!(s.role, Role::Operator);
    }

    #[test]
    fn foreign_credential_rejected() {
        let (_, mut mgr) = setup();
        let other_ca = CertificateAuthority::nees(99);
        let c = cred(&other_ca, "eve", 3);
        assert!(matches!(
            mgr.login(&c, SimTime::from_secs(1)).unwrap_err(),
            LoginError::BadCredential(_)
        ));
    }

    #[test]
    fn double_login_refused_until_expiry_or_logout() {
        let (ca, mut mgr) = setup();
        let c = cred(&ca, "viewer", 4);
        mgr.login(&c, SimTime::from_secs(1)).unwrap();
        assert_eq!(
            mgr.login(&c, SimTime::from_secs(2)).unwrap_err(),
            LoginError::AlreadyLoggedIn
        );
        assert!(mgr.logout(c.identity()));
        mgr.login(&c, SimTime::from_secs(3)).unwrap();
    }

    #[test]
    fn sessions_expire_with_credentials() {
        let (ca, mut mgr) = setup();
        let c = cred(&ca, "viewer", 5);
        mgr.login(&c, SimTime::from_secs(1)).unwrap();
        assert!(mgr
            .session(c.identity(), SimTime::from_secs(3599))
            .is_some());
        assert!(mgr
            .session(c.identity(), SimTime::from_secs(3600))
            .is_none());
        assert_eq!(mgr.active_count(SimTime::from_secs(3600)), 0);
    }

    #[test]
    fn peak_concurrent_tracks_the_most_participants() {
        let (ca, mut mgr) = setup();
        for i in 0..135 {
            let c = cred(&ca, &format!("user-{i}"), 100 + i);
            mgr.login(&c, SimTime::from_secs(1)).unwrap();
        }
        assert!(mgr.peak_concurrent() >= 130, "MOST-scale participation");
    }
}
