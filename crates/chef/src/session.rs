//! Portal login sessions — served by `neesgrid-portal`.
//!
//! "The CHEF interface used the various NEESgrid protocols to
//! authenticate to NEESgrid resources" — CHEF now does exactly that: it
//! logs in over the portal wire API, and the session state machine
//! (credential validation, roles, expiry, peak-concurrency tracking)
//! lives server-side in [`neesgrid_portal::tenant::TenantDirectory`].
//! These re-exports keep chef's public names stable for code that only
//! consumes the types.

pub use neesgrid_portal::tenant::{LoginError, Role, Session};
