//! Telepresence cameras.
//!
//! "During MOST, real-time video from both physical testing sites was also
//! available, with at least one accessible camera at each site" (§3), and
//! "the sense of participation of the remote users was enhanced by the
//! three telepresence cameras, which could be operated remotely" (§3.4).
//! A [`Camera`] models the pan/tilt/zoom head with axis limits and an
//! exclusive-control lease so two operators cannot fight over the head;
//! frames are synthetic but carry the camera state that produced them.

use serde::{Deserialize, Serialize};

use neesgrid_gridsim::SimTime;
use neesgrid_gsi::DistinguishedName;

/// One synthetic video frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CameraFrame {
    /// Frame sequence number.
    pub seq: u64,
    /// Capture time.
    pub at: SimTime,
    /// Pan at capture, degrees.
    pub pan_deg: f64,
    /// Tilt at capture, degrees.
    pub tilt_deg: f64,
    /// Zoom at capture, 1.0 = wide.
    pub zoom: f64,
}

/// A pan/tilt/zoom camera.
pub struct Camera {
    /// Camera name, e.g. `"uiuc-cam-1"`.
    pub name: String,
    pan_deg: f64,
    tilt_deg: f64,
    zoom: f64,
    controller: Option<DistinguishedName>,
    frame_seq: u64,
}

/// Pan limits, degrees.
const PAN_RANGE: (f64, f64) = (-170.0, 170.0);
/// Tilt limits, degrees.
const TILT_RANGE: (f64, f64) = (-30.0, 90.0);
/// Zoom limits.
const ZOOM_RANGE: (f64, f64) = (1.0, 12.0);

impl Camera {
    /// A camera at its home position.
    pub fn new(name: impl Into<String>) -> Self {
        Camera {
            name: name.into(),
            pan_deg: 0.0,
            tilt_deg: 0.0,
            zoom: 1.0,
            controller: None,
            frame_seq: 0,
        }
    }

    /// Who currently holds the control lease.
    pub fn controller(&self) -> Option<&DistinguishedName> {
        self.controller.as_ref()
    }

    /// Acquire exclusive control; fails if someone else holds it.
    pub fn acquire(&mut self, who: DistinguishedName) -> Result<(), String> {
        match &self.controller {
            Some(holder) if *holder != who => {
                Err(format!("{} is controlled by {holder}", self.name))
            }
            _ => {
                self.controller = Some(who);
                Ok(())
            }
        }
    }

    /// Release control (idempotent; only the holder can release).
    pub fn release(&mut self, who: &DistinguishedName) {
        if self.controller.as_ref() == Some(who) {
            self.controller = None;
        }
    }

    /// Command pan/tilt/zoom (requires the control lease). Values clamp
    /// to the head's mechanical limits.
    pub fn command(
        &mut self,
        who: &DistinguishedName,
        pan_deg: f64,
        tilt_deg: f64,
        zoom: f64,
    ) -> Result<(), String> {
        if self.controller.as_ref() != Some(who) {
            return Err(format!("{who} does not control {}", self.name));
        }
        self.pan_deg = pan_deg.clamp(PAN_RANGE.0, PAN_RANGE.1);
        self.tilt_deg = tilt_deg.clamp(TILT_RANGE.0, TILT_RANGE.1);
        self.zoom = zoom.clamp(ZOOM_RANGE.0, ZOOM_RANGE.1);
        Ok(())
    }

    /// Capture a frame (any viewer may do this; watching needs no lease).
    pub fn capture(&mut self, at: SimTime) -> CameraFrame {
        let seq = self.frame_seq;
        self.frame_seq += 1;
        CameraFrame {
            seq,
            at,
            pan_deg: self.pan_deg,
            tilt_deg: self.tilt_deg,
            zoom: self.zoom,
        }
    }
}

/// The fleet of cameras at all sites.
pub struct CameraServer {
    cameras: Vec<Camera>,
}

impl CameraServer {
    /// MOST's deployment: three remotely operable cameras.
    pub fn most() -> Self {
        CameraServer {
            cameras: vec![
                Camera::new("uiuc-cam-1"),
                Camera::new("uiuc-cam-2"),
                Camera::new("cu-cam-1"),
            ],
        }
    }

    /// An empty server.
    pub fn new() -> Self {
        CameraServer {
            cameras: Vec::new(),
        }
    }

    /// Add a camera.
    pub fn add(&mut self, camera: Camera) {
        self.cameras.push(camera);
    }

    /// Borrow a camera by name.
    pub fn camera_mut(&mut self, name: &str) -> Option<&mut Camera> {
        self.cameras.iter_mut().find(|c| c.name == name)
    }

    /// Camera names.
    pub fn names(&self) -> Vec<&str> {
        self.cameras.iter().map(|c| c.name.as_str()).collect()
    }

    /// Number of cameras.
    pub fn len(&self) -> usize {
        self.cameras.len()
    }

    /// Whether the server has no cameras.
    pub fn is_empty(&self) -> bool {
        self.cameras.is_empty()
    }
}

impl Default for CameraServer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(n: &str) -> DistinguishedName {
        DistinguishedName::nees_user("REMOTE", n)
    }

    #[test]
    fn most_has_three_cameras() {
        let server = CameraServer::most();
        assert_eq!(server.len(), 3);
        assert_eq!(server.names(), vec!["uiuc-cam-1", "uiuc-cam-2", "cu-cam-1"]);
    }

    #[test]
    fn control_lease_is_exclusive() {
        let mut cam = Camera::new("cam");
        cam.acquire(user("a")).unwrap();
        assert!(cam.acquire(user("b")).is_err());
        // Re-acquire by the holder is fine.
        cam.acquire(user("a")).unwrap();
        // Only the holder can release.
        cam.release(&user("b"));
        assert_eq!(cam.controller(), Some(&user("a")));
        cam.release(&user("a"));
        cam.acquire(user("b")).unwrap();
    }

    #[test]
    fn commands_require_the_lease_and_clamp() {
        let mut cam = Camera::new("cam");
        assert!(cam.command(&user("a"), 10.0, 10.0, 2.0).is_err());
        cam.acquire(user("a")).unwrap();
        cam.command(&user("a"), 500.0, -80.0, 0.1).unwrap();
        let f = cam.capture(SimTime::from_secs(1));
        assert_eq!(f.pan_deg, 170.0);
        assert_eq!(f.tilt_deg, -30.0);
        assert_eq!(f.zoom, 1.0);
    }

    #[test]
    fn frames_sequence_and_carry_state() {
        let mut cam = Camera::new("cam");
        cam.acquire(user("a")).unwrap();
        cam.command(&user("a"), 45.0, 10.0, 3.0).unwrap();
        let f0 = cam.capture(SimTime::from_secs(1));
        let f1 = cam.capture(SimTime::from_secs(2));
        assert_eq!(f0.seq, 0);
        assert_eq!(f1.seq, 1);
        assert_eq!(f1.pan_deg, 45.0);
        assert_eq!(f1.zoom, 3.0);
    }

    #[test]
    fn watching_needs_no_lease() {
        let mut cam = Camera::new("cam");
        // No controller at all; capture still works (fixed view).
        let f = cam.capture(SimTime::ZERO);
        assert_eq!(f.pan_deg, 0.0);
    }
}
