//! The CHEF Data Viewer (paper Figure 8).
//!
//! "These viewers provided near real-time visualization of the structure
//! response, time series data from a sensor, as well as hysteresis plots.
//! Arrangements of one or more views can be saved or viewed … At the top
//! of the Data Viewer, a set of VCR buttons allows users to play, pause,
//! rewind, and fast-forward the data viewer, while at the bottom a
//! clickable timeline allows users to see the state of the Data Viewer at
//! any given time point."

use std::collections::HashMap;

use neesgrid_daq::timeseries::TimeSeries;
use neesgrid_gridsim::SimTime;

/// VCR playback state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcrState {
    /// Advancing at the live rate.
    Playing,
    /// Frozen at the current position.
    Paused,
    /// Advancing at `speed ×` the live rate (fast-forward).
    FastForward {
        /// Playback speed multiplier.
        speed: u32,
    },
}

/// A single view: one channel, or an (x, y) channel pair for hysteresis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum View {
    /// Time-series plot of one channel.
    Series {
        /// Channel shown.
        channel: String,
    },
    /// Hysteresis plot: x-channel vs y-channel at equal times.
    Hysteresis {
        /// Displacement (x) channel.
        x_channel: String,
        /// Force (y) channel.
        y_channel: String,
    },
}

/// The data viewer: buffered series, arrangements, VCR position.
pub struct DataViewer {
    series: HashMap<String, TimeSeries>,
    arrangements: HashMap<String, Vec<View>>,
    state: VcrState,
    /// Current playback position (virtual experiment time).
    pub position: SimTime,
    /// Latest data time received (the "live edge").
    pub live_edge: SimTime,
}

impl DataViewer {
    /// An empty viewer, paused at t = 0.
    pub fn new() -> Self {
        DataViewer {
            series: HashMap::new(),
            arrangements: HashMap::new(),
            state: VcrState::Paused,
            position: SimTime::ZERO,
            live_edge: SimTime::ZERO,
        }
    }

    /// Feed one sample (from NSDS) into the viewer's buffer.
    pub fn ingest(&mut self, channel: &str, t: SimTime, value: f64) {
        let ts = self
            .series
            .entry(channel.to_string())
            .or_insert_with(|| TimeSeries::new(channel, ""));
        ts.push(t, value);
        self.live_edge = self.live_edge.max(t);
    }

    /// Save a named arrangement of views.
    pub fn save_arrangement(&mut self, name: impl Into<String>, views: Vec<View>) {
        self.arrangements.insert(name.into(), views);
    }

    /// A saved arrangement.
    pub fn arrangement(&self, name: &str) -> Option<&[View]> {
        self.arrangements.get(name).map(Vec::as_slice)
    }

    /// Current VCR state.
    pub fn state(&self) -> VcrState {
        self.state
    }

    /// VCR: play.
    pub fn play(&mut self) {
        self.state = VcrState::Playing;
    }

    /// VCR: pause.
    pub fn pause(&mut self) {
        self.state = VcrState::Paused;
    }

    /// VCR: rewind to the beginning (and pause).
    pub fn rewind(&mut self) {
        self.position = SimTime::ZERO;
        self.state = VcrState::Paused;
    }

    /// VCR: fast-forward at `speed`×.
    pub fn fast_forward(&mut self, speed: u32) {
        self.state = VcrState::FastForward {
            speed: speed.max(2),
        };
    }

    /// Clickable timeline: jump to `t` (clamped to the live edge).
    pub fn seek(&mut self, t: SimTime) {
        self.position = if t > self.live_edge {
            self.live_edge
        } else {
            t
        };
    }

    /// Advance playback by `dt` of viewer (wall) time.
    pub fn tick(&mut self, dt: SimTime) {
        let advance = match self.state {
            VcrState::Paused => SimTime::ZERO,
            VcrState::Playing => dt,
            VcrState::FastForward { speed } => dt * speed as u64,
        };
        self.position = (self.position + advance).min(self.live_edge);
    }

    /// The series data visible at the current position (everything up to
    /// `position`) for one channel.
    pub fn visible_series(&self, channel: &str) -> Vec<(SimTime, f64)> {
        self.series
            .get(channel)
            .map(|ts| {
                ts.samples
                    .iter()
                    .take_while(|s| s.t <= self.position)
                    .map(|s| (s.t, s.value))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Hysteresis pairs (x(t), y(t)) up to the current position, matching
    /// samples at equal timestamps.
    pub fn hysteresis(&self, x_channel: &str, y_channel: &str) -> Vec<(f64, f64)> {
        let (Some(xs), Some(ys)) = (self.series.get(x_channel), self.series.get(y_channel)) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut yi = 0;
        for x in xs.samples.iter().take_while(|s| s.t <= self.position) {
            while yi < ys.samples.len() && ys.samples[yi].t < x.t {
                yi += 1;
            }
            if yi < ys.samples.len() && ys.samples[yi].t == x.t {
                out.push((x.value, ys.samples[yi].value));
            }
        }
        out
    }

    /// Channels the viewer currently holds.
    pub fn channels(&self) -> Vec<String> {
        let mut names: Vec<String> = self.series.keys().cloned().collect();
        names.sort();
        names
    }
}

impl Default for DataViewer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viewer_with_data() -> DataViewer {
        let mut v = DataViewer::new();
        for i in 0..100u64 {
            let t = SimTime::from_millis(i * 10);
            v.ingest("disp", t, (i as f64 * 0.1).sin() * 0.01);
            v.ingest("force", t, (i as f64 * 0.1).sin() * 2000.0);
        }
        v
    }

    #[test]
    fn ingest_tracks_live_edge() {
        let v = viewer_with_data();
        assert_eq!(v.live_edge, SimTime::from_millis(990));
        assert_eq!(v.channels(), vec!["disp", "force"]);
    }

    #[test]
    fn vcr_play_pause_tick() {
        let mut v = viewer_with_data();
        v.play();
        v.tick(SimTime::from_millis(100));
        assert_eq!(v.position, SimTime::from_millis(100));
        v.pause();
        v.tick(SimTime::from_millis(100));
        assert_eq!(v.position, SimTime::from_millis(100), "paused holds");
        v.fast_forward(4);
        v.tick(SimTime::from_millis(100));
        assert_eq!(v.position, SimTime::from_millis(500));
    }

    #[test]
    fn playback_clamps_at_live_edge() {
        let mut v = viewer_with_data();
        v.play();
        v.tick(SimTime::from_secs(100));
        assert_eq!(v.position, v.live_edge);
    }

    #[test]
    fn rewind_and_seek() {
        let mut v = viewer_with_data();
        v.seek(SimTime::from_millis(500));
        assert_eq!(v.position, SimTime::from_millis(500));
        v.rewind();
        assert_eq!(v.position, SimTime::ZERO);
        assert_eq!(v.state(), VcrState::Paused);
        // Seeking past the live edge clamps (clicking right of the data).
        v.seek(SimTime::from_secs(999));
        assert_eq!(v.position, v.live_edge);
    }

    #[test]
    fn visible_series_respects_position() {
        let mut v = viewer_with_data();
        v.seek(SimTime::from_millis(200));
        let visible = v.visible_series("disp");
        assert_eq!(visible.len(), 21); // samples at 0..=200 ms
        assert!(visible.iter().all(|(t, _)| *t <= SimTime::from_millis(200)));
        assert!(v.visible_series("nope").is_empty());
    }

    #[test]
    fn hysteresis_pairs_matched_times() {
        let mut v = viewer_with_data();
        v.seek(v.live_edge);
        let h = v.hysteresis("disp", "force");
        assert_eq!(h.len(), 100);
        // Force is 200000× displacement in the synthetic data.
        for (d, f) in h {
            assert!((f - d * 200_000.0).abs() < 1e-6);
        }
    }

    #[test]
    fn arrangements_save_and_recall() {
        let mut v = viewer_with_data();
        v.save_arrangement(
            "most-default",
            vec![
                View::Series {
                    channel: "disp".into(),
                },
                View::Hysteresis {
                    x_channel: "disp".into(),
                    y_channel: "force".into(),
                },
            ],
        );
        let a = v.arrangement("most-default").unwrap();
        assert_eq!(a.len(), 2);
        assert!(v.arrangement("other").is_none());
    }
}
