//! # neesgrid-chef — the collaboration portal
//!
//! MOST's remote participants "accessed tools via logging in to MOST via a
//! NEESgrid specific collaboration interface built using the CHEF
//! collaboration framework" (§3). Over 130 of them did, during the public
//! run. This crate provides that portal:
//!
//! * [`session`] — GSI-authenticated login sessions with roles, served
//!   by the `neesgrid-portal` service and re-exported here;
//! * [`chat`] — the chat / message board ("CHEF's chat feature was crucial
//!   to user interaction");
//! * [`notebook`] — the electronic notebook;
//! * [`viewer`] — the Data Viewer of Figure 8: arrangements of views,
//!   VCR controls (play / pause / rewind / fast-forward), a clickable
//!   timeline, and hysteresis plots;
//! * [`telepresence`] — remotely operable pan/tilt/zoom cameras (three of
//!   them at MOST), with exclusive-control leases;
//! * [`portal`] — the facade tying it together. Since the portal became
//!   a multi-tenant wire service (`neesgrid-portal`), this is a thin
//!   client: login, boards, and stream observers all travel as
//!   length-prefixed JSON frames; only the cameras and the https
//!   download bridge stay client-local.

pub mod chat;
pub mod notebook;
pub mod portal;
pub mod session;
pub mod telepresence;
pub mod viewer;

pub use chat::{ChatMessage, ChatRoom};
pub use notebook::{Notebook, NotebookEntry};
pub use portal::{CollabPortal, RemoteFeed};
pub use session::{LoginError, Role, Session};
pub use telepresence::{Camera, CameraFrame, CameraServer};
pub use viewer::{DataViewer, VcrState};
