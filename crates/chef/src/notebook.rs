//! The electronic notebook.
//!
//! CHEF gave MOST participants "access to an electronic notebook" (§3) —
//! an append-only experiment journal with titled, attributed entries.

use serde::{Deserialize, Serialize};

use neesgrid_gridsim::SimTime;
use neesgrid_gsi::DistinguishedName;

/// One notebook entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NotebookEntry {
    /// Entry number.
    pub id: u64,
    /// When written.
    pub at: SimTime,
    /// Author.
    pub author: DistinguishedName,
    /// Short title.
    pub title: String,
    /// Body text.
    pub body: String,
}

/// An append-only experiment notebook.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Notebook {
    entries: Vec<NotebookEntry>,
}

impl Notebook {
    /// An empty notebook.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry; returns its id.
    pub fn write(
        &mut self,
        author: DistinguishedName,
        title: impl Into<String>,
        body: impl Into<String>,
        at: SimTime,
    ) -> u64 {
        let id = self.entries.len() as u64;
        self.entries.push(NotebookEntry {
            id,
            at,
            author,
            title: title.into(),
            body: body.into(),
        });
        id
    }

    /// All entries.
    pub fn entries(&self) -> &[NotebookEntry] {
        &self.entries
    }

    /// Entries whose title or body contains `needle` (case-sensitive).
    pub fn search(&self, needle: &str) -> Vec<&NotebookEntry> {
        self.entries
            .iter()
            .filter(|e| e.title.contains(needle) || e.body.contains(needle))
            .collect()
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the notebook is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn author() -> DistinguishedName {
        DistinguishedName::nees_user("UIUC", "Operator")
    }

    #[test]
    fn write_and_read_back() {
        let mut nb = Notebook::new();
        let id = nb.write(
            author(),
            "Step 1493",
            "final network error terminated the run",
            SimTime::from_secs(100),
        );
        assert_eq!(id, 0);
        assert_eq!(nb.entries()[0].title, "Step 1493");
        assert_eq!(nb.len(), 1);
    }

    #[test]
    fn search_matches_title_and_body() {
        let mut nb = Notebook::new();
        nb.write(author(), "Dry run", "completed 1500 steps", SimTime::ZERO);
        nb.write(
            author(),
            "Public run",
            "terminated at step 1493",
            SimTime::ZERO,
        );
        nb.write(author(), "Misc", "camera 2 pan stuck", SimTime::ZERO);
        assert_eq!(nb.search("run").len(), 2);
        assert_eq!(nb.search("1493").len(), 1);
        assert!(nb.search("zebra").is_empty());
    }
}
