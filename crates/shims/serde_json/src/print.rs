//! Rendering delegates to the printer that lives next to `Value` (orphan
//! rules require `Display for Value` to be implemented in the serde shim).

use serde::value::Value;

pub fn compact(v: &Value) -> String {
    v.to_json_compact()
}

pub fn pretty(v: &Value) -> String {
    v.to_json_pretty()
}
