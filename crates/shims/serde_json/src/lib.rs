//! Offline stand-in for `serde_json`: renders the vendored serde facade's
//! [`Value`] tree to and from JSON text. Covers the API subset this
//! workspace uses: `to_string`/`to_string_pretty`/`to_vec`/`to_value`,
//! `from_str`/`from_slice`/`from_value`, `Value`, and the `json!` macro.
//!
//! Float output uses Rust's shortest round-trip `Display`, so an
//! f64 → JSON → f64 round trip is bit-exact — a property the checkpoint
//! subsystem's "identical trailing trajectory" guarantee leans on.

mod parse;
mod print;

use std::fmt;

use serde::de::DeserializeOwned;
use serde::Serialize;

pub use serde::value::{Map, Number, Value};

/// Error for both parse and data-shape failures.
#[derive(Debug, Clone)]
pub struct Error(pub(crate) String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::value::Error> for Error {
    fn from(e: serde::value::Error) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(serde::value::to_value(&value))
}

pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    serde::value::from_value(value).map_err(Error::from)
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(print::compact(&serde::value::to_value(value)))
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(print::pretty(&serde::value::to_value(value)))
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let v = parse::parse(s)?;
    serde::value::from_value(v).map_err(Error::from)
}

pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

#[doc(hidden)]
pub fn __value_from<T: Serialize>(t: &T) -> Value {
    serde::value::to_value(t)
}

/// Build a [`Value`] from JSON-looking syntax, like `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::Value::Array($crate::json_array![ $($tt)* ]) };
    ({ $($tt:tt)* }) => { $crate::Value::Object($crate::json_object!( $($tt)* )) };
    ($other:expr) => { $crate::__value_from(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // Done: no more elements.
    (@acc $vec:ident) => {};
    // Trailing comma.
    (@acc $vec:ident ,) => {};
    // Next element is a nested array / object / literal keyword / expression;
    // capture one full element as tt* up to a top-level comma via tt-munching
    // on the three container/keyword forms first, then fall back to expr.
    (@acc $vec:ident [ $($elem:tt)* ] $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!([ $($elem)* ]));
        $crate::json_array!(@acc $vec $($($rest)*)?);
    };
    (@acc $vec:ident { $($elem:tt)* } $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!({ $($elem)* }));
        $crate::json_array!(@acc $vec $($($rest)*)?);
    };
    (@acc $vec:ident null $(, $($rest:tt)*)?) => {
        $vec.push($crate::Value::Null);
        $crate::json_array!(@acc $vec $($($rest)*)?);
    };
    (@acc $vec:ident $elem:expr $(, $($rest:tt)*)?) => {
        $vec.push($crate::__value_from(&$elem));
        $crate::json_array!(@acc $vec $($($rest)*)?);
    };
    ( $($tt:tt)* ) => {{
        #[allow(unused_mut)]
        let mut vec: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array!(@acc vec $($tt)*);
        vec
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    (@acc $map:ident) => {};
    (@acc $map:ident ,) => {};
    (@acc $map:ident $key:tt : [ $($elem:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::json!([ $($elem)* ]));
        $crate::json_object!(@acc $map $($($rest)*)?);
    };
    (@acc $map:ident $key:tt : { $($elem:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::json!({ $($elem)* }));
        $crate::json_object!(@acc $map $($($rest)*)?);
    };
    (@acc $map:ident $key:tt : null $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::Value::Null);
        $crate::json_object!(@acc $map $($($rest)*)?);
    };
    (@acc $map:ident $key:tt : $val:expr $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::__value_from(&$val));
        $crate::json_object!(@acc $map $($($rest)*)?);
    };
    ( $($tt:tt)* ) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_object!(@acc map $($tt)*);
        map
    }};
}
