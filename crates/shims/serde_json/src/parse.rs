//! Recursive-descent JSON parser producing the shim `Value` tree.

use serde::value::{Map, Number, Value};

use crate::Error;

pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected {kw}")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("expected low surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(c) => {
                    // Re-assemble multi-byte UTF-8: we validated the input as
                    // UTF-8 up front, so continuation bytes are well-formed.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(c);
                        self.pos = start + width;
                        let s = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?;
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("short unicode escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
            // Integer out of 64-bit range: fall through to f64.
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err(&format!("invalid number {text:?}")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
