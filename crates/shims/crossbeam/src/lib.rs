//! Offline stand-in for `crossbeam`: an MPMC channel built on
//! `Mutex<VecDeque>` + `Condvar`. Semantics mirror `crossbeam::channel` for
//! the operations this workspace uses: cloneable senders *and* receivers,
//! bounded/unbounded capacity, and disconnect-aware recv/recv_timeout.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        cap: Option<usize>,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    pub struct Sender<T>(Arc<Shared<T>>);
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        // A zero-capacity rendezvous degenerates to capacity 1 here; no
        // in-repo caller relies on strict rendezvous hand-off timing.
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                cap,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.0.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).unwrap();
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.0.not_empty.wait_timeout(st, deadline - now).unwrap();
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn len(&self) -> usize {
            self.0.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator, ends when all senders are gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}
