//! Offline stand-in for `proptest`. Deterministic: each test case draws from
//! a fixed-seed PRNG keyed by the case index, so failures reproduce exactly.
//! No shrinking — the failing input is printed as generated.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng as _, SampleUniform, SeedableRng};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Run-count configuration, mirroring `ProptestConfig` where used.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert*`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Value generator. Object-safe: combinators require `Self: Sized`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Constant strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! strategy_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
strategy_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Types with a canonical "any value" strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub struct AnyNumber<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyNumber<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyNumber<$t>;
            fn arbitrary() -> Self::Strategy { AnyNumber(std::marker::PhantomData) }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyNumber<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for bool {
    type Strategy = AnyNumber<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyNumber(std::marker::PhantomData)
    }
}

impl Strategy for AnyNumber<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(-1.0e6..1.0e6)
    }
}
impl Arbitrary for f64 {
    type Strategy = AnyNumber<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyNumber(std::marker::PhantomData)
    }
}

/// Mirror of `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Weighted-union support type backing `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn empty() -> Self {
        Union {
            options: Vec::new(),
        }
    }

    pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Self {
        self.options.push(Box::new(s));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! of zero strategies");
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng as _;
    use std::ops::Range;

    /// Size argument for [`vec`]: a fixed length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-case RNG: keyed only by the case index, so a failing
/// case number reproduces regardless of which cases ran before it.
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0x9e37_79b9_7f4a_7c15 ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D))
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::empty()$(.or($strat))+
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::empty()$(.or($strat))+
    };
}

/// Mirror of the `proptest!` macro: runs each embedded `#[test]` function
/// over `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for __case in 0..config.cases {
                    let mut __rng = $crate::case_rng(__case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!("proptest case #{} failed: {}", __case, e);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}
