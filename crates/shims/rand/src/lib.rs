//! Offline stand-in for `rand` 0.8. Deterministic xoshiro256** generator
//! seeded via SplitMix64 (same construction rand_core uses for
//! `seed_from_u64`, though the output stream differs from upstream rand —
//! all in-repo consumers only need *a* reproducible stream, not rand's).

use std::ops::{Range, RangeInclusive};

/// Mirror of `rand_core::RngCore`, trimmed to the 64-bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Mirror of `rand::SeedableRng`, trimmed to `seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

/// Mirror of `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_half_open(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator under the StdRng name.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    /// Alias kept for code that asks for the small generator.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Mirror of `rand::seq::SliceRandom`, trimmed to shuffle/choose.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates, high-to-low like upstream rand.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}
