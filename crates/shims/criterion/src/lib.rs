//! Offline stand-in for `criterion`: times closures with a short calibrated
//! loop and prints mean ns/iter. No statistics machinery, HTML reports, or
//! CLI filtering — the API shape (groups, throughput, `BenchmarkId`) matches
//! what the `neesgrid-bench` figures use so benches compile and run.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        // The calibration loop in `run_one` doubles as warm-up.
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, None, self.sample_size, self.measurement_time, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            measurement_time,
            throughput: None,
        }
    }

    pub fn final_summary(&self) {}
}

#[derive(Debug, Clone)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(
            &id,
            self.throughput.clone(),
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(
            &id,
            self.throughput.clone(),
            self.sample_size,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    pub fn iter_with_setup<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        setup: S,
        routine: F,
    ) {
        self.iter_batched(setup, routine, BatchSize::PerIteration);
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    // Calibration pass: one iteration to estimate cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));

    // Budget: spread measurement_time over sample_size samples, but cap the
    // total iteration count so slow benches still terminate promptly.
    let budget = measurement_time.max(Duration::from_millis(10));
    let iters_total = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let iters_per_sample = (iters_total / sample_size as u64).max(1);

    let mut best = Duration::MAX;
    let mut sum = Duration::ZERO;
    let mut measured = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters_per_sample as u32;
        best = best.min(per);
        sum += b.elapsed;
        measured += iters_per_sample;
        if sum > budget {
            break;
        }
    }
    let mean_ns = sum.as_nanos() as f64 / measured.max(1) as f64;

    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / (mean_ns * 1e-9);
            format!("  thrpt: {:.3} Melem/s", per_sec / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / (mean_ns * 1e-9);
            format!("  thrpt: {:.3} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "{id:<60} time: {:>12.1} ns/iter  (best {:>12.1} ns){extra}",
        mean_ns,
        best.as_nanos() as f64,
    );
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
