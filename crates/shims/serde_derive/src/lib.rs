//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde facade. The container has no syn/quote, so the item is
//! parsed directly from the raw token stream and impls are emitted as
//! formatted strings. Supported shapes cover everything this workspace
//! derives: non-generic structs (named / tuple / unit) and enums with unit,
//! tuple, and struct variants, plus `#[serde(rename_all = "...")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

enum Which {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match which {
        Which::Serialize => gen_serialize(&item),
        Which::Deserialize => gen_deserialize(&item),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------- parsing

struct Item {
    name: String,
    rename_all: Option<String>,
    body: Body,
}

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skip a run of outer attributes, returning any `rename_all` value seen.
    fn skip_attrs(&mut self) -> Option<String> {
        let mut rename_all = None;
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            if let Some(TokenTree::Group(g)) = self.next() {
                if let Some(r) = extract_rename_all(g.stream()) {
                    rename_all = Some(r);
                }
            }
        }
        rename_all
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    /// Skip tokens of a type (or discriminant expression) until a top-level
    /// comma or end of stream. Groups are atomic; only `<`/`>` need counting.
    fn skip_until_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                _ => {}
            }
            self.next();
        }
    }
}

fn extract_rename_all(attr: TokenStream) -> Option<String> {
    // Matches `serde ( ... rename_all = "RULE" ... )`.
    let mut toks = attr.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match toks.next() {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return None,
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    for (i, t) in inner.iter().enumerate() {
        if let TokenTree::Ident(id) = t {
            if id.to_string() == "rename_all" {
                if let Some(TokenTree::Literal(lit)) = inner.get(i + 2) {
                    return Some(lit.to_string().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    let rename_all = c.skip_attrs();
    c.skip_visibility();

    let kw = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => {
            return Err(format!(
                "serde shim derive: expected struct/enum, got {t:?}"
            ))
        }
    };
    let name = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => return Err(format!("serde shim derive: expected type name, got {t:?}")),
    };
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive: generic type {name} not supported"
            ));
        }
    }

    let body = match kw.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            t => return Err(format!("serde shim derive: bad struct body {t:?}")),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            t => return Err(format!("serde shim derive: bad enum body {t:?}")),
        },
        other => return Err(format!("serde shim derive: cannot derive for {other}")),
    };

    Ok(Item {
        name,
        rename_all,
        body,
    })
}

fn parse_named_fields(ts: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        c.skip_visibility();
        if c.at_end() {
            break;
        }
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            t => return Err(format!("serde shim derive: expected field name, got {t:?}")),
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            t => return Err(format!("serde shim derive: expected ':', got {t:?}")),
        }
        c.skip_until_comma();
        c.next(); // consume the comma, if any
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    if c.at_end() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    let mut saw_token_since_comma = false;
    while let Some(t) = c.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                saw_token_since_comma = false;
                count += 1;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    // Trailing comma adds a phantom field; drop it.
    if !saw_token_since_comma {
        count -= 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            t => {
                return Err(format!(
                    "serde shim derive: expected variant name, got {t:?}"
                ))
            }
        };
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        c.skip_until_comma();
        c.next();
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ------------------------------------------------------------- renaming

fn apply_rename(name: &str, rule: Option<&str>) -> String {
    let Some(rule) = rule else {
        return name.to_string();
    };
    let words = split_words(name);
    match rule {
        "lowercase" => name.to_lowercase(),
        "UPPERCASE" => name.to_uppercase(),
        "snake_case" => words.join("_"),
        "SCREAMING_SNAKE_CASE" => words.join("_").to_uppercase(),
        "kebab-case" => words.join("-"),
        "camelCase" => {
            let mut out = String::new();
            for (i, w) in words.iter().enumerate() {
                if i == 0 {
                    out.push_str(w);
                } else {
                    out.push_str(&capitalize(w));
                }
            }
            out
        }
        "PascalCase" => words.iter().map(|w| capitalize(w)).collect(),
        _ => name.to_string(),
    }
}

fn split_words(name: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut cur = String::new();
    for ch in name.chars() {
        if ch == '_' {
            if !cur.is_empty() {
                words.push(cur.clone());
                cur.clear();
            }
        } else if ch.is_uppercase() && !cur.is_empty() {
            words.push(cur.clone());
            cur.clear();
            cur.push(ch.to_ascii_lowercase());
        } else {
            cur.push(ch.to_ascii_lowercase());
        }
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    words
}

fn capitalize(w: &str) -> String {
    let mut cs = w.chars();
    match cs.next() {
        Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

// ------------------------------------------------------------ generation

const VALUE: &str = "::serde::__private::Value";
const MAP: &str = "::serde::__private::Map";
const TO_VALUE: &str = "::serde::__private::to_value";
const FROM_VALUE: &str = "::serde::__private::from_value_ref";

fn de_err(item: &str, what: &str) -> String {
    format!(
        "return ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
         ::std::format!(\"{item}: {what}\")))"
    )
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut s = format!("let mut __m = {MAP}::new();\n");
            for f in fields {
                let key = apply_rename(f, item.rename_all.as_deref());
                s.push_str(&format!(
                    "__m.insert(::std::string::String::from({key:?}), {TO_VALUE}(&self.{f}));\n"
                ));
            }
            s.push_str(&format!(
                "__serializer.serialize_value({VALUE}::Object(__m))"
            ));
            s
        }
        Body::TupleStruct(1) => {
            format!("__serializer.serialize_value({TO_VALUE}(&self.0))")
        }
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n).map(|i| format!("{TO_VALUE}(&self.{i})")).collect();
            format!(
                "__serializer.serialize_value({VALUE}::Array(::std::vec![{}]))",
                elems.join(", ")
            )
        }
        Body::UnitStruct => format!("__serializer.serialize_value({VALUE}::Null)"),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let wire = apply_rename(vname, item.rename_all.as_deref());
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => __serializer.serialize_value(\
                         {VALUE}::String(::std::string::String::from({wire:?}))),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let content = if *n == 1 {
                            format!("{TO_VALUE}(__f0)")
                        } else {
                            let elems: Vec<String> =
                                binds.iter().map(|b| format!("{TO_VALUE}({b})")).collect();
                            format!("{VALUE}::Array(::std::vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let mut __m = {MAP}::new();\n\
                             __m.insert(::std::string::String::from({wire:?}), {content});\n\
                             __serializer.serialize_value({VALUE}::Object(__m))\n}}\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inner = format!("let mut __inner = {MAP}::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__inner.insert(::std::string::String::from({f:?}), {TO_VALUE}({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {fields} }} => {{\n{inner}\
                             let mut __m = {MAP}::new();\n\
                             __m.insert(::std::string::String::from({wire:?}), {VALUE}::Object(__inner));\n\
                             __serializer.serialize_value({VALUE}::Object(__m))\n}}\n",
                            fields = fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let key = apply_rename(f, item.rename_all.as_deref());
                inits.push_str(&format!(
                    "{f}: match {FROM_VALUE}(__o.get({key:?}).unwrap_or(&{VALUE}::Null)) {{\n\
                     ::core::result::Result::Ok(v) => v,\n\
                     ::core::result::Result::Err(e) => return ::core::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::custom(\
                     ::std::format!(\"{name}.{f}: {{}}\", e))),\n}},\n"
                ));
            }
            format!(
                "let __o = match &__v {{\n\
                 {VALUE}::Object(m) => m,\n\
                 _ => {err},\n}};\n\
                 ::core::result::Result::Ok({name} {{\n{inits}}})",
                err = de_err(name, "expected object")
            )
        }
        Body::TupleStruct(1) => format!(
            "match {FROM_VALUE}(&__v) {{\n\
             ::core::result::Result::Ok(v) => ::core::result::Result::Ok({name}(v)),\n\
             ::core::result::Result::Err(e) => ::core::result::Result::Err(\
             <__D::Error as ::serde::de::Error>::custom(\
             ::std::format!(\"{name}: {{}}\", e))),\n}}"
        ),
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "match {FROM_VALUE}(&__a[{i}]) {{\n\
                         ::core::result::Result::Ok(v) => v,\n\
                         ::core::result::Result::Err(e) => return ::core::result::Result::Err(\
                         <__D::Error as ::serde::de::Error>::custom(\
                         ::std::format!(\"{name}.{i}: {{}}\", e))),\n}}"
                    )
                })
                .collect();
            format!(
                "let __a = match &__v {{\n\
                 {VALUE}::Array(a) if a.len() == {n} => a,\n\
                 _ => {err},\n}};\n\
                 ::core::result::Result::Ok({name}({elems}))",
                err = de_err(name, &format!("expected array of {n}")),
                elems = elems.join(", ")
            )
        }
        Body::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut content_arms = String::new();
            for v in variants {
                let vname = &v.name;
                let wire = apply_rename(vname, item.rename_all.as_deref());
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "{wire:?} => ::core::result::Result::Ok({name}::{vname}),\n"
                        ));
                        // Also accept the `{"Variant": null}` object form.
                        content_arms.push_str(&format!(
                            "{wire:?} => ::core::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => content_arms.push_str(&format!(
                        "{wire:?} => match {FROM_VALUE}(__content) {{\n\
                         ::core::result::Result::Ok(v) => ::core::result::Result::Ok({name}::{vname}(v)),\n\
                         ::core::result::Result::Err(e) => ::core::result::Result::Err(\
                         <__D::Error as ::serde::de::Error>::custom(\
                         ::std::format!(\"{name}::{vname}: {{}}\", e))),\n}},\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "match {FROM_VALUE}(&__a[{i}]) {{\n\
                                     ::core::result::Result::Ok(v) => v,\n\
                                     ::core::result::Result::Err(e) => return ::core::result::Result::Err(\
                                     <__D::Error as ::serde::de::Error>::custom(\
                                     ::std::format!(\"{name}::{vname}.{i}: {{}}\", e))),\n}}"
                                )
                            })
                            .collect();
                        content_arms.push_str(&format!(
                            "{wire:?} => {{\n\
                             let __a = match __content {{\n\
                             {VALUE}::Array(a) if a.len() == {n} => a,\n\
                             _ => {err},\n}};\n\
                             ::core::result::Result::Ok({name}::{vname}({elems}))\n}},\n",
                            err = de_err(&format!("{name}::{vname}"), &format!("expected array of {n}")),
                            elems = elems.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: match {FROM_VALUE}(__o.get({f:?}).unwrap_or(&{VALUE}::Null)) {{\n\
                                 ::core::result::Result::Ok(v) => v,\n\
                                 ::core::result::Result::Err(e) => return ::core::result::Result::Err(\
                                 <__D::Error as ::serde::de::Error>::custom(\
                                 ::std::format!(\"{name}::{vname}.{f}: {{}}\", e))),\n}},\n"
                            ));
                        }
                        content_arms.push_str(&format!(
                            "{wire:?} => {{\n\
                             let __o = match __content {{\n\
                             {VALUE}::Object(m) => m,\n\
                             _ => {err},\n}};\n\
                             ::core::result::Result::Ok({name}::{vname} {{\n{inits}}})\n}},\n",
                            err = de_err(&format!("{name}::{vname}"), "expected object")
                        ));
                    }
                }
            }
            format!(
                "match &__v {{\n\
                 {VALUE}::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"{name}: unknown variant {{:?}}\", __other))),\n}},\n\
                 {VALUE}::Object(__m) => {{\n\
                 let (__tag, __content) = match __m.iter().next() {{\n\
                 ::core::option::Option::Some((k, v)) => (k.as_str(), v),\n\
                 ::core::option::Option::None => {err_empty},\n}};\n\
                 match __tag {{\n{content_arms}\
                 __other => ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"{name}: unknown variant {{:?}}\", __other))),\n}}\n}},\n\
                 _ => {err_shape},\n}}",
                err_empty = de_err(name, "empty enum object"),
                err_shape = de_err(name, "expected string or single-key object"),
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n\
         let __v = __deserializer.into_value()?;\n{body}\n}}\n}}\n"
    )
}
