//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync` locks
//! that recover from poisoning, matching parking_lot's panic-free guard API.

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Result of a timed condition-variable wait (parking_lot-compatible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with parking_lot's in-place-guard API, backed by
/// `std::sync::Condvar` (poison-recovering, like the locks above).
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: the guard is moved out, passed through the std wait (which
        // returns it, possibly via poison recovery — no panic path between
        // the read and the write), and moved back in place.
        unsafe {
            let taken = std::ptr::read(guard);
            let returned = self.0.wait(taken).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, returned);
        }
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        // SAFETY: as in `wait`.
        unsafe {
            let taken = std::ptr::read(guard);
            let (returned, result) = self
                .0
                .wait_timeout(taken, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, returned);
            WaitTimeoutResult(result.timed_out())
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}
