//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so this workspace vendors a
//! small, value-based serialization facade under the `serde` name. It keeps
//! the trait *shapes* of real serde (`Serialize::serialize<S: Serializer>`,
//! `Deserialize::deserialize<D: Deserializer<'de>>`) so hand-written impls
//! compile unchanged, but the data model is a single JSON-like [`value::Value`]
//! rather than serde's full visitor machinery. `serde_json` (also vendored)
//! renders that `Value` to and from JSON text.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};

#[doc(hidden)]
pub mod __private {
    //! Helpers the derive macro expands against.
    pub use crate::value::{from_value_ref, to_value, Map, Value};
}
