//! The JSON-like value tree that serves as this shim's entire data model.

use std::collections::BTreeMap;
use std::fmt;

use crate::de::{Deserialize, DeserializeOwned, Deserializer};
use crate::ser::{Serialize, Serializer};

/// Object type: sorted map keeps serialized output deterministic.
pub type Map = BTreeMap<String, Value>;

/// A parsed or to-be-serialized value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// JSON number: integers keep full 64-bit precision, everything else is f64.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {
                // One side integral, other side float (or out-of-range int).
                if let (Some(a), Some(b)) = (self.as_u64(), other.as_u64()) {
                    return a == b;
                }
            }
        }
        self.as_f64() == other.as_f64()
    }
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// `get` by object key or array index, like `serde_json::Value::get`.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// JSON-pointer lookup (RFC 6901), like `serde_json::Value::pointer`.
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        if !pointer.starts_with('/') {
            return None;
        }
        pointer
            .split('/')
            .skip(1)
            .map(|t| t.replace("~1", "/").replace("~0", "~"))
            .try_fold(self, |v, token| match v {
                Value::Object(m) => m.get(&token),
                Value::Array(a) => a.get(token.parse::<usize>().ok()?),
                _ => None,
            })
    }
}

/// Index key for [`Value::get`] and the `Index` impls.
pub trait ValueIndex {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Object(m) => m.get(*self),
            _ => None,
        }
    }
}

impl ValueIndex for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }
}

impl ValueIndex for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Array(a) => a.get(*self),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

// --- comparisons against plain literals (used heavily by tests) ---

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! int_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => match i128::from(*other) {
                        o if o >= 0 => n.as_u64() == Some(o as u64),
                        o => n.as_i64() == Some(o as i64),
                    },
                    _ => false,
                }
            }
        }
    )*};
}
int_eq!(i8, i16, i32, i64, u8, u16, u32, u64);
impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        *self == (*other as u64)
    }
}
impl PartialEq<isize> for Value {
    fn eq(&self, other: &isize) -> bool {
        *self == (*other as i64)
    }
}

impl Value {
    /// Compact JSON rendering (no whitespace), shared with the vendored
    /// `serde_json`. Lives here so `Value` can implement `Display`.
    pub fn to_json_compact(&self) -> String {
        let mut out = String::new();
        write_json(self, &mut out, None, 0);
        out
    }

    /// Pretty JSON rendering with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_json(self, &mut out, Some("  "), 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_compact())
    }
}

fn write_json(v: &Value, out: &mut String, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip Display; ensure a `.0` suffix on
                // integral floats is NOT forced (parse side accepts both).
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error used by value-level (de)serialization.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl crate::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl crate::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializer whose output *is* the value tree. Cannot fail.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    fn serialize_value(self, v: Value) -> Result<Value, Error> {
        Ok(v)
    }
}

/// Deserializer that hands out an already-parsed value tree.
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;
    fn into_value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

/// Serialize anything into a [`Value`]. Infallible by construction.
pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Value {
    t.serialize(ValueSerializer).unwrap_or(Value::Null)
}

/// Deserialize a `T` out of a borrowed [`Value`].
pub fn from_value_ref<T: DeserializeOwned>(v: &Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer(v.clone()))
}

/// Deserialize a `T` out of an owned [`Value`].
pub fn from_value<T: DeserializeOwned>(v: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer(v))
}

// The value tree itself round-trips through Serialize/Deserialize untouched,
// so derived containers may hold `Value` fields.
impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.into_value()
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        if f.is_finite() {
            Value::Number(Number::Float(f))
        } else {
            Value::Null
        }
    }
}
impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::from(f as f64)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

macro_rules! int_from {
    (unsigned: $($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self { Value::Number(Number::PosInt(n as u64)) }
        }
    )*};
    (signed: $($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n as i64))
                }
            }
        }
    )*};
}
int_from!(unsigned: u8, u16, u32, u64, usize);
int_from!(signed: i8, i16, i32, i64, isize);
