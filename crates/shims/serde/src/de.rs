//! Deserialization half of the shim: trait shapes mirror real serde, with the
//! whole input surfaced as one [`Value`] via [`Deserializer::into_value`].

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::rc::Rc;
use std::sync::Arc;

use crate::value::{from_value, Number, Value};

/// Mirror of `serde::de::Error`.
pub trait Error: Sized {
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// Mirror of `serde::Deserializer`, collapsed to one required method.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    /// Surrender the parsed value tree.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// Mirror of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Mirror of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

fn type_err<T, E: Error>(expected: &str, got: &Value) -> Result<T, E> {
    let got = match got {
        Value::Null => "null".to_string(),
        Value::Bool(_) => "bool".to_string(),
        Value::Number(n) => format!("number {n:?}"),
        Value::String(s) => format!("string {s:?}"),
        Value::Array(_) => "array".to_string(),
        Value::Object(_) => "object".to_string(),
    };
    Err(E::custom(format!("expected {expected}, got {got}")))
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.into_value()?;
                match &v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .map_or_else(|| type_err(stringify!($t), &v), Ok),
                    _ => type_err(stringify!($t), &v),
                }
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.into_value()?;
                match &v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .map_or_else(|| type_err(stringify!($t), &v), Ok),
                    _ => type_err(stringify!($t), &v),
                }
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.into_value()?;
        match &v {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json maps non-finite floats to null on write; accept the
            // round-trip back as NaN rather than failing the whole payload.
            Value::Null => Ok(f64::NAN),
            _ => type_err("f64", &v),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.into_value()?;
        v.as_bool().map_or_else(|| type_err("bool", &v), Ok)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::String(s) => Ok(s),
            v => type_err("string", &v),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom("expected single-char string")),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let _ = d.into_value()?;
        Ok(())
    }
}

fn elem<T: DeserializeOwned, E: Error>(v: &Value, what: &str) -> Result<T, E> {
    crate::value::from_value_ref(v).map_err(|e| E::custom(format!("{what}: {e}")))
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Null => Ok(None),
            v => Ok(Some(
                from_value(v).map_err(|e| D::Error::custom(e.to_string()))?,
            )),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Array(a) => a.iter().map(|v| elem(v, "array element")).collect(),
            v => type_err("array", &v),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(VecDeque::from)
    }
}

impl<'de, T: DeserializeOwned + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
    }
}

impl<'de, T: DeserializeOwned + Eq + Hash, H: BuildHasher + Default> Deserialize<'de>
    for HashSet<T, H>
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
    }
}

impl<'de, T: DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = Vec::<T>::deserialize(d)?;
        <[T; N]>::try_from(v)
            .map_err(|v| D::Error::custom(format!("expected array of length {N}, got {}", v.len())))
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Arc<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Arc::new)
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Rc<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Rc::new)
    }
}

/// Re-hydrate a map key from its stringified JSON-object-key form: first as
/// a string (covers String and string-newtype keys), then as an integer.
fn key_from_string<K: DeserializeOwned, E: Error>(k: &str) -> Result<K, E> {
    if let Ok(key) = from_value(Value::String(k.to_owned())) {
        return Ok(key);
    }
    if let Ok(u) = k.parse::<u64>() {
        if let Ok(key) = from_value(Value::Number(Number::PosInt(u))) {
            return Ok(key);
        }
    }
    if let Ok(i) = k.parse::<i64>() {
        if let Ok(key) = from_value(Value::Number(Number::NegInt(i))) {
            return Ok(key);
        }
    }
    Err(E::custom(format!("cannot deserialize map key from {k:?}")))
}

fn de_map_pairs<K: DeserializeOwned, V: DeserializeOwned, E: Error>(
    v: Value,
) -> Result<Vec<(K, V)>, E> {
    match v {
        Value::Object(m) => m
            .into_iter()
            .map(|(k, v)| {
                let key = key_from_string(&k)?;
                let val =
                    from_value(v).map_err(|e| E::custom(format!("map value for {k:?}: {e}")))?;
                Ok((key, val))
            })
            .collect(),
        v => type_err("object", &v),
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: DeserializeOwned + Eq + Hash,
    V: DeserializeOwned,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(de_map_pairs::<K, V, D::Error>(d.into_value()?)?
            .into_iter()
            .collect())
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: DeserializeOwned + Ord,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(de_map_pairs::<K, V, D::Error>(d.into_value()?)?
            .into_iter()
            .collect())
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: DeserializeOwned),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.into_value()? {
                    Value::Array(a) if a.len() == $len => {
                        Ok(($(elem::<$t, D::Error>(&a[$n], "tuple element")?,)+))
                    }
                    v => type_err(concat!("array of length ", $len), &v),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; 0 T0)
    (2; 0 T0, 1 T1)
    (3; 0 T0, 1 T1, 2 T2)
    (4; 0 T0, 1 T1, 2 T2, 3 T3)
    (5; 0 T0, 1 T1, 2 T2, 3 T3, 4 T4)
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.into_value()?;
        let secs = v
            .get("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| D::Error::custom("Duration: missing secs"))?;
        let nanos = v.get("nanos").and_then(Value::as_u64).unwrap_or(0) as u32;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

// Keep `Number` usable directly in derived containers.
impl<'de> Deserialize<'de> for Number {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_value()? {
            Value::Number(n) => Ok(n),
            v => type_err("number", &v),
        }
    }
}

impl crate::ser::Serialize for Number {
    fn serialize<S: crate::ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Number(*self))
    }
}
