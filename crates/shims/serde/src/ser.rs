//! Serialization half of the shim: same trait shapes as real serde, but every
//! serializer bottoms out in [`Serializer::serialize_value`].

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use crate::value::{to_value, Map, Number, Value};

/// Mirror of `serde::ser::Error`.
pub trait Error: Sized {
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// Mirror of `serde::Serializer`, collapsed to one required method.
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;

    /// Consume a fully-built value tree.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::String(v.to_owned()))
    }
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Number(Number::PosInt(v)))
    }
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::from(v))
    }
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::from(v))
    }
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

/// Mirror of `serde::Serialize`.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

// --- primitive impls ---

macro_rules! ser_forward {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::from(*self))
            }
        }
    )*};
}
ser_forward!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(t) => serializer.serialize_value(to_value(t)),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Array(self.iter().map(to_value).collect()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Array(self.iter().map(to_value).collect()))
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Array(self.iter().map(to_value).collect()))
    }
}

impl<T: Serialize, H> Serialize for std::collections::HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Sort for deterministic output; hash-set order is arbitrary.
        let mut items: Vec<Value> = self.iter().map(to_value).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        serializer.serialize_value(Value::Array(items))
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Array(vec![$(to_value(&self.$n)),+]))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// JSON object keys must be strings: stringify string-ish and integer keys,
/// reject everything else at runtime (mirrors serde_json's behavior).
fn key_string<K: Serialize>(k: &K) -> Result<String, String> {
    match to_value(k) {
        Value::String(s) => Ok(s),
        Value::Number(n) => Ok(match n {
            Number::PosInt(v) => v.to_string(),
            Number::NegInt(v) => v.to_string(),
            Number::Float(v) => v.to_string(),
        }),
        other => Err(format!("map key must be string-like, got {other:?}")),
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut m = Map::new();
        for (k, v) in self {
            let k = key_string(k).map_err(S::Error::custom)?;
            m.insert(k, to_value(v));
        }
        serializer.serialize_value(Value::Object(m))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut m = Map::new();
        for (k, v) in self {
            let k = key_string(k).map_err(S::Error::custom)?;
            m.insert(k, to_value(v));
        }
        serializer.serialize_value(Value::Object(m))
    }
}

impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut m = Map::new();
        m.insert("secs".into(), Value::from(self.as_secs()));
        m.insert("nanos".into(), Value::from(self.subsec_nanos()));
        serializer.serialize_value(Value::Object(m))
    }
}
