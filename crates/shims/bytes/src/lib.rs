//! Offline stand-in for `bytes`: an `Arc<[u8]>`-backed immutable buffer.
//! Clones are reference-count bumps, matching the cost model callers assume.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from_vec(bytes.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Zero-copy sub-slice sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from_vec(v.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from_vec(v.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "...({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}
