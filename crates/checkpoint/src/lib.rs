//! # neesgrid-checkpoint — survive the step-1493 failure
//!
//! §3.4 of the paper: "The public experiment ran for more than 5 hours but
//! exited prematurely at step 1493 (out of 1500) … a final network error
//! caused the simulation to terminate prematurely." Five hours of
//! servo-hydraulic time were lost for want of seven steps.
//!
//! This crate is the missing piece: periodic, checksummed snapshots of
//! everything a run needs to continue —
//!
//! * the coordinator's integrator state, histories, and event log
//!   ([`neesgrid_coordinator::CoordinatorState`]);
//! * each site's NTCP server state (transactions, at-most-once dedup
//!   cache, plugin/specimen state), captured over dedicated checkpointer
//!   links so the snapshot traffic never perturbs the experiment links'
//!   deterministic fault schedules;
//! * the coordinator endpoint's correlation watermark, so a restarted
//!   coordinator never reuses a request id that a restored server's dedup
//!   cache already remembers.
//!
//! Snapshots are encoded as a headered JSON payload guarded by CRC-32
//! ([`snapshot::encode`] / [`snapshot::decode`]); a corrupted byte is
//! detected at load time, never silently resumed from. Stores come in two
//! flavors: [`MemoryCheckpointStore`] for tests, and
//! [`RepoCheckpointStore`] persisting through the NEESgrid repository's
//! [`neesgrid_repo::VirtualStore`] — the same storage the experiment's
//! data files ship to, so checkpoints survive a coordinator crash exactly
//! as the data does.
//!
//! Because the trajectory of a pseudo-dynamic test depends only on
//! integrator state and specimen (material) committed state — never on
//! wall-clock or transport history — a resumed run's trailing trajectory
//! is *bit-identical* to an uninterrupted run's. The integration test
//! `tests/checkpoint_resume.rs` proves it on the full 1,500-step MOST
//! public run.

/// The checkpoint hook driving snapshot capture during a run.
pub mod checkpointer;
/// When to checkpoint: every-N, on-transient-fault, ring retention.
pub mod policy;
/// Versioned, CRC-checked snapshot encoding.
pub mod snapshot;
/// Where snapshots live: in-memory and repository-directory stores.
pub mod store;

pub use checkpointer::{Checkpointable, Checkpointer};
pub use policy::CheckpointPolicy;
pub use snapshot::{CheckpointError, SiteCheckpoint, Snapshot, FORMAT_VERSION};
pub use store::{CheckpointStore, MemoryCheckpointStore, RepoCheckpointStore};
