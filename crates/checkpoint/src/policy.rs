//! When to checkpoint and how many to keep.

use neesgrid_coordinator::CheckpointCadence;

/// Checkpointing policy: interval, transient-failure trigger, retention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint every N step boundaries (`None`: never on interval).
    pub every_steps: Option<u64>,
    /// Also checkpoint at the boundary after a step that needed
    /// transient-failure recovery — the cheapest moment to capture state
    /// that a flaky network has just proven is worth protecting.
    pub on_transient_failure: bool,
    /// Keep only the most recent K snapshots (`None`: keep all).
    pub retain: Option<usize>,
}

impl CheckpointPolicy {
    /// Checkpoint every `n` steps, keep everything.
    pub fn every(n: u64) -> Self {
        assert!(n > 0, "checkpoint interval must be positive");
        CheckpointPolicy {
            every_steps: Some(n),
            on_transient_failure: false,
            retain: None,
        }
    }

    /// Never checkpoint on an interval (combine with
    /// [`CheckpointPolicy::and_on_transient_failure`]).
    pub fn never() -> Self {
        CheckpointPolicy {
            every_steps: None,
            on_transient_failure: false,
            retain: None,
        }
    }

    /// Also checkpoint after transient-failure recoveries.
    pub fn and_on_transient_failure(mut self) -> Self {
        self.on_transient_failure = true;
        self
    }

    /// Keep only the most recent `k` snapshots (a ring).
    pub fn retaining(mut self, k: usize) -> Self {
        assert!(k > 0, "retention ring must hold at least one snapshot");
        self.retain = Some(k);
        self
    }

    /// The coordinator-side cadence this policy induces.
    pub fn cadence(&self) -> CheckpointCadence {
        CheckpointCadence {
            every_steps: self.every_steps,
            after_transient: self.on_transient_failure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let p = CheckpointPolicy::every(100)
            .and_on_transient_failure()
            .retaining(3);
        assert_eq!(p.every_steps, Some(100));
        assert!(p.on_transient_failure);
        assert_eq!(p.retain, Some(3));
        let c = p.cadence();
        assert_eq!(c.every_steps, Some(100));
        assert!(c.after_transient);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_is_refused() {
        let _ = CheckpointPolicy::every(0);
    }
}
