//! Where snapshots live.
//!
//! Both backends persist the *encoded* form (header + CRC + JSON), so
//! every load path — including the in-memory one tests use — exercises
//! the same checksum verification a real restore would.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use neesgrid_gridsim::SimClock;
use neesgrid_repo::VirtualStore;

use crate::snapshot::{decode, encode, CheckpointError, Snapshot};

/// A place snapshots are saved to and resumed from.
pub trait CheckpointStore: Send + Sync {
    /// Persist a snapshot (keyed by run id + step; overwrites).
    fn save(&self, snapshot: &Snapshot) -> Result<(), CheckpointError>;

    /// Load and verify the snapshot for `run_id` at `step`.
    fn load(&self, run_id: &str, step: u64) -> Result<Snapshot, CheckpointError>;

    /// Steps with stored snapshots for `run_id`, ascending.
    fn list(&self, run_id: &str) -> Vec<u64>;

    /// Drop the snapshot at `step`; returns whether it existed.
    fn delete(&self, run_id: &str, step: u64) -> bool;

    /// Load and verify the most recent snapshot for `run_id`.
    fn load_latest(&self, run_id: &str) -> Result<Snapshot, CheckpointError> {
        match self.list(run_id).last() {
            Some(&step) => self.load(run_id, step),
            None => Err(CheckpointError::NotFound {
                run_id: run_id.to_string(),
                step: None,
            }),
        }
    }
}

/// Encoded snapshots keyed by (run id, step).
type EncodedEntries = BTreeMap<(String, u64), Vec<u8>>;

/// In-memory store; clones share contents.
#[derive(Debug, Clone, Default)]
pub struct MemoryCheckpointStore {
    entries: Arc<Mutex<EncodedEntries>>,
}

impl MemoryCheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CheckpointStore for MemoryCheckpointStore {
    fn save(&self, snapshot: &Snapshot) -> Result<(), CheckpointError> {
        self.entries
            .lock()
            .insert((snapshot.run_id.clone(), snapshot.step), encode(snapshot));
        Ok(())
    }

    fn load(&self, run_id: &str, step: u64) -> Result<Snapshot, CheckpointError> {
        let entries = self.entries.lock();
        let bytes =
            entries
                .get(&(run_id.to_string(), step))
                .ok_or_else(|| CheckpointError::NotFound {
                    run_id: run_id.to_string(),
                    step: Some(step),
                })?;
        decode(bytes)
    }

    fn list(&self, run_id: &str) -> Vec<u64> {
        self.entries
            .lock()
            .keys()
            .filter(|(r, _)| r == run_id)
            .map(|&(_, s)| s)
            .collect()
    }

    fn delete(&self, run_id: &str, step: u64) -> bool {
        self.entries
            .lock()
            .remove(&(run_id.to_string(), step))
            .is_some()
    }
}

/// Store persisting through the NEESgrid repository's backing store —
/// the same [`VirtualStore`] the experiment's data files ship to, under
/// `<prefix>/<run_id>/checkpoints/step-NNNNNN.ckpt`. Because
/// `VirtualStore` clones share state, checkpoints survive tearing down
/// and rebuilding the whole deployment (the crash-and-restart path).
#[derive(Clone)]
pub struct RepoCheckpointStore {
    store: VirtualStore,
    clock: Arc<SimClock>,
    prefix: String,
}

impl RepoCheckpointStore {
    /// Wrap a repository store; snapshots go under `prefix`.
    pub fn new(store: VirtualStore, clock: Arc<SimClock>, prefix: impl Into<String>) -> Self {
        let mut prefix = prefix.into();
        while prefix.ends_with('/') {
            prefix.pop();
        }
        RepoCheckpointStore {
            store,
            clock,
            prefix,
        }
    }

    fn dir(&self, run_id: &str) -> String {
        format!("{}/{run_id}/checkpoints/", self.prefix)
    }

    fn path(&self, run_id: &str, step: u64) -> String {
        format!("{}step-{step:06}.ckpt", self.dir(run_id))
    }
}

impl CheckpointStore for RepoCheckpointStore {
    fn save(&self, snapshot: &Snapshot) -> Result<(), CheckpointError> {
        self.store.put(
            self.path(&snapshot.run_id, snapshot.step),
            Bytes::from(encode(snapshot)),
            self.clock.now(),
        );
        Ok(())
    }

    fn load(&self, run_id: &str, step: u64) -> Result<Snapshot, CheckpointError> {
        let file =
            self.store
                .get(&self.path(run_id, step))
                .ok_or_else(|| CheckpointError::NotFound {
                    run_id: run_id.to_string(),
                    step: Some(step),
                })?;
        decode(&file.content)
    }

    fn list(&self, run_id: &str) -> Vec<u64> {
        let dir = self.dir(run_id);
        self.store
            .list(&dir)
            .into_iter()
            .filter_map(|p| {
                p.strip_prefix(&dir)?
                    .strip_prefix("step-")?
                    .strip_suffix(".ckpt")?
                    .parse()
                    .ok()
            })
            .collect()
    }

    fn delete(&self, run_id: &str, step: u64) -> bool {
        self.store.delete(&self.path(run_id, step))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::sample;
    use neesgrid_gridsim::SimTime;

    fn roundtrip(store: &dyn CheckpointStore) {
        assert!(matches!(
            store.load_latest("r"),
            Err(CheckpointError::NotFound { .. })
        ));
        for step in [100u64, 300, 200] {
            store.save(&sample("r", step)).unwrap();
        }
        store.save(&sample("other", 50)).unwrap();
        assert_eq!(store.list("r"), vec![100, 200, 300]);
        assert_eq!(store.load("r", 200).unwrap().step, 200);
        assert_eq!(store.load_latest("r").unwrap().step, 300);
        assert!(store.delete("r", 300));
        assert!(!store.delete("r", 300));
        assert_eq!(store.load_latest("r").unwrap().step, 200);
        assert!(matches!(
            store.load("r", 999),
            Err(CheckpointError::NotFound {
                step: Some(999),
                ..
            })
        ));
    }

    #[test]
    fn memory_store_roundtrip() {
        roundtrip(&MemoryCheckpointStore::new());
    }

    #[test]
    fn repo_store_roundtrip() {
        let store = RepoCheckpointStore::new(VirtualStore::new(), SimClock::new(), "/ckpt/");
        roundtrip(&store);
    }

    #[test]
    fn repo_store_survives_rebuild_and_rejects_corruption() {
        let backing = VirtualStore::new();
        let clock = SimClock::new();
        let store = RepoCheckpointStore::new(backing.clone(), Arc::clone(&clock), "/experiments");
        store.save(&sample("most", 1400)).unwrap();

        // A "new deployment" wraps a clone of the same backing store.
        let store2 = RepoCheckpointStore::new(backing.clone(), clock, "/experiments");
        assert_eq!(store2.load_latest("most").unwrap().step, 1400);

        // Corrupt one payload byte at rest: the load must refuse it.
        let path = "/experiments/most/checkpoints/step-001400.ckpt";
        let mut bytes = backing.get(path).unwrap().content.to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        backing.put(path, Bytes::from(bytes), SimTime::from_secs(1));
        assert!(matches!(
            store2.load("most", 1400),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }
}
