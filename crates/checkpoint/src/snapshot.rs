//! The snapshot format: versioned, checksummed, human-inspectable.
//!
//! On the wire and in the store a snapshot is one header line —
//! `NEESGRID-CKPT v1 crc32=xxxxxxxx` — followed by the JSON payload the
//! CRC guards. The CRC is the same IEEE CRC-32 the repository's GridFTP
//! transfers use, so a checkpoint is verified with the same machinery as
//! any other experiment artifact.

use serde::{Deserialize, Serialize};
use serde_json::Value;

use neesgrid_coordinator::CoordinatorState;
use neesgrid_gridsim::SimTime;
use neesgrid_repo::crc32;

/// Current snapshot format version.
pub const FORMAT_VERSION: u32 = 1;

const HEADER_PREFIX: &str = "NEESGRID-CKPT v";

/// One site's share of a checkpoint: the opaque state document returned
/// by the site's `snapshotSite` NTCP operation (transactions, dedup
/// cache, plugin/specimen state).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteCheckpoint {
    /// Site name.
    pub site: String,
    /// The server's state document.
    pub state: Value,
}

/// A complete, resumable picture of a distributed run at a step boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// Which run this belongs to (store key).
    pub run_id: String,
    /// The next step to run; steps `0..step` are committed.
    pub step: u64,
    /// Virtual time at capture; restored into the clock on resume.
    pub at: SimTime,
    /// The coordinator endpoint's next-correlation watermark. A restarted
    /// coordinator fast-forwards past it so fresh request ids never
    /// collide with entries in a restored server dedup cache.
    pub correlation_watermark: u64,
    /// The coordinator's integrator/history/log state.
    pub coordinator: CoordinatorState,
    /// Per-site server state.
    pub sites: Vec<SiteCheckpoint>,
}

/// Everything that can go wrong saving, loading, or applying a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// No snapshot under that key.
    NotFound {
        /// Run id looked up.
        run_id: String,
        /// Specific step, or `None` for "latest".
        step: Option<u64>,
    },
    /// The header line is missing or malformed.
    BadHeader(String),
    /// The header names a format version this code does not read.
    UnsupportedVersion(u32),
    /// The payload does not match the header checksum — corrupted at
    /// rest or in transit; refusing to resume from it.
    ChecksumMismatch {
        /// CRC the header claims.
        expected: u32,
        /// CRC of the payload as found.
        actual: u32,
    },
    /// The payload passed its checksum but failed to parse.
    Malformed(String),
    /// A site failed to produce or accept its state.
    Site {
        /// Which site.
        site: String,
        /// What went wrong.
        error: String,
    },
    /// Backend storage failure.
    Store(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::NotFound {
                run_id,
                step: Some(s),
            } => {
                write!(f, "no checkpoint for run {run_id} at step {s}")
            }
            CheckpointError::NotFound { run_id, step: None } => {
                write!(f, "no checkpoint for run {run_id}")
            }
            CheckpointError::BadHeader(m) => write!(f, "bad checkpoint header: {m}"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CheckpointError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint payload corrupted: crc32 {actual:08x} != header {expected:08x}"
            ),
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint payload: {m}"),
            CheckpointError::Site { site, error } => {
                write!(f, "site {site} checkpoint failure: {error}")
            }
            CheckpointError::Store(m) => write!(f, "checkpoint store failure: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Encode a snapshot: header line + JSON payload.
pub fn encode(snapshot: &Snapshot) -> Vec<u8> {
    // analyzer:allow(no-unwrap, reason = "Snapshot is a plain derive(Serialize) tree of JSON-safe types; self-serialization is infallible")
    let payload = serde_json::to_string(snapshot).expect("serialize snapshot");
    let crc = crc32(payload.as_bytes());
    let mut out = format!("{HEADER_PREFIX}{} crc32={crc:08x}\n", snapshot.version).into_bytes();
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Decode and verify a snapshot. The CRC is checked before the payload is
/// parsed; any corruption is rejected, never silently resumed from.
pub fn decode(bytes: &[u8]) -> Result<Snapshot, CheckpointError> {
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| CheckpointError::BadHeader("missing header line".into()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|e| CheckpointError::BadHeader(e.to_string()))?;
    let rest = header
        .strip_prefix(HEADER_PREFIX)
        .ok_or_else(|| CheckpointError::BadHeader(format!("unrecognized header: {header}")))?;
    let (version_s, crc_s) = rest
        .split_once(" crc32=")
        .ok_or_else(|| CheckpointError::BadHeader(format!("no crc32 field: {header}")))?;
    let version: u32 = version_s
        .parse()
        .map_err(|_| CheckpointError::BadHeader(format!("bad version: {version_s}")))?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let expected = u32::from_str_radix(crc_s, 16)
        .map_err(|_| CheckpointError::BadHeader(format!("bad crc32: {crc_s}")))?;
    let payload = &bytes[newline + 1..];
    let actual = crc32(payload);
    if actual != expected {
        return Err(CheckpointError::ChecksumMismatch { expected, actual });
    }
    let text =
        std::str::from_utf8(payload).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
    let snapshot: Snapshot =
        serde_json::from_str(text).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
    Ok(snapshot)
}

#[cfg(test)]
pub(crate) fn sample(run_id: &str, step: u64) -> Snapshot {
    use neesgrid_structsim::psd::PsdHistory;
    Snapshot {
        version: FORMAT_VERSION,
        run_id: run_id.to_string(),
        step,
        at: SimTime::from_secs(step),
        correlation_watermark: 6 * step + 1,
        coordinator: CoordinatorState {
            step,
            d_prev: vec![0.001, -0.002],
            d_curr: vec![0.0015, -0.0025],
            history: PsdHistory {
                dt: 0.01,
                displacement: vec![vec![0.001, -0.002]; step as usize],
                velocity: vec![vec![0.1, -0.2]; step as usize],
                acceleration: vec![vec![1.0, -2.0]; step as usize],
                restoring: vec![vec![200.0, -400.0]; step as usize],
                steps_completed: step as usize,
            },
            log: neesgrid_coordinator::ExperimentLog::new(),
            retransmissions: 3,
        },
        sites: vec![SiteCheckpoint {
            site: "uiuc".into(),
            state: serde_json::json!({"executions": step, "dedup": []}),
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample("most-public", 1400);
        let bytes = encode(&snap);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, snap);
        // Bit-exact f64s through the JSON payload.
        assert_eq!(back.coordinator.d_prev, snap.coordinator.d_prev);
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let snap = sample("most-public", 7);
        let mut bytes = encode(&snap);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        match decode(&bytes) {
            Err(CheckpointError::ChecksumMismatch { expected, actual }) => {
                assert_ne!(expected, actual)
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_header_is_rejected() {
        let snap = sample("r", 1);
        let mut bytes = encode(&snap);
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(CheckpointError::BadHeader(_))));
        assert!(matches!(
            decode(b"no newline at all"),
            Err(CheckpointError::BadHeader(_))
        ));
    }

    #[test]
    fn future_version_is_refused() {
        let snap = sample("r", 1);
        let bytes = encode(&snap);
        let text = String::from_utf8(bytes).unwrap();
        let bumped = text.replacen("NEESGRID-CKPT v1 ", "NEESGRID-CKPT v2 ", 1);
        assert_eq!(
            decode(bumped.as_bytes()),
            Err(CheckpointError::UnsupportedVersion(2))
        );
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let snap = sample("r", 3);
        let bytes = encode(&snap);
        let truncated = &bytes[..bytes.len() - 10];
        assert!(matches!(
            decode(truncated),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }
}
