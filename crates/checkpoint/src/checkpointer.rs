//! Assembling, saving, and re-applying snapshots.
//!
//! The [`Checkpointer`] owns the pieces a snapshot needs beyond the
//! coordinator's own state: one NTCP client per site on a *dedicated
//! checkpointer endpoint* (so snapshot RPCs never ride the experiment
//! links — the deterministic fault schedules key on per-link message
//! indices, and checkpointing must not shift them), the coordinator's RPC
//! mux (for the correlation watermark), and the shared virtual clock.

use std::sync::Arc;

use neesgrid_coordinator::{CoordinatorState, ExperimentOutcome, SimulationCoordinator};
use neesgrid_gridsim::SimClock;
use neesgrid_ntcp::NtcpClient;
use neesgrid_ogsi::RpcMux;
use neesgrid_structsim::GroundMotion;
use neesgrid_telemetry::{Field, Telemetry};

use crate::policy::CheckpointPolicy;
use crate::snapshot::{CheckpointError, SiteCheckpoint, Snapshot, FORMAT_VERSION};
use crate::store::CheckpointStore;

/// Captures and persists snapshots; restores sites on resume.
pub struct Checkpointer {
    run_id: String,
    policy: CheckpointPolicy,
    store: Arc<dyn CheckpointStore>,
    sites: Vec<(String, NtcpClient)>,
    mux: Arc<RpcMux>,
    clock: Arc<SimClock>,
    saved: Vec<u64>,
    telemetry: Telemetry,
}

impl Checkpointer {
    /// Assemble a checkpointer. `sites` are (name, client) pairs whose
    /// clients live on the dedicated checkpointer endpoint; `mux` is the
    /// *coordinator's* mux, whose correlation watermark the snapshot must
    /// carry.
    pub fn new(
        run_id: impl Into<String>,
        policy: CheckpointPolicy,
        store: Arc<dyn CheckpointStore>,
        sites: Vec<(String, NtcpClient)>,
        mux: Arc<RpcMux>,
        clock: Arc<SimClock>,
    ) -> Self {
        Checkpointer {
            run_id: run_id.into(),
            policy,
            store,
            sites,
            mux,
            clock,
            saved: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Install a telemetry handle: each successful save emits a
    /// `checkpoint/snapshot` instant carrying the step and serialized
    /// snapshot size. Defaults to disabled.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The policy in force.
    pub fn policy(&self) -> &CheckpointPolicy {
        &self.policy
    }

    /// Capture a full snapshot at the boundary `coordinator` describes.
    pub fn capture(&self, coordinator: &CoordinatorState) -> Result<Snapshot, CheckpointError> {
        let mut sites = Vec::with_capacity(self.sites.len());
        for (site, client) in &self.sites {
            let state = client.snapshot_site().map_err(|e| CheckpointError::Site {
                site: site.clone(),
                error: e.to_string(),
            })?;
            sites.push(SiteCheckpoint {
                site: site.clone(),
                state,
            });
        }
        Ok(Snapshot {
            version: FORMAT_VERSION,
            run_id: self.run_id.clone(),
            step: coordinator.step,
            at: self.clock.now(),
            correlation_watermark: self.mux.correlation_watermark(),
            coordinator: coordinator.clone(),
            sites,
        })
    }

    /// Capture, persist, and prune per the retention ring. Returns the
    /// checkpointed step.
    pub fn save(&mut self, coordinator: &CoordinatorState) -> Result<u64, CheckpointError> {
        let snapshot = self.capture(coordinator)?;
        let step = snapshot.step;
        self.store.save(&snapshot)?;
        if self.telemetry.enabled() {
            let bytes = serde_json::to_vec(&snapshot)
                .map(|v| v.len() as u64)
                .unwrap_or(0);
            self.telemetry.counter_add("checkpoint.saves", 1);
            self.telemetry.instant(
                self.clock.now().as_nanos(),
                "checkpoint",
                "snapshot",
                [("step", Field::U64(step)), ("bytes", Field::U64(bytes))],
            );
        }
        if !self.saved.contains(&step) {
            self.saved.push(step);
        }
        if let Some(k) = self.policy.retain {
            while self.saved.len() > k {
                let oldest = self.saved.remove(0);
                self.store.delete(&self.run_id, oldest);
            }
        }
        Ok(step)
    }

    /// Re-apply a snapshot to a freshly built deployment: advance the
    /// clock to the capture instant, fast-forward the coordinator's
    /// correlation counter past every request id the restored dedup
    /// caches remember, and push each site's state back to its server.
    /// After this, [`SimulationCoordinator::resume`] continues the run.
    pub fn prepare_resume(&self, snapshot: &Snapshot) -> Result<(), CheckpointError> {
        self.clock.advance_to(snapshot.at);
        self.mux
            .advance_correlation_to(snapshot.correlation_watermark);
        for (site, client) in &self.sites {
            let state = snapshot
                .sites
                .iter()
                .find(|s| &s.site == site)
                .ok_or_else(|| CheckpointError::Site {
                    site: site.clone(),
                    error: "no state for this site in the snapshot".into(),
                })?;
            client
                .restore_site(&state.state)
                .map_err(|e| CheckpointError::Site {
                    site: site.clone(),
                    error: e.to_string(),
                })?;
        }
        Ok(())
    }

    /// Load the most recent snapshot for this checkpointer's run.
    pub fn load_latest(&self) -> Result<Snapshot, CheckpointError> {
        self.store.load_latest(&self.run_id)
    }
}

/// Checkpoint & resume as coordinator methods (extension trait — the
/// coordinator crate stays ignorant of stores and formats).
pub trait Checkpointable {
    /// Install `checkpointer` so the run snapshots itself at the
    /// boundaries its policy selects.
    fn checkpoint_into(&mut self, checkpointer: Checkpointer);

    /// Continue a run from `snapshot` (site state must already be
    /// restored — see [`Checkpointer::prepare_resume`]).
    fn resume_from(
        &mut self,
        snapshot: Snapshot,
        motion: &GroundMotion,
        steps: usize,
    ) -> ExperimentOutcome;
}

impl Checkpointable for SimulationCoordinator {
    fn checkpoint_into(&mut self, checkpointer: Checkpointer) {
        let cadence = checkpointer.policy.cadence();
        let mut checkpointer = checkpointer;
        self.set_checkpoint_hook(
            cadence,
            Box::new(move |state| {
                checkpointer
                    .save(state)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }),
        );
    }

    fn resume_from(
        &mut self,
        snapshot: Snapshot,
        motion: &GroundMotion,
        steps: usize,
    ) -> ExperimentOutcome {
        self.resume(motion, steps, snapshot.coordinator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::sample;
    use crate::store::MemoryCheckpointStore;
    use neesgrid_gridsim::{NetworkConfig, VirtualNetwork};

    fn bare_checkpointer(
        policy: CheckpointPolicy,
        store: Arc<dyn CheckpointStore>,
    ) -> Checkpointer {
        // No sites: exercises scheduling/retention without a deployment.
        let net = VirtualNetwork::new(NetworkConfig::default());
        Checkpointer::new(
            "r",
            policy,
            store,
            Vec::new(),
            RpcMux::new(net.endpoint("coordinator").unwrap()),
            net.clock(),
        )
    }

    #[test]
    fn retention_ring_keeps_only_the_newest_k() {
        let store = Arc::new(MemoryCheckpointStore::new());
        let mut ck = bare_checkpointer(
            CheckpointPolicy::every(100).retaining(2),
            Arc::<MemoryCheckpointStore>::clone(&store),
        );
        for step in [100u64, 200, 300, 400] {
            let snap = sample("r", step);
            ck.save(&snap.coordinator).unwrap();
        }
        assert_eq!(store.list("r"), vec![300, 400]);
        assert_eq!(ck.load_latest().unwrap().step, 400);
    }

    #[test]
    fn capture_carries_watermark_and_clock() {
        let store = Arc::new(MemoryCheckpointStore::new());
        let net = VirtualNetwork::new(NetworkConfig::default());
        let mux = RpcMux::new(net.endpoint("coordinator").unwrap());
        mux.advance_correlation_to(42);
        net.clock()
            .advance_to(neesgrid_gridsim::SimTime::from_secs(9));
        let ck = Checkpointer::new(
            "r",
            CheckpointPolicy::every(1),
            store,
            Vec::new(),
            Arc::clone(&mux),
            net.clock(),
        );
        let snap = ck.capture(&sample("r", 5).coordinator).unwrap();
        assert_eq!(snap.correlation_watermark, 42);
        assert_eq!(snap.at, neesgrid_gridsim::SimTime::from_secs(9));
        assert_eq!(snap.step, 5);
    }
}
