//! The UCLA field test — §5's wireless building experiment.
//!
//! Shakes a four-story office-building model with harmonic and
//! earthquake-type force histories, measures with a lossy 802.11 wireless
//! accelerometer array, buffers at a mobile command center, and archives
//! to the laboratory over an interruptible satellite uplink (GridFTP
//! restart markers).
//!
//! Run with: `cargo run --example field_test`

use neesgrid::most::{run_field_test, Excitation, FieldTestConfig};
use neesgrid::repo::VirtualStore;

fn main() {
    let store = VirtualStore::new();

    for (label, excitation) in [
        (
            "Harmonic forcing (1.6 Hz, near resonance)",
            Excitation::Harmonic {
                amplitude_n: 50_000.0,
                frequency_hz: 1.6,
            },
        ),
        (
            "Earthquake-type force history",
            Excitation::EarthquakeType {
                seed: 1994,
                peak_n: 80_000.0,
            },
        ),
    ] {
        let mut config = FieldTestConfig::ucla_office_building();
        config.excitation = excitation;
        println!("=== {label} ===");
        println!(
            "  building fundamental mode : {:.2} Hz",
            config.fundamental_frequency_hz()
        );
        let out = run_field_test(&config, &store);
        for (floor, peak) in out.peak_floor_accel.iter().enumerate() {
            println!("  floor {floor} peak acceleration : {peak:.4} m/s²");
        }
        println!(
            "  wireless telemetry        : {} samples received, {} lost ({:.1}%)",
            out.samples_received,
            out.samples_lost,
            100.0 * out.samples_lost as f64 / (out.samples_received + out.samples_lost) as f64
        );
        println!(
            "  satellite uplink          : {} bytes archived, {} restart-marker resumes",
            out.archived_bytes, out.uplink_resumes
        );
        println!(
            "  identified frequency      : {:.2} Hz (from roof record)",
            out.estimated_fundamental_hz
        );
        println!();
    }
    println!(
        "Laboratory archive now holds {} files ({} bytes).",
        store.list("/experiments/ucla-field/").len(),
        store.total_bytes()
    );
}
