//! The MOST experiment, end to end — §3.4 replayed.
//!
//! Runs the three historical configurations in order, exactly as the team
//! did in 2003: the simulation-only rehearsal, the dry run (with transient
//! network failures, all recovered), and the public run (which terminates
//! prematurely at step 1493 of 1500 on an unhandled link reset, with 130+
//! remote participants watching).
//!
//! Run with: `cargo run --release --example most_experiment`
//! (add `-- --steps 300` for a quicker, proportionally scaled replay;
//! add `-- --trace most.jsonl` to also replay the public run fully
//! instrumented and write its telemetry trace for
//! `cargo run -p neesgrid-telemetry -- report most.jsonl`)

use neesgrid::coordinator::Termination;
use neesgrid::most::{MostDeployment, Scenario};
use neesgrid::telemetry::Telemetry;

fn main() {
    let steps: usize = std::env::args()
        .skip_while(|a| a != "--steps")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1500);
    let trace_path: Option<String> = std::env::args().skip_while(|a| a != "--trace").nth(1);

    for scenario in [
        Scenario::SimulationOnly,
        Scenario::DryRun,
        Scenario::PublicRun,
    ] {
        let label = match scenario {
            Scenario::SimulationOnly => "Simulation-only rehearsal",
            Scenario::DryRun => "Dry run",
            Scenario::PublicRun => "Public run",
        };
        println!("=== {label} ({steps} steps) ===");
        let artifacts = scenario.run_with_steps(steps);
        let r = &artifacts.report;
        println!(
            "  steps completed : {}/{}",
            r.steps_completed, r.steps_requested
        );
        match &artifacts.outcome.termination {
            Termination::Completed => println!("  termination     : ran to completion"),
            Termination::Aborted { step, site, error } => {
                println!("  termination     : ABORTED at step {step} — {site}: {error}")
            }
        }
        println!(
            "  transient fails : {} recovered by NTCP retransmission",
            r.transient_recoveries
        );
        println!(
            "  peak response   : UIUC {:.2} mm, CU {:.2} mm",
            r.peak_displacement_m[0] * 1e3,
            r.peak_displacement_m[1] * 1e3
        );
        println!(
            "  experiment time : {} (virtual; physical actuation dominates)",
            r.virtual_duration
        );
        println!(
            "  data archived   : {} files, {} bytes (incremental ingestion)",
            artifacts.files_ingested, artifacts.bytes_ingested
        );
        println!(
            "  participants    : {} remote (NSDS samples published: {})",
            artifacts.participants, artifacts.nsds_published
        );
        println!();
    }
    println!("Paper §3.4: dry run completed 1500/1500 in ~5.5 h; public run");
    println!("exited prematurely at step 1493 after >5 h; >130 participants.");

    if let Some(path) = trace_path {
        let scenario = Scenario::PublicRun;
        let telemetry = Telemetry::recording();
        let deployment = MostDeployment::build_with_telemetry(
            scenario.config().with_steps(steps),
            scenario.participants(),
            telemetry.clone(),
        );
        deployment.set_fault_plan(scenario.fault_plan(steps));
        deployment.run(scenario.policy());
        std::fs::write(&path, telemetry.export_jsonl()).expect("write trace");
        for dump in telemetry.dumps() {
            println!("{dump}");
        }
        println!("Instrumented public-run trace written to {path}; render with");
        println!("  cargo run -p neesgrid-telemetry -- report {path}");
    }
}
