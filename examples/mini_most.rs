//! Mini-MOST — the tabletop rig of §3.5.
//!
//! Runs the stepper-motor hardware emulation and the first-order kinetic
//! simulator stand-in side by side, printing the response summary and a
//! small ASCII hysteresis sketch of the beam.
//!
//! Run with: `cargo run --example mini_most`

use neesgrid::most::{run_mini_most, MiniMostConfig};

fn main() {
    for (label, config) in [
        (
            "Stepper-motor rig (LabVIEW plugin)",
            MiniMostConfig::tabletop(),
        ),
        (
            "First-order kinetic simulator",
            MiniMostConfig::kinetic_simulator(),
        ),
    ] {
        println!("=== Mini-MOST: {label} ===");
        let out = run_mini_most(&config);
        println!(
            "  steps completed : {}/{} ({})",
            out.steps_completed,
            config.steps,
            if out.completed {
                "completed"
            } else {
                "aborted"
            }
        );
        println!(
            "  peak beam tip   : {:.3} mm (travel limit ±20 mm)",
            out.peak_displacement_m * 1e3
        );
        let forces = out.history.restoring_series(0);
        let peak_force = forces.iter().fold(0.0f64, |m, f| m.max(f.abs()));
        println!("  peak beam force : {peak_force:.2} N");
        println!();
    }

    // Sketch the rig run's displacement history.
    let out = run_mini_most(&MiniMostConfig::tabletop());
    let series = out.history.displacement_series(0);
    let peak = out.peak_displacement_m.max(1e-12);
    println!("Beam-tip displacement history (each row = 10 steps):");
    for chunk in series.chunks(10) {
        let mean: f64 = chunk.iter().sum::<f64>() / chunk.len() as f64;
        let cols = 60;
        let pos = ((mean / peak) * (cols as f64 / 2.0)).round() as i64 + cols / 2;
        let pos = pos.clamp(0, cols) as usize;
        let mut row = vec![' '; cols as usize + 1];
        row[(cols / 2) as usize] = '|';
        row[pos] = '*';
        println!("  {}", row.iter().collect::<String>());
    }
}
