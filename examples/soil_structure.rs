//! Soil–structure interaction — the §5 follow-on experiment.
//!
//! "Earthquake engineers at RPI, UIUC and Lehigh University plan to use
//! the NEESgrid framework to study soil-structure interaction in an
//! experiment involving two structural sites (UIUC and Lehigh), one
//! geotechnical site (RPI), and a computational simulation node at NCSA.
//! The experiment will focus on an idealized model of the
//! Collector-Distributor 36 of the Santa Monica Freeway that was damaged
//! in the 1994 Northridge earthquake."
//!
//! Four NTCP sites, three global DOFs, one coordinator — the same
//! framework MOST used, demonstrating that nothing in it is specific to
//! the two-column frame.
//!
//! Run with: `cargo run --example soil_structure`

use std::sync::Arc;
use std::time::Duration;

use neesgrid::coordinator::{FaultPolicy, SimCoordBuilder, Termination};
use neesgrid::gridsim::{NetworkConfig, NodeId, VirtualNetwork};
use neesgrid::gsi::{ActionLimits, DistinguishedName, SitePolicy};
use neesgrid::ntcp::{NtcpClient, NtcpServer, SimulationPlugin};
use neesgrid::ogsi::{RpcClient, RpcMux, ServiceContainer};
use neesgrid::structsim::element::CouplingSpring;
use neesgrid::structsim::material::{BilinearHysteretic, LinearElastic};
use neesgrid::structsim::substructure::{SimulatedSubstructure, Substructure};
use neesgrid::structsim::GroundMotion;

fn main() {
    let net = VirtualNetwork::new(NetworkConfig::default());
    let caller = DistinguishedName::nees_user("NCSA", "SSI Coordinator");
    let mux = RpcMux::new(net.endpoint("coordinator").unwrap());

    // DOF 0: soil (RPI centrifuge). DOF 1: UIUC pier. DOF 2: Lehigh pier.
    type SiteSpec<'a> = (&'a str, Box<dyn Substructure>, Vec<usize>, f64);
    let sites: Vec<SiteSpec> = vec![
        (
            "rpi",
            Box::new(SimulatedSubstructure::spring_to_ground(
                "rpi-centrifuge-soil",
                Box::new(BilinearHysteretic::new(5.0e6, 20_000.0, 0.15)),
            )),
            vec![0],
            5.0e6,
        ),
        (
            "uiuc",
            Box::new(SimulatedSubstructure::spring_to_ground(
                "uiuc-pier",
                Box::new(LinearElastic::new(1.2e6)),
            )),
            vec![1],
            1.2e6,
        ),
        (
            "lehigh",
            Box::new(SimulatedSubstructure::spring_to_ground(
                "lehigh-pier",
                Box::new(LinearElastic::new(1.0e6)),
            )),
            vec![2],
            1.0e6,
        ),
        (
            "ncsa",
            {
                let mut c = SimulatedSubstructure::new("ncsa-coupling", 3);
                c.add_element(Box::new(CouplingSpring::new(
                    0,
                    1,
                    Box::new(LinearElastic::new(3.0e6)),
                )));
                c.add_element(Box::new(CouplingSpring::new(
                    0,
                    2,
                    Box::new(LinearElastic::new(3.0e6)),
                )));
                c.add_element(Box::new(CouplingSpring::new(
                    1,
                    2,
                    Box::new(LinearElastic::new(0.8e6)),
                )));
                Box::new(c)
            },
            vec![0, 1, 2],
            3.0e6,
        ),
    ];

    let limits = ActionLimits {
        max_displacement_m: 0.20,
        max_velocity_mps: 0.05,
        max_force_n: 2.0e6,
    };
    let mut builder = SimCoordBuilder::new(vec![50_000.0, 9_000.0, 8_000.0], net.clock())
        .dt(0.005)
        .fault_policy(FaultPolicy::Full {
            max_step_retries: 3,
        });
    for (name, sub, dofs, k) in sites {
        let server = NtcpServer::new(
            name,
            SitePolicy::permissive(name, limits),
            Box::new(SimulationPlugin::new(format!("{name}-plugin"), sub)),
            net.clock(),
        );
        let _ = ServiceContainer::new(net.endpoint(name).unwrap())
            .with_service("ntcp", Box::new(server))
            .permissive()
            .run();
        let client = NtcpClient::new(
            RpcClient::new(Arc::clone(&mux), NodeId::new(name), "ntcp", caller.clone())
                .with_attempt_timeout(Duration::from_millis(100)),
        );
        builder = builder.site(name, client, dofs, k);
    }

    let mut coordinator = builder.build();
    // Northridge-flavoured synthetic motion (the 1994 event motivated the
    // CD-36 study).
    let motion = GroundMotion::synthetic(1994, 0.005, 1200, 2.5);
    println!("Running 1,200 steps across rpi / uiuc / lehigh / ncsa …");
    let outcome = coordinator.run(&motion, 1200);

    match &outcome.termination {
        Termination::Completed => println!("completed {} steps", outcome.steps_completed()),
        Termination::Aborted { step, site, error } => {
            println!("aborted at step {step} ({site}): {error}")
        }
    }
    for (dof, label) in [(0, "RPI soil"), (1, "UIUC pier"), (2, "Lehigh pier")] {
        let peak_d = outcome.history.peak_displacement(dof) * 1e3;
        let peak_f = outcome
            .history
            .restoring_series(dof)
            .iter()
            .fold(0.0f64, |m, &f| m.max(f.abs()))
            / 1e3;
        println!("  {label:<12}: peak {peak_d:7.2} mm, peak restoring {peak_f:8.1} kN");
    }
    println!(
        "  transport retransmissions observed: {}",
        outcome.retransmissions
    );
}
