//! Quickstart: one NTCP site, three transactions.
//!
//! The smallest NEESgrid experiment: stand up a virtual network, host an
//! NTCP server whose control plugin drives a numerical substructure, and
//! walk a client through the propose → execute → inspect protocol —
//! including a rejection by site policy and a cancellation.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use neesgrid::gridsim::{NetworkConfig, NodeId, SimTime, VirtualNetwork};
use neesgrid::gsi::{ActionLimits, DistinguishedName, SitePolicy};
use neesgrid::ntcp::{ControlPoint, NtcpClient, NtcpServer, SimulationPlugin};
use neesgrid::ogsi::{RpcClient, RpcMux, ServiceContainer};
use neesgrid::structsim::{LinearElastic, SimulatedSubstructure};

fn main() {
    // 1. A virtual grid network with one experiment site.
    let net = VirtualNetwork::new(NetworkConfig::default());

    // 2. The site: an NTCP server whose plugin drives a 200 kN/m column
    //    model, under MOST-grade policy limits (±50 mm, 100 kN).
    let substructure =
        SimulatedSubstructure::spring_to_ground("demo-column", Box::new(LinearElastic::new(2.0e5)));
    let server = NtcpServer::new(
        "demo-site",
        SitePolicy::permissive("demo-site", ActionLimits::most_large_scale()),
        Box::new(SimulationPlugin::new("demo-plugin", Box::new(substructure))),
        net.clock(),
    );
    let _site = ServiceContainer::new(net.endpoint("demo-site").unwrap())
        .with_service("ntcp", Box::new(server))
        .permissive()
        .run();

    // 3. A client.
    let mux = RpcMux::new(net.endpoint("operator").unwrap());
    let client = NtcpClient::new(
        RpcClient::new(
            mux,
            NodeId::new("demo-site"),
            "ntcp",
            DistinguishedName::nees_user("DEMO", "Operator"),
        )
        .with_attempt_timeout(Duration::from_millis(100)),
    );

    // 4. Propose and execute a 10 mm displacement.
    client
        .propose(
            "step-1",
            vec![ControlPoint::displacement("dof-0", 0.010, 2_000.0)],
            SimTime::from_secs(30),
        )
        .expect("proposal accepted");
    let results = client.execute("step-1").expect("execution");
    println!(
        "step-1: imposed {:.4} m, measured restoring force {:.1} N",
        results[0].displacement_m, results[0].force_n
    );

    // 5. A dangerous proposal is refused before anything moves.
    let err = client
        .propose(
            "step-2",
            vec![ControlPoint::displacement("dof-0", 0.5, 100_000.0)],
            SimTime::from_secs(30),
        )
        .expect_err("policy must refuse");
    println!("step-2 refused: {err}");

    // 6. Propose, think better of it, cancel.
    client
        .propose(
            "step-3",
            vec![ControlPoint::displacement("dof-0", -0.005, 1_000.0)],
            SimTime::from_secs(30),
        )
        .expect("proposal accepted");
    client.cancel("step-3").expect("cancelled");
    println!("step-3 cancelled before execution");

    // 7. Inspect the server's transaction ledger via OGSI service data.
    let status = client.get_status().expect("status");
    println!(
        "server status: {} transactions ({} completed, {} rejected, {} cancelled), {} executions",
        status["transactions"],
        status["completed"],
        status["rejected"],
        status["cancelled"],
        status["executions"],
    );
    let t1 = client
        .get_transaction("step-1")
        .expect("transaction record");
    println!(
        "step-1 final state: {} (state trail length {})",
        t1["state"],
        t1["timestamps"].as_array().map(Vec::len).unwrap_or(0)
    );
}
