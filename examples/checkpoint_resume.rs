//! Crash-and-restart: the §3.4 public run, checkpointed every 100 steps,
//! killed at step 1493 by the fault schedule, then resumed by a freshly
//! built deployment from the last snapshot and run to completion.
//!
//! ```bash
//! cargo run --release --example checkpoint_resume
//! ```

use std::sync::Arc;

use neesgrid::checkpoint::{CheckpointPolicy, CheckpointStore, RepoCheckpointStore};
use neesgrid::coordinator::{FaultPolicy, Termination};
use neesgrid::most::{public_run_fault_plan, MostConfig, MostDeployment};
use neesgrid::repo::VirtualStore;

const RUN_ID: &str = "most-public";
const PREFIX: &str = "/experiments/most";

fn checkpoint_store(backing: &VirtualStore, d: &MostDeployment) -> Arc<dyn CheckpointStore> {
    Arc::new(RepoCheckpointStore::new(backing.clone(), d.clock(), PREFIX))
}

fn main() {
    let config = MostConfig::simulation_only();
    // The repository's backing store outlives each deployment — this is
    // what survives the crash.
    let backing = VirtualStore::new();

    println!("=== The doomed run (checkpointed every 100 steps) ===");
    let deployment = MostDeployment::build_with_store(config.clone(), 0, backing.clone());
    deployment.set_fault_plan(public_run_fault_plan(config.steps));
    let store = checkpoint_store(&backing, &deployment);
    let crashed = deployment.run_with_checkpoints(
        FaultPolicy::Partial,
        RUN_ID,
        CheckpointPolicy::every(100),
        store,
    );
    match &crashed.outcome.termination {
        Termination::Aborted { step, site, error } => {
            println!("  died at step       : {step} ({site}: {error})")
        }
        Termination::Completed => println!("  completed — unexpected for this schedule"),
    }
    println!(
        "  checkpoints saved  : {}",
        crashed.outcome.log.checkpoints_saved()
    );
    let snapshots = backing.list(&format!("{PREFIX}/{RUN_ID}/checkpoints/"));
    println!(
        "  snapshots at rest  : {} (latest: {})",
        snapshots.len(),
        snapshots.last().map(String::as_str).unwrap_or("none")
    );

    println!("=== Crash and restart: a fresh deployment resumes ===");
    let deployment = MostDeployment::build_with_store(config.clone(), 0, backing.clone());
    let store = checkpoint_store(&backing, &deployment);
    let resumed = deployment
        .resume_latest(
            FaultPolicy::Full {
                max_step_retries: 3,
            },
            RUN_ID,
            store,
        )
        .expect("resume from the latest snapshot");
    println!(
        "  steps completed    : {}/{}",
        resumed.outcome.steps_completed(),
        config.steps
    );

    println!("=== Against a run that never crashed ===");
    let baseline = MostDeployment::build(config, 0).run(FaultPolicy::Full {
        max_step_retries: 3,
    });
    let diff = resumed
        .outcome
        .history
        .max_displacement_difference(&baseline.outcome.history);
    println!("  max |Δdisplacement|: {diff:e} m");
    println!(
        "  bit-identical      : {}",
        resumed.outcome.history == baseline.outcome.history
    );
}
