/root/repo/target/release/examples/field_test-ee04d38437ad2cd1.d: examples/field_test.rs

/root/repo/target/release/examples/field_test-ee04d38437ad2cd1: examples/field_test.rs

examples/field_test.rs:
