/root/repo/target/release/examples/verify_probe-b915b4d4656691ca.d: examples/verify_probe.rs

/root/repo/target/release/examples/verify_probe-b915b4d4656691ca: examples/verify_probe.rs

examples/verify_probe.rs:
