/root/repo/target/release/examples/checkpoint_resume-3e3eb3242b3fb38a.d: examples/checkpoint_resume.rs

/root/repo/target/release/examples/checkpoint_resume-3e3eb3242b3fb38a: examples/checkpoint_resume.rs

examples/checkpoint_resume.rs:
