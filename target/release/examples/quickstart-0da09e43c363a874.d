/root/repo/target/release/examples/quickstart-0da09e43c363a874.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0da09e43c363a874: examples/quickstart.rs

examples/quickstart.rs:
