/root/repo/target/release/examples/most_experiment-d2fb951907ade5fa.d: examples/most_experiment.rs

/root/repo/target/release/examples/most_experiment-d2fb951907ade5fa: examples/most_experiment.rs

examples/most_experiment.rs:
