/root/repo/target/release/examples/soil_structure-899d29466695a851.d: examples/soil_structure.rs

/root/repo/target/release/examples/soil_structure-899d29466695a851: examples/soil_structure.rs

examples/soil_structure.rs:
