/root/repo/target/release/examples/mini_most-d519fa42fa2eafe8.d: examples/mini_most.rs

/root/repo/target/release/examples/mini_most-d519fa42fa2eafe8: examples/mini_most.rs

examples/mini_most.rs:
