/root/repo/target/release/deps/neesgrid_structsim-52d31b988dceeb55.d: crates/structsim/src/lib.rs crates/structsim/src/element.rs crates/structsim/src/groundmotion.rs crates/structsim/src/integrate.rs crates/structsim/src/linalg.rs crates/structsim/src/material.rs crates/structsim/src/model.rs crates/structsim/src/psd.rs crates/structsim/src/substructure.rs

/root/repo/target/release/deps/libneesgrid_structsim-52d31b988dceeb55.rlib: crates/structsim/src/lib.rs crates/structsim/src/element.rs crates/structsim/src/groundmotion.rs crates/structsim/src/integrate.rs crates/structsim/src/linalg.rs crates/structsim/src/material.rs crates/structsim/src/model.rs crates/structsim/src/psd.rs crates/structsim/src/substructure.rs

/root/repo/target/release/deps/libneesgrid_structsim-52d31b988dceeb55.rmeta: crates/structsim/src/lib.rs crates/structsim/src/element.rs crates/structsim/src/groundmotion.rs crates/structsim/src/integrate.rs crates/structsim/src/linalg.rs crates/structsim/src/material.rs crates/structsim/src/model.rs crates/structsim/src/psd.rs crates/structsim/src/substructure.rs

crates/structsim/src/lib.rs:
crates/structsim/src/element.rs:
crates/structsim/src/groundmotion.rs:
crates/structsim/src/integrate.rs:
crates/structsim/src/linalg.rs:
crates/structsim/src/material.rs:
crates/structsim/src/model.rs:
crates/structsim/src/psd.rs:
crates/structsim/src/substructure.rs:
