/root/repo/target/release/deps/neesgrid_ogsi-2184386e58d91633.d: crates/ogsi/src/lib.rs crates/ogsi/src/container.rs crates/ogsi/src/dedup.rs crates/ogsi/src/fault.rs crates/ogsi/src/lifetime.rs crates/ogsi/src/rpc.rs crates/ogsi/src/sde.rs crates/ogsi/src/service.rs

/root/repo/target/release/deps/libneesgrid_ogsi-2184386e58d91633.rlib: crates/ogsi/src/lib.rs crates/ogsi/src/container.rs crates/ogsi/src/dedup.rs crates/ogsi/src/fault.rs crates/ogsi/src/lifetime.rs crates/ogsi/src/rpc.rs crates/ogsi/src/sde.rs crates/ogsi/src/service.rs

/root/repo/target/release/deps/libneesgrid_ogsi-2184386e58d91633.rmeta: crates/ogsi/src/lib.rs crates/ogsi/src/container.rs crates/ogsi/src/dedup.rs crates/ogsi/src/fault.rs crates/ogsi/src/lifetime.rs crates/ogsi/src/rpc.rs crates/ogsi/src/sde.rs crates/ogsi/src/service.rs

crates/ogsi/src/lib.rs:
crates/ogsi/src/container.rs:
crates/ogsi/src/dedup.rs:
crates/ogsi/src/fault.rs:
crates/ogsi/src/lifetime.rs:
crates/ogsi/src/rpc.rs:
crates/ogsi/src/sde.rs:
crates/ogsi/src/service.rs:
