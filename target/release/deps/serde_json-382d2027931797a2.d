/root/repo/target/release/deps/serde_json-382d2027931797a2.d: crates/shims/serde_json/src/lib.rs crates/shims/serde_json/src/parse.rs crates/shims/serde_json/src/print.rs

/root/repo/target/release/deps/libserde_json-382d2027931797a2.rlib: crates/shims/serde_json/src/lib.rs crates/shims/serde_json/src/parse.rs crates/shims/serde_json/src/print.rs

/root/repo/target/release/deps/libserde_json-382d2027931797a2.rmeta: crates/shims/serde_json/src/lib.rs crates/shims/serde_json/src/parse.rs crates/shims/serde_json/src/print.rs

crates/shims/serde_json/src/lib.rs:
crates/shims/serde_json/src/parse.rs:
crates/shims/serde_json/src/print.rs:
