/root/repo/target/release/deps/neesgrid_most-fbcd1e5946e0b557.d: crates/most/src/lib.rs crates/most/src/config.rs crates/most/src/field_test.rs crates/most/src/frame_model.rs crates/most/src/mini.rs crates/most/src/report.rs crates/most/src/runner.rs crates/most/src/scenarios.rs

/root/repo/target/release/deps/libneesgrid_most-fbcd1e5946e0b557.rlib: crates/most/src/lib.rs crates/most/src/config.rs crates/most/src/field_test.rs crates/most/src/frame_model.rs crates/most/src/mini.rs crates/most/src/report.rs crates/most/src/runner.rs crates/most/src/scenarios.rs

/root/repo/target/release/deps/libneesgrid_most-fbcd1e5946e0b557.rmeta: crates/most/src/lib.rs crates/most/src/config.rs crates/most/src/field_test.rs crates/most/src/frame_model.rs crates/most/src/mini.rs crates/most/src/report.rs crates/most/src/runner.rs crates/most/src/scenarios.rs

crates/most/src/lib.rs:
crates/most/src/config.rs:
crates/most/src/field_test.rs:
crates/most/src/frame_model.rs:
crates/most/src/mini.rs:
crates/most/src/report.rs:
crates/most/src/runner.rs:
crates/most/src/scenarios.rs:
