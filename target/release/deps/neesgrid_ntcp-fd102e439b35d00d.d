/root/repo/target/release/deps/neesgrid_ntcp-fd102e439b35d00d.d: crates/ntcp/src/lib.rs crates/ntcp/src/client.rs crates/ntcp/src/msg.rs crates/ntcp/src/plugin.rs crates/ntcp/src/server.rs crates/ntcp/src/transaction.rs

/root/repo/target/release/deps/libneesgrid_ntcp-fd102e439b35d00d.rlib: crates/ntcp/src/lib.rs crates/ntcp/src/client.rs crates/ntcp/src/msg.rs crates/ntcp/src/plugin.rs crates/ntcp/src/server.rs crates/ntcp/src/transaction.rs

/root/repo/target/release/deps/libneesgrid_ntcp-fd102e439b35d00d.rmeta: crates/ntcp/src/lib.rs crates/ntcp/src/client.rs crates/ntcp/src/msg.rs crates/ntcp/src/plugin.rs crates/ntcp/src/server.rs crates/ntcp/src/transaction.rs

crates/ntcp/src/lib.rs:
crates/ntcp/src/client.rs:
crates/ntcp/src/msg.rs:
crates/ntcp/src/plugin.rs:
crates/ntcp/src/server.rs:
crates/ntcp/src/transaction.rs:
