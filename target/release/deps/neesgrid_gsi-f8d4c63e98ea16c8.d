/root/repo/target/release/deps/neesgrid_gsi-f8d4c63e98ea16c8.d: crates/gsi/src/lib.rs crates/gsi/src/auth.rs crates/gsi/src/cas.rs crates/gsi/src/credential.rs crates/gsi/src/identity.rs crates/gsi/src/policy.rs crates/gsi/src/sim_crypto.rs

/root/repo/target/release/deps/libneesgrid_gsi-f8d4c63e98ea16c8.rlib: crates/gsi/src/lib.rs crates/gsi/src/auth.rs crates/gsi/src/cas.rs crates/gsi/src/credential.rs crates/gsi/src/identity.rs crates/gsi/src/policy.rs crates/gsi/src/sim_crypto.rs

/root/repo/target/release/deps/libneesgrid_gsi-f8d4c63e98ea16c8.rmeta: crates/gsi/src/lib.rs crates/gsi/src/auth.rs crates/gsi/src/cas.rs crates/gsi/src/credential.rs crates/gsi/src/identity.rs crates/gsi/src/policy.rs crates/gsi/src/sim_crypto.rs

crates/gsi/src/lib.rs:
crates/gsi/src/auth.rs:
crates/gsi/src/cas.rs:
crates/gsi/src/credential.rs:
crates/gsi/src/identity.rs:
crates/gsi/src/policy.rs:
crates/gsi/src/sim_crypto.rs:
