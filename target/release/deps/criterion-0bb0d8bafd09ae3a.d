/root/repo/target/release/deps/criterion-0bb0d8bafd09ae3a.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0bb0d8bafd09ae3a.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0bb0d8bafd09ae3a.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
