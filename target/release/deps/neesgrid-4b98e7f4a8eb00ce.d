/root/repo/target/release/deps/neesgrid-4b98e7f4a8eb00ce.d: src/lib.rs

/root/repo/target/release/deps/libneesgrid-4b98e7f4a8eb00ce.rlib: src/lib.rs

/root/repo/target/release/deps/libneesgrid-4b98e7f4a8eb00ce.rmeta: src/lib.rs

src/lib.rs:
