/root/repo/target/release/deps/fig12_checkpoint_overhead-e28970c2df0156ad.d: crates/bench/benches/fig12_checkpoint_overhead.rs

/root/repo/target/release/deps/fig12_checkpoint_overhead-e28970c2df0156ad: crates/bench/benches/fig12_checkpoint_overhead.rs

crates/bench/benches/fig12_checkpoint_overhead.rs:
