/root/repo/target/release/deps/serde_derive-e0529f2aaa2526bc.d: crates/shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-e0529f2aaa2526bc.so: crates/shims/serde_derive/src/lib.rs

crates/shims/serde_derive/src/lib.rs:
