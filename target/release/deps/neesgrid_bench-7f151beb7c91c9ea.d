/root/repo/target/release/deps/neesgrid_bench-7f151beb7c91c9ea.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libneesgrid_bench-7f151beb7c91c9ea.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libneesgrid_bench-7f151beb7c91c9ea.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
