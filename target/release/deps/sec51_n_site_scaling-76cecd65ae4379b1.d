/root/repo/target/release/deps/sec51_n_site_scaling-76cecd65ae4379b1.d: crates/bench/benches/sec51_n_site_scaling.rs

/root/repo/target/release/deps/sec51_n_site_scaling-76cecd65ae4379b1: crates/bench/benches/sec51_n_site_scaling.rs

crates/bench/benches/sec51_n_site_scaling.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
