/root/repo/target/release/deps/neesgrid_repo-2629e816e1ac9948.d: crates/repo/src/lib.rs crates/repo/src/checksum.rs crates/repo/src/gridftp.rs crates/repo/src/https_bridge.rs crates/repo/src/ingest.rs crates/repo/src/metadata.rs crates/repo/src/nfms.rs crates/repo/src/nmds.rs crates/repo/src/service.rs crates/repo/src/storage.rs

/root/repo/target/release/deps/libneesgrid_repo-2629e816e1ac9948.rlib: crates/repo/src/lib.rs crates/repo/src/checksum.rs crates/repo/src/gridftp.rs crates/repo/src/https_bridge.rs crates/repo/src/ingest.rs crates/repo/src/metadata.rs crates/repo/src/nfms.rs crates/repo/src/nmds.rs crates/repo/src/service.rs crates/repo/src/storage.rs

/root/repo/target/release/deps/libneesgrid_repo-2629e816e1ac9948.rmeta: crates/repo/src/lib.rs crates/repo/src/checksum.rs crates/repo/src/gridftp.rs crates/repo/src/https_bridge.rs crates/repo/src/ingest.rs crates/repo/src/metadata.rs crates/repo/src/nfms.rs crates/repo/src/nmds.rs crates/repo/src/service.rs crates/repo/src/storage.rs

crates/repo/src/lib.rs:
crates/repo/src/checksum.rs:
crates/repo/src/gridftp.rs:
crates/repo/src/https_bridge.rs:
crates/repo/src/ingest.rs:
crates/repo/src/metadata.rs:
crates/repo/src/nfms.rs:
crates/repo/src/nmds.rs:
crates/repo/src/service.rs:
crates/repo/src/storage.rs:
