/root/repo/target/release/deps/crossbeam-680774f4527d9be1.d: crates/shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-680774f4527d9be1.rlib: crates/shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-680774f4527d9be1.rmeta: crates/shims/crossbeam/src/lib.rs

crates/shims/crossbeam/src/lib.rs:
