/root/repo/target/release/deps/serde-bd4b4e945ab4d43c.d: crates/shims/serde/src/lib.rs crates/shims/serde/src/de.rs crates/shims/serde/src/ser.rs crates/shims/serde/src/value.rs

/root/repo/target/release/deps/libserde-bd4b4e945ab4d43c.rlib: crates/shims/serde/src/lib.rs crates/shims/serde/src/de.rs crates/shims/serde/src/ser.rs crates/shims/serde/src/value.rs

/root/repo/target/release/deps/libserde-bd4b4e945ab4d43c.rmeta: crates/shims/serde/src/lib.rs crates/shims/serde/src/de.rs crates/shims/serde/src/ser.rs crates/shims/serde/src/value.rs

crates/shims/serde/src/lib.rs:
crates/shims/serde/src/de.rs:
crates/shims/serde/src/ser.rs:
crates/shims/serde/src/value.rs:
