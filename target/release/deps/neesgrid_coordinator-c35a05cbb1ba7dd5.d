/root/repo/target/release/deps/neesgrid_coordinator-c35a05cbb1ba7dd5.d: crates/coordinator/src/lib.rs crates/coordinator/src/builder.rs crates/coordinator/src/coordinator.rs crates/coordinator/src/log.rs crates/coordinator/src/policy.rs crates/coordinator/src/remote.rs

/root/repo/target/release/deps/libneesgrid_coordinator-c35a05cbb1ba7dd5.rlib: crates/coordinator/src/lib.rs crates/coordinator/src/builder.rs crates/coordinator/src/coordinator.rs crates/coordinator/src/log.rs crates/coordinator/src/policy.rs crates/coordinator/src/remote.rs

/root/repo/target/release/deps/libneesgrid_coordinator-c35a05cbb1ba7dd5.rmeta: crates/coordinator/src/lib.rs crates/coordinator/src/builder.rs crates/coordinator/src/coordinator.rs crates/coordinator/src/log.rs crates/coordinator/src/policy.rs crates/coordinator/src/remote.rs

crates/coordinator/src/lib.rs:
crates/coordinator/src/builder.rs:
crates/coordinator/src/coordinator.rs:
crates/coordinator/src/log.rs:
crates/coordinator/src/policy.rs:
crates/coordinator/src/remote.rs:
