/root/repo/target/release/deps/neesgrid_chef-2c4fb6972d3a2fc2.d: crates/chef/src/lib.rs crates/chef/src/chat.rs crates/chef/src/notebook.rs crates/chef/src/portal.rs crates/chef/src/session.rs crates/chef/src/telepresence.rs crates/chef/src/viewer.rs

/root/repo/target/release/deps/libneesgrid_chef-2c4fb6972d3a2fc2.rlib: crates/chef/src/lib.rs crates/chef/src/chat.rs crates/chef/src/notebook.rs crates/chef/src/portal.rs crates/chef/src/session.rs crates/chef/src/telepresence.rs crates/chef/src/viewer.rs

/root/repo/target/release/deps/libneesgrid_chef-2c4fb6972d3a2fc2.rmeta: crates/chef/src/lib.rs crates/chef/src/chat.rs crates/chef/src/notebook.rs crates/chef/src/portal.rs crates/chef/src/session.rs crates/chef/src/telepresence.rs crates/chef/src/viewer.rs

crates/chef/src/lib.rs:
crates/chef/src/chat.rs:
crates/chef/src/notebook.rs:
crates/chef/src/portal.rs:
crates/chef/src/session.rs:
crates/chef/src/telepresence.rs:
crates/chef/src/viewer.rs:
