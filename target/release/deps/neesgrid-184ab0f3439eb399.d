/root/repo/target/release/deps/neesgrid-184ab0f3439eb399.d: src/lib.rs

/root/repo/target/release/deps/libneesgrid-184ab0f3439eb399.rlib: src/lib.rs

/root/repo/target/release/deps/libneesgrid-184ab0f3439eb399.rmeta: src/lib.rs

src/lib.rs:
