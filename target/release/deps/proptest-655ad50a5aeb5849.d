/root/repo/target/release/deps/proptest-655ad50a5aeb5849.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-655ad50a5aeb5849.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-655ad50a5aeb5849.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
