/root/repo/target/release/deps/neesgrid_analyzer-69d494618cd4e1e7.d: crates/analyzer/src/lib.rs crates/analyzer/src/checker.rs crates/analyzer/src/lexer.rs crates/analyzer/src/report.rs crates/analyzer/src/rules.rs

/root/repo/target/release/deps/libneesgrid_analyzer-69d494618cd4e1e7.rlib: crates/analyzer/src/lib.rs crates/analyzer/src/checker.rs crates/analyzer/src/lexer.rs crates/analyzer/src/report.rs crates/analyzer/src/rules.rs

/root/repo/target/release/deps/libneesgrid_analyzer-69d494618cd4e1e7.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/checker.rs crates/analyzer/src/lexer.rs crates/analyzer/src/report.rs crates/analyzer/src/rules.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/checker.rs:
crates/analyzer/src/lexer.rs:
crates/analyzer/src/report.rs:
crates/analyzer/src/rules.rs:
