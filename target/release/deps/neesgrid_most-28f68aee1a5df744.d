/root/repo/target/release/deps/neesgrid_most-28f68aee1a5df744.d: crates/most/src/lib.rs crates/most/src/config.rs crates/most/src/field_test.rs crates/most/src/frame_model.rs crates/most/src/mini.rs crates/most/src/report.rs crates/most/src/runner.rs crates/most/src/scenarios.rs

/root/repo/target/release/deps/libneesgrid_most-28f68aee1a5df744.rlib: crates/most/src/lib.rs crates/most/src/config.rs crates/most/src/field_test.rs crates/most/src/frame_model.rs crates/most/src/mini.rs crates/most/src/report.rs crates/most/src/runner.rs crates/most/src/scenarios.rs

/root/repo/target/release/deps/libneesgrid_most-28f68aee1a5df744.rmeta: crates/most/src/lib.rs crates/most/src/config.rs crates/most/src/field_test.rs crates/most/src/frame_model.rs crates/most/src/mini.rs crates/most/src/report.rs crates/most/src/runner.rs crates/most/src/scenarios.rs

crates/most/src/lib.rs:
crates/most/src/config.rs:
crates/most/src/field_test.rs:
crates/most/src/frame_model.rs:
crates/most/src/mini.rs:
crates/most/src/report.rs:
crates/most/src/runner.rs:
crates/most/src/scenarios.rs:
