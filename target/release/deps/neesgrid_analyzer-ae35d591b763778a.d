/root/repo/target/release/deps/neesgrid_analyzer-ae35d591b763778a.d: crates/analyzer/src/main.rs

/root/repo/target/release/deps/neesgrid_analyzer-ae35d591b763778a: crates/analyzer/src/main.rs

crates/analyzer/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analyzer
