/root/repo/target/release/deps/neesgrid_daq-bde71b64235e272e.d: crates/daq/src/lib.rs crates/daq/src/channel.rs crates/daq/src/filedrop.rs crates/daq/src/nsds.rs crates/daq/src/sampler.rs crates/daq/src/timeseries.rs

/root/repo/target/release/deps/libneesgrid_daq-bde71b64235e272e.rlib: crates/daq/src/lib.rs crates/daq/src/channel.rs crates/daq/src/filedrop.rs crates/daq/src/nsds.rs crates/daq/src/sampler.rs crates/daq/src/timeseries.rs

/root/repo/target/release/deps/libneesgrid_daq-bde71b64235e272e.rmeta: crates/daq/src/lib.rs crates/daq/src/channel.rs crates/daq/src/filedrop.rs crates/daq/src/nsds.rs crates/daq/src/sampler.rs crates/daq/src/timeseries.rs

crates/daq/src/lib.rs:
crates/daq/src/channel.rs:
crates/daq/src/filedrop.rs:
crates/daq/src/nsds.rs:
crates/daq/src/sampler.rs:
crates/daq/src/timeseries.rs:
