/root/repo/target/release/deps/neesgrid_checkpoint-cb1f4f5fa3c134ef.d: crates/checkpoint/src/lib.rs crates/checkpoint/src/checkpointer.rs crates/checkpoint/src/policy.rs crates/checkpoint/src/snapshot.rs crates/checkpoint/src/store.rs

/root/repo/target/release/deps/libneesgrid_checkpoint-cb1f4f5fa3c134ef.rlib: crates/checkpoint/src/lib.rs crates/checkpoint/src/checkpointer.rs crates/checkpoint/src/policy.rs crates/checkpoint/src/snapshot.rs crates/checkpoint/src/store.rs

/root/repo/target/release/deps/libneesgrid_checkpoint-cb1f4f5fa3c134ef.rmeta: crates/checkpoint/src/lib.rs crates/checkpoint/src/checkpointer.rs crates/checkpoint/src/policy.rs crates/checkpoint/src/snapshot.rs crates/checkpoint/src/store.rs

crates/checkpoint/src/lib.rs:
crates/checkpoint/src/checkpointer.rs:
crates/checkpoint/src/policy.rs:
crates/checkpoint/src/snapshot.rs:
crates/checkpoint/src/store.rs:
