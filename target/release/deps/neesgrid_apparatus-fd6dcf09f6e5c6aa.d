/root/repo/target/release/deps/neesgrid_apparatus-fd6dcf09f6e5c6aa.d: crates/apparatus/src/lib.rs crates/apparatus/src/actuator.rs crates/apparatus/src/control_system.rs crates/apparatus/src/integration.rs crates/apparatus/src/robot.rs crates/apparatus/src/sensors.rs crates/apparatus/src/specimen.rs crates/apparatus/src/stepper.rs crates/apparatus/src/xpc.rs

/root/repo/target/release/deps/libneesgrid_apparatus-fd6dcf09f6e5c6aa.rlib: crates/apparatus/src/lib.rs crates/apparatus/src/actuator.rs crates/apparatus/src/control_system.rs crates/apparatus/src/integration.rs crates/apparatus/src/robot.rs crates/apparatus/src/sensors.rs crates/apparatus/src/specimen.rs crates/apparatus/src/stepper.rs crates/apparatus/src/xpc.rs

/root/repo/target/release/deps/libneesgrid_apparatus-fd6dcf09f6e5c6aa.rmeta: crates/apparatus/src/lib.rs crates/apparatus/src/actuator.rs crates/apparatus/src/control_system.rs crates/apparatus/src/integration.rs crates/apparatus/src/robot.rs crates/apparatus/src/sensors.rs crates/apparatus/src/specimen.rs crates/apparatus/src/stepper.rs crates/apparatus/src/xpc.rs

crates/apparatus/src/lib.rs:
crates/apparatus/src/actuator.rs:
crates/apparatus/src/control_system.rs:
crates/apparatus/src/integration.rs:
crates/apparatus/src/robot.rs:
crates/apparatus/src/sensors.rs:
crates/apparatus/src/specimen.rs:
crates/apparatus/src/stepper.rs:
crates/apparatus/src/xpc.rs:
