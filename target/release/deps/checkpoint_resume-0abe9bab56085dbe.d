/root/repo/target/release/deps/checkpoint_resume-0abe9bab56085dbe.d: tests/checkpoint_resume.rs

/root/repo/target/release/deps/checkpoint_resume-0abe9bab56085dbe: tests/checkpoint_resume.rs

tests/checkpoint_resume.rs:
