/root/repo/target/release/deps/neesgrid_gridsim-4684239398844a80.d: crates/gridsim/src/lib.rs crates/gridsim/src/event.rs crates/gridsim/src/fault.rs crates/gridsim/src/latency.rs crates/gridsim/src/message.rs crates/gridsim/src/network.rs crates/gridsim/src/node.rs crates/gridsim/src/stats.rs crates/gridsim/src/time.rs

/root/repo/target/release/deps/libneesgrid_gridsim-4684239398844a80.rlib: crates/gridsim/src/lib.rs crates/gridsim/src/event.rs crates/gridsim/src/fault.rs crates/gridsim/src/latency.rs crates/gridsim/src/message.rs crates/gridsim/src/network.rs crates/gridsim/src/node.rs crates/gridsim/src/stats.rs crates/gridsim/src/time.rs

/root/repo/target/release/deps/libneesgrid_gridsim-4684239398844a80.rmeta: crates/gridsim/src/lib.rs crates/gridsim/src/event.rs crates/gridsim/src/fault.rs crates/gridsim/src/latency.rs crates/gridsim/src/message.rs crates/gridsim/src/network.rs crates/gridsim/src/node.rs crates/gridsim/src/stats.rs crates/gridsim/src/time.rs

crates/gridsim/src/lib.rs:
crates/gridsim/src/event.rs:
crates/gridsim/src/fault.rs:
crates/gridsim/src/latency.rs:
crates/gridsim/src/message.rs:
crates/gridsim/src/network.rs:
crates/gridsim/src/node.rs:
crates/gridsim/src/stats.rs:
crates/gridsim/src/time.rs:
