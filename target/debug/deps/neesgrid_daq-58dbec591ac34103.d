/root/repo/target/debug/deps/neesgrid_daq-58dbec591ac34103.d: crates/daq/src/lib.rs crates/daq/src/channel.rs crates/daq/src/filedrop.rs crates/daq/src/nsds.rs crates/daq/src/sampler.rs crates/daq/src/timeseries.rs

/root/repo/target/debug/deps/neesgrid_daq-58dbec591ac34103: crates/daq/src/lib.rs crates/daq/src/channel.rs crates/daq/src/filedrop.rs crates/daq/src/nsds.rs crates/daq/src/sampler.rs crates/daq/src/timeseries.rs

crates/daq/src/lib.rs:
crates/daq/src/channel.rs:
crates/daq/src/filedrop.rs:
crates/daq/src/nsds.rs:
crates/daq/src/sampler.rs:
crates/daq/src/timeseries.rs:
