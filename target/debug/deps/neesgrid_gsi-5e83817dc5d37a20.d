/root/repo/target/debug/deps/neesgrid_gsi-5e83817dc5d37a20.d: crates/gsi/src/lib.rs crates/gsi/src/auth.rs crates/gsi/src/cas.rs crates/gsi/src/credential.rs crates/gsi/src/identity.rs crates/gsi/src/policy.rs crates/gsi/src/sim_crypto.rs

/root/repo/target/debug/deps/neesgrid_gsi-5e83817dc5d37a20: crates/gsi/src/lib.rs crates/gsi/src/auth.rs crates/gsi/src/cas.rs crates/gsi/src/credential.rs crates/gsi/src/identity.rs crates/gsi/src/policy.rs crates/gsi/src/sim_crypto.rs

crates/gsi/src/lib.rs:
crates/gsi/src/auth.rs:
crates/gsi/src/cas.rs:
crates/gsi/src/credential.rs:
crates/gsi/src/identity.rs:
crates/gsi/src/policy.rs:
crates/gsi/src/sim_crypto.rs:
