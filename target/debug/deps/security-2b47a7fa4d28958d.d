/root/repo/target/debug/deps/security-2b47a7fa4d28958d.d: tests/security.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity-2b47a7fa4d28958d.rmeta: tests/security.rs Cargo.toml

tests/security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
