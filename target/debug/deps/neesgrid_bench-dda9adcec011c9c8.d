/root/repo/target/debug/deps/neesgrid_bench-dda9adcec011c9c8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_bench-dda9adcec011c9c8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
