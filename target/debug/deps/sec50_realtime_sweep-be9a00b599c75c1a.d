/root/repo/target/debug/deps/sec50_realtime_sweep-be9a00b599c75c1a.d: crates/bench/benches/sec50_realtime_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsec50_realtime_sweep-be9a00b599c75c1a.rmeta: crates/bench/benches/sec50_realtime_sweep.rs Cargo.toml

crates/bench/benches/sec50_realtime_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
