/root/repo/target/debug/deps/neesgrid_structsim-0830de2d0059239e.d: crates/structsim/src/lib.rs crates/structsim/src/element.rs crates/structsim/src/groundmotion.rs crates/structsim/src/integrate.rs crates/structsim/src/linalg.rs crates/structsim/src/material.rs crates/structsim/src/model.rs crates/structsim/src/psd.rs crates/structsim/src/substructure.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_structsim-0830de2d0059239e.rmeta: crates/structsim/src/lib.rs crates/structsim/src/element.rs crates/structsim/src/groundmotion.rs crates/structsim/src/integrate.rs crates/structsim/src/linalg.rs crates/structsim/src/material.rs crates/structsim/src/model.rs crates/structsim/src/psd.rs crates/structsim/src/substructure.rs Cargo.toml

crates/structsim/src/lib.rs:
crates/structsim/src/element.rs:
crates/structsim/src/groundmotion.rs:
crates/structsim/src/integrate.rs:
crates/structsim/src/linalg.rs:
crates/structsim/src/material.rs:
crates/structsim/src/model.rs:
crates/structsim/src/psd.rs:
crates/structsim/src/substructure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
