/root/repo/target/debug/deps/fig02_plugin_backends-8dce9da6b0d0cb79.d: crates/bench/benches/fig02_plugin_backends.rs

/root/repo/target/debug/deps/fig02_plugin_backends-8dce9da6b0d0cb79: crates/bench/benches/fig02_plugin_backends.rs

crates/bench/benches/fig02_plugin_backends.rs:
