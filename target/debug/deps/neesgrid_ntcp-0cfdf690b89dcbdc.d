/root/repo/target/debug/deps/neesgrid_ntcp-0cfdf690b89dcbdc.d: crates/ntcp/src/lib.rs crates/ntcp/src/client.rs crates/ntcp/src/msg.rs crates/ntcp/src/plugin.rs crates/ntcp/src/server.rs crates/ntcp/src/transaction.rs

/root/repo/target/debug/deps/libneesgrid_ntcp-0cfdf690b89dcbdc.rlib: crates/ntcp/src/lib.rs crates/ntcp/src/client.rs crates/ntcp/src/msg.rs crates/ntcp/src/plugin.rs crates/ntcp/src/server.rs crates/ntcp/src/transaction.rs

/root/repo/target/debug/deps/libneesgrid_ntcp-0cfdf690b89dcbdc.rmeta: crates/ntcp/src/lib.rs crates/ntcp/src/client.rs crates/ntcp/src/msg.rs crates/ntcp/src/plugin.rs crates/ntcp/src/server.rs crates/ntcp/src/transaction.rs

crates/ntcp/src/lib.rs:
crates/ntcp/src/client.rs:
crates/ntcp/src/msg.rs:
crates/ntcp/src/plugin.rs:
crates/ntcp/src/server.rs:
crates/ntcp/src/transaction.rs:
