/root/repo/target/debug/deps/sec34_most_run-ac1ed4f13ccdcd67.d: crates/bench/benches/sec34_most_run.rs Cargo.toml

/root/repo/target/debug/deps/libsec34_most_run-ac1ed4f13ccdcd67.rmeta: crates/bench/benches/sec34_most_run.rs Cargo.toml

crates/bench/benches/sec34_most_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
