/root/repo/target/debug/deps/fig01_ntcp_transactions-9e273f2513ec195a.d: crates/bench/benches/fig01_ntcp_transactions.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_ntcp_transactions-9e273f2513ec195a.rmeta: crates/bench/benches/fig01_ntcp_transactions.rs Cargo.toml

crates/bench/benches/fig01_ntcp_transactions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
