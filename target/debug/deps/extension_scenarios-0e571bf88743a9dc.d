/root/repo/target/debug/deps/extension_scenarios-0e571bf88743a9dc.d: tests/extension_scenarios.rs

/root/repo/target/debug/deps/extension_scenarios-0e571bf88743a9dc: tests/extension_scenarios.rs

tests/extension_scenarios.rs:
