/root/repo/target/debug/deps/fig11_mini_most-500bc9f053b07412.d: crates/bench/benches/fig11_mini_most.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_mini_most-500bc9f053b07412.rmeta: crates/bench/benches/fig11_mini_most.rs Cargo.toml

crates/bench/benches/fig11_mini_most.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
