/root/repo/target/debug/deps/fig10_daq_pipeline-cfbdbc6baebef055.d: crates/bench/benches/fig10_daq_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_daq_pipeline-cfbdbc6baebef055.rmeta: crates/bench/benches/fig10_daq_pipeline.rs Cargo.toml

crates/bench/benches/fig10_daq_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
