/root/repo/target/debug/deps/sec51_n_site_scaling-63a162d97572bb48.d: crates/bench/benches/sec51_n_site_scaling.rs

/root/repo/target/debug/deps/sec51_n_site_scaling-63a162d97572bb48: crates/bench/benches/sec51_n_site_scaling.rs

crates/bench/benches/sec51_n_site_scaling.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
