/root/repo/target/debug/deps/neesgrid_analyzer-80f3c5bcbedd2183.d: crates/analyzer/src/lib.rs crates/analyzer/src/checker.rs crates/analyzer/src/lexer.rs crates/analyzer/src/report.rs crates/analyzer/src/rules.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_analyzer-80f3c5bcbedd2183.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/checker.rs crates/analyzer/src/lexer.rs crates/analyzer/src/report.rs crates/analyzer/src/rules.rs Cargo.toml

crates/analyzer/src/lib.rs:
crates/analyzer/src/checker.rs:
crates/analyzer/src/lexer.rs:
crates/analyzer/src/report.rs:
crates/analyzer/src/rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
