/root/repo/target/debug/deps/neesgrid_analyzer-345222e17f67f34d.d: crates/analyzer/src/main.rs

/root/repo/target/debug/deps/neesgrid_analyzer-345222e17f67f34d: crates/analyzer/src/main.rs

crates/analyzer/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analyzer
