/root/repo/target/debug/deps/fig03_repository-d9a9de9232c2f484.d: crates/bench/benches/fig03_repository.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_repository-d9a9de9232c2f484.rmeta: crates/bench/benches/fig03_repository.rs Cargo.toml

crates/bench/benches/fig03_repository.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
