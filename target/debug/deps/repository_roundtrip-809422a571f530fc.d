/root/repo/target/debug/deps/repository_roundtrip-809422a571f530fc.d: tests/repository_roundtrip.rs

/root/repo/target/debug/deps/repository_roundtrip-809422a571f530fc: tests/repository_roundtrip.rs

tests/repository_roundtrip.rs:
