/root/repo/target/debug/deps/neesgrid_analyzer-dd44ba6511a67b42.d: crates/analyzer/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_analyzer-dd44ba6511a67b42.rmeta: crates/analyzer/src/main.rs Cargo.toml

crates/analyzer/src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analyzer
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
