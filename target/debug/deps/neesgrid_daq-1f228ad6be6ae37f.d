/root/repo/target/debug/deps/neesgrid_daq-1f228ad6be6ae37f.d: crates/daq/src/lib.rs crates/daq/src/channel.rs crates/daq/src/filedrop.rs crates/daq/src/nsds.rs crates/daq/src/sampler.rs crates/daq/src/timeseries.rs

/root/repo/target/debug/deps/libneesgrid_daq-1f228ad6be6ae37f.rlib: crates/daq/src/lib.rs crates/daq/src/channel.rs crates/daq/src/filedrop.rs crates/daq/src/nsds.rs crates/daq/src/sampler.rs crates/daq/src/timeseries.rs

/root/repo/target/debug/deps/libneesgrid_daq-1f228ad6be6ae37f.rmeta: crates/daq/src/lib.rs crates/daq/src/channel.rs crates/daq/src/filedrop.rs crates/daq/src/nsds.rs crates/daq/src/sampler.rs crates/daq/src/timeseries.rs

crates/daq/src/lib.rs:
crates/daq/src/channel.rs:
crates/daq/src/filedrop.rs:
crates/daq/src/nsds.rs:
crates/daq/src/sampler.rs:
crates/daq/src/timeseries.rs:
