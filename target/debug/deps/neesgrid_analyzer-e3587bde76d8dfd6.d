/root/repo/target/debug/deps/neesgrid_analyzer-e3587bde76d8dfd6.d: crates/analyzer/src/lib.rs crates/analyzer/src/checker.rs crates/analyzer/src/lexer.rs crates/analyzer/src/report.rs crates/analyzer/src/rules.rs

/root/repo/target/debug/deps/libneesgrid_analyzer-e3587bde76d8dfd6.rlib: crates/analyzer/src/lib.rs crates/analyzer/src/checker.rs crates/analyzer/src/lexer.rs crates/analyzer/src/report.rs crates/analyzer/src/rules.rs

/root/repo/target/debug/deps/libneesgrid_analyzer-e3587bde76d8dfd6.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/checker.rs crates/analyzer/src/lexer.rs crates/analyzer/src/report.rs crates/analyzer/src/rules.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/checker.rs:
crates/analyzer/src/lexer.rs:
crates/analyzer/src/report.rs:
crates/analyzer/src/rules.rs:
