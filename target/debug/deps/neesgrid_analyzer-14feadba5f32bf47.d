/root/repo/target/debug/deps/neesgrid_analyzer-14feadba5f32bf47.d: crates/analyzer/src/main.rs

/root/repo/target/debug/deps/neesgrid_analyzer-14feadba5f32bf47: crates/analyzer/src/main.rs

crates/analyzer/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analyzer
