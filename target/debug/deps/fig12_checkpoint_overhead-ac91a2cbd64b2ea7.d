/root/repo/target/debug/deps/fig12_checkpoint_overhead-ac91a2cbd64b2ea7.d: crates/bench/benches/fig12_checkpoint_overhead.rs

/root/repo/target/debug/deps/fig12_checkpoint_overhead-ac91a2cbd64b2ea7: crates/bench/benches/fig12_checkpoint_overhead.rs

crates/bench/benches/fig12_checkpoint_overhead.rs:
