/root/repo/target/debug/deps/extension_scenarios-8f55f18289ecb8f1.d: tests/extension_scenarios.rs

/root/repo/target/debug/deps/extension_scenarios-8f55f18289ecb8f1: tests/extension_scenarios.rs

tests/extension_scenarios.rs:
