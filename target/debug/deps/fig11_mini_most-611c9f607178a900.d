/root/repo/target/debug/deps/fig11_mini_most-611c9f607178a900.d: crates/bench/benches/fig11_mini_most.rs

/root/repo/target/debug/deps/fig11_mini_most-611c9f607178a900: crates/bench/benches/fig11_mini_most.rs

crates/bench/benches/fig11_mini_most.rs:
