/root/repo/target/debug/deps/fig06_actuator_tracking-71306eed3adc4a7d.d: crates/bench/benches/fig06_actuator_tracking.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_actuator_tracking-71306eed3adc4a7d.rmeta: crates/bench/benches/fig06_actuator_tracking.rs Cargo.toml

crates/bench/benches/fig06_actuator_tracking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
