/root/repo/target/debug/deps/fig10_daq_pipeline-cc3354cd2492b947.d: crates/bench/benches/fig10_daq_pipeline.rs

/root/repo/target/debug/deps/fig10_daq_pipeline-cc3354cd2492b947: crates/bench/benches/fig10_daq_pipeline.rs

crates/bench/benches/fig10_daq_pipeline.rs:
