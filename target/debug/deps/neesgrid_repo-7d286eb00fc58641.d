/root/repo/target/debug/deps/neesgrid_repo-7d286eb00fc58641.d: crates/repo/src/lib.rs crates/repo/src/checksum.rs crates/repo/src/gridftp.rs crates/repo/src/https_bridge.rs crates/repo/src/ingest.rs crates/repo/src/metadata.rs crates/repo/src/nfms.rs crates/repo/src/nmds.rs crates/repo/src/service.rs crates/repo/src/storage.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_repo-7d286eb00fc58641.rmeta: crates/repo/src/lib.rs crates/repo/src/checksum.rs crates/repo/src/gridftp.rs crates/repo/src/https_bridge.rs crates/repo/src/ingest.rs crates/repo/src/metadata.rs crates/repo/src/nfms.rs crates/repo/src/nmds.rs crates/repo/src/service.rs crates/repo/src/storage.rs Cargo.toml

crates/repo/src/lib.rs:
crates/repo/src/checksum.rs:
crates/repo/src/gridftp.rs:
crates/repo/src/https_bridge.rs:
crates/repo/src/ingest.rs:
crates/repo/src/metadata.rs:
crates/repo/src/nfms.rs:
crates/repo/src/nmds.rs:
crates/repo/src/service.rs:
crates/repo/src/storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
