/root/repo/target/debug/deps/fig05_mspsds_step-29f7c0ac0130178f.d: crates/bench/benches/fig05_mspsds_step.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_mspsds_step-29f7c0ac0130178f.rmeta: crates/bench/benches/fig05_mspsds_step.rs Cargo.toml

crates/bench/benches/fig05_mspsds_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
