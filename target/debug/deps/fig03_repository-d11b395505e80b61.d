/root/repo/target/debug/deps/fig03_repository-d11b395505e80b61.d: crates/bench/benches/fig03_repository.rs

/root/repo/target/debug/deps/fig03_repository-d11b395505e80b61: crates/bench/benches/fig03_repository.rs

crates/bench/benches/fig03_repository.rs:
