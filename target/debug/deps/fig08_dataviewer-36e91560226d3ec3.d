/root/repo/target/debug/deps/fig08_dataviewer-36e91560226d3ec3.d: crates/bench/benches/fig08_dataviewer.rs

/root/repo/target/debug/deps/fig08_dataviewer-36e91560226d3ec3: crates/bench/benches/fig08_dataviewer.rs

crates/bench/benches/fig08_dataviewer.rs:
