/root/repo/target/debug/deps/proptest-3792075f881f4aa4.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3792075f881f4aa4.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3792075f881f4aa4.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
