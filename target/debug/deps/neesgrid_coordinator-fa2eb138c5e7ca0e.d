/root/repo/target/debug/deps/neesgrid_coordinator-fa2eb138c5e7ca0e.d: crates/coordinator/src/lib.rs crates/coordinator/src/builder.rs crates/coordinator/src/coordinator.rs crates/coordinator/src/log.rs crates/coordinator/src/policy.rs crates/coordinator/src/remote.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_coordinator-fa2eb138c5e7ca0e.rmeta: crates/coordinator/src/lib.rs crates/coordinator/src/builder.rs crates/coordinator/src/coordinator.rs crates/coordinator/src/log.rs crates/coordinator/src/policy.rs crates/coordinator/src/remote.rs Cargo.toml

crates/coordinator/src/lib.rs:
crates/coordinator/src/builder.rs:
crates/coordinator/src/coordinator.rs:
crates/coordinator/src/log.rs:
crates/coordinator/src/policy.rs:
crates/coordinator/src/remote.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
