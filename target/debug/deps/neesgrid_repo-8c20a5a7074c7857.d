/root/repo/target/debug/deps/neesgrid_repo-8c20a5a7074c7857.d: crates/repo/src/lib.rs crates/repo/src/checksum.rs crates/repo/src/gridftp.rs crates/repo/src/https_bridge.rs crates/repo/src/ingest.rs crates/repo/src/metadata.rs crates/repo/src/nfms.rs crates/repo/src/nmds.rs crates/repo/src/service.rs crates/repo/src/storage.rs

/root/repo/target/debug/deps/libneesgrid_repo-8c20a5a7074c7857.rlib: crates/repo/src/lib.rs crates/repo/src/checksum.rs crates/repo/src/gridftp.rs crates/repo/src/https_bridge.rs crates/repo/src/ingest.rs crates/repo/src/metadata.rs crates/repo/src/nfms.rs crates/repo/src/nmds.rs crates/repo/src/service.rs crates/repo/src/storage.rs

/root/repo/target/debug/deps/libneesgrid_repo-8c20a5a7074c7857.rmeta: crates/repo/src/lib.rs crates/repo/src/checksum.rs crates/repo/src/gridftp.rs crates/repo/src/https_bridge.rs crates/repo/src/ingest.rs crates/repo/src/metadata.rs crates/repo/src/nfms.rs crates/repo/src/nmds.rs crates/repo/src/service.rs crates/repo/src/storage.rs

crates/repo/src/lib.rs:
crates/repo/src/checksum.rs:
crates/repo/src/gridftp.rs:
crates/repo/src/https_bridge.rs:
crates/repo/src/ingest.rs:
crates/repo/src/metadata.rs:
crates/repo/src/nfms.rs:
crates/repo/src/nmds.rs:
crates/repo/src/service.rs:
crates/repo/src/storage.rs:
