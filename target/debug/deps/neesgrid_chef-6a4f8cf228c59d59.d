/root/repo/target/debug/deps/neesgrid_chef-6a4f8cf228c59d59.d: crates/chef/src/lib.rs crates/chef/src/chat.rs crates/chef/src/notebook.rs crates/chef/src/portal.rs crates/chef/src/session.rs crates/chef/src/telepresence.rs crates/chef/src/viewer.rs

/root/repo/target/debug/deps/neesgrid_chef-6a4f8cf228c59d59: crates/chef/src/lib.rs crates/chef/src/chat.rs crates/chef/src/notebook.rs crates/chef/src/portal.rs crates/chef/src/session.rs crates/chef/src/telepresence.rs crates/chef/src/viewer.rs

crates/chef/src/lib.rs:
crates/chef/src/chat.rs:
crates/chef/src/notebook.rs:
crates/chef/src/portal.rs:
crates/chef/src/session.rs:
crates/chef/src/telepresence.rs:
crates/chef/src/viewer.rs:
