/root/repo/target/debug/deps/neesgrid_bench-d26b49b481f1492c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libneesgrid_bench-d26b49b481f1492c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libneesgrid_bench-d26b49b481f1492c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
