/root/repo/target/debug/deps/security-cf941560d1aa3bf0.d: tests/security.rs

/root/repo/target/debug/deps/security-cf941560d1aa3bf0: tests/security.rs

tests/security.rs:
