/root/repo/target/debug/deps/neesgrid_analyzer-f8a4599d4a1c9c5b.d: crates/analyzer/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_analyzer-f8a4599d4a1c9c5b.rmeta: crates/analyzer/src/main.rs Cargo.toml

crates/analyzer/src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analyzer
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
