/root/repo/target/debug/deps/proptest-88f7282875bbedcb.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-88f7282875bbedcb.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
