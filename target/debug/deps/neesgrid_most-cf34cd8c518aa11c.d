/root/repo/target/debug/deps/neesgrid_most-cf34cd8c518aa11c.d: crates/most/src/lib.rs crates/most/src/config.rs crates/most/src/field_test.rs crates/most/src/frame_model.rs crates/most/src/mini.rs crates/most/src/report.rs crates/most/src/runner.rs crates/most/src/scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_most-cf34cd8c518aa11c.rmeta: crates/most/src/lib.rs crates/most/src/config.rs crates/most/src/field_test.rs crates/most/src/frame_model.rs crates/most/src/mini.rs crates/most/src/report.rs crates/most/src/runner.rs crates/most/src/scenarios.rs Cargo.toml

crates/most/src/lib.rs:
crates/most/src/config.rs:
crates/most/src/field_test.rs:
crates/most/src/frame_model.rs:
crates/most/src/mini.rs:
crates/most/src/report.rs:
crates/most/src/runner.rs:
crates/most/src/scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
