/root/repo/target/debug/deps/neesgrid_ogsi-17d191d5f5407a33.d: crates/ogsi/src/lib.rs crates/ogsi/src/container.rs crates/ogsi/src/dedup.rs crates/ogsi/src/fault.rs crates/ogsi/src/lifetime.rs crates/ogsi/src/rpc.rs crates/ogsi/src/sde.rs crates/ogsi/src/service.rs

/root/repo/target/debug/deps/neesgrid_ogsi-17d191d5f5407a33: crates/ogsi/src/lib.rs crates/ogsi/src/container.rs crates/ogsi/src/dedup.rs crates/ogsi/src/fault.rs crates/ogsi/src/lifetime.rs crates/ogsi/src/rpc.rs crates/ogsi/src/sde.rs crates/ogsi/src/service.rs

crates/ogsi/src/lib.rs:
crates/ogsi/src/container.rs:
crates/ogsi/src/dedup.rs:
crates/ogsi/src/fault.rs:
crates/ogsi/src/lifetime.rs:
crates/ogsi/src/rpc.rs:
crates/ogsi/src/sde.rs:
crates/ogsi/src/service.rs:
