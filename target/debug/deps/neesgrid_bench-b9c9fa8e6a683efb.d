/root/repo/target/debug/deps/neesgrid_bench-b9c9fa8e6a683efb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libneesgrid_bench-b9c9fa8e6a683efb.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libneesgrid_bench-b9c9fa8e6a683efb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
