/root/repo/target/debug/deps/neesgrid_apparatus-dc6b4feb18e7f2db.d: crates/apparatus/src/lib.rs crates/apparatus/src/actuator.rs crates/apparatus/src/control_system.rs crates/apparatus/src/integration.rs crates/apparatus/src/robot.rs crates/apparatus/src/sensors.rs crates/apparatus/src/specimen.rs crates/apparatus/src/stepper.rs crates/apparatus/src/xpc.rs

/root/repo/target/debug/deps/neesgrid_apparatus-dc6b4feb18e7f2db: crates/apparatus/src/lib.rs crates/apparatus/src/actuator.rs crates/apparatus/src/control_system.rs crates/apparatus/src/integration.rs crates/apparatus/src/robot.rs crates/apparatus/src/sensors.rs crates/apparatus/src/specimen.rs crates/apparatus/src/stepper.rs crates/apparatus/src/xpc.rs

crates/apparatus/src/lib.rs:
crates/apparatus/src/actuator.rs:
crates/apparatus/src/control_system.rs:
crates/apparatus/src/integration.rs:
crates/apparatus/src/robot.rs:
crates/apparatus/src/sensors.rs:
crates/apparatus/src/specimen.rs:
crates/apparatus/src/stepper.rs:
crates/apparatus/src/xpc.rs:
