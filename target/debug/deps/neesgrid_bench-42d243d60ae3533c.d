/root/repo/target/debug/deps/neesgrid_bench-42d243d60ae3533c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/neesgrid_bench-42d243d60ae3533c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
