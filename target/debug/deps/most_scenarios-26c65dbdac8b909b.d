/root/repo/target/debug/deps/most_scenarios-26c65dbdac8b909b.d: tests/most_scenarios.rs

/root/repo/target/debug/deps/most_scenarios-26c65dbdac8b909b: tests/most_scenarios.rs

tests/most_scenarios.rs:
