/root/repo/target/debug/deps/fig01_ntcp_transactions-bdf1031875d76f6d.d: crates/bench/benches/fig01_ntcp_transactions.rs

/root/repo/target/debug/deps/fig01_ntcp_transactions-bdf1031875d76f6d: crates/bench/benches/fig01_ntcp_transactions.rs

crates/bench/benches/fig01_ntcp_transactions.rs:
