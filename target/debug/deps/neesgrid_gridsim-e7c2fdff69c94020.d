/root/repo/target/debug/deps/neesgrid_gridsim-e7c2fdff69c94020.d: crates/gridsim/src/lib.rs crates/gridsim/src/event.rs crates/gridsim/src/fault.rs crates/gridsim/src/latency.rs crates/gridsim/src/message.rs crates/gridsim/src/network.rs crates/gridsim/src/node.rs crates/gridsim/src/stats.rs crates/gridsim/src/time.rs

/root/repo/target/debug/deps/libneesgrid_gridsim-e7c2fdff69c94020.rlib: crates/gridsim/src/lib.rs crates/gridsim/src/event.rs crates/gridsim/src/fault.rs crates/gridsim/src/latency.rs crates/gridsim/src/message.rs crates/gridsim/src/network.rs crates/gridsim/src/node.rs crates/gridsim/src/stats.rs crates/gridsim/src/time.rs

/root/repo/target/debug/deps/libneesgrid_gridsim-e7c2fdff69c94020.rmeta: crates/gridsim/src/lib.rs crates/gridsim/src/event.rs crates/gridsim/src/fault.rs crates/gridsim/src/latency.rs crates/gridsim/src/message.rs crates/gridsim/src/network.rs crates/gridsim/src/node.rs crates/gridsim/src/stats.rs crates/gridsim/src/time.rs

crates/gridsim/src/lib.rs:
crates/gridsim/src/event.rs:
crates/gridsim/src/fault.rs:
crates/gridsim/src/latency.rs:
crates/gridsim/src/message.rs:
crates/gridsim/src/network.rs:
crates/gridsim/src/node.rs:
crates/gridsim/src/stats.rs:
crates/gridsim/src/time.rs:
