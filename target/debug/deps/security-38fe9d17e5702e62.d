/root/repo/target/debug/deps/security-38fe9d17e5702e62.d: tests/security.rs

/root/repo/target/debug/deps/security-38fe9d17e5702e62: tests/security.rs

tests/security.rs:
