/root/repo/target/debug/deps/neesgrid_ogsi-88ef9e5f51f1ebd2.d: crates/ogsi/src/lib.rs crates/ogsi/src/container.rs crates/ogsi/src/dedup.rs crates/ogsi/src/fault.rs crates/ogsi/src/lifetime.rs crates/ogsi/src/rpc.rs crates/ogsi/src/sde.rs crates/ogsi/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_ogsi-88ef9e5f51f1ebd2.rmeta: crates/ogsi/src/lib.rs crates/ogsi/src/container.rs crates/ogsi/src/dedup.rs crates/ogsi/src/fault.rs crates/ogsi/src/lifetime.rs crates/ogsi/src/rpc.rs crates/ogsi/src/sde.rs crates/ogsi/src/service.rs Cargo.toml

crates/ogsi/src/lib.rs:
crates/ogsi/src/container.rs:
crates/ogsi/src/dedup.rs:
crates/ogsi/src/fault.rs:
crates/ogsi/src/lifetime.rs:
crates/ogsi/src/rpc.rs:
crates/ogsi/src/sde.rs:
crates/ogsi/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
