/root/repo/target/debug/deps/neesgrid_checkpoint-6d5996ea09aeb3b1.d: crates/checkpoint/src/lib.rs crates/checkpoint/src/checkpointer.rs crates/checkpoint/src/policy.rs crates/checkpoint/src/snapshot.rs crates/checkpoint/src/store.rs

/root/repo/target/debug/deps/neesgrid_checkpoint-6d5996ea09aeb3b1: crates/checkpoint/src/lib.rs crates/checkpoint/src/checkpointer.rs crates/checkpoint/src/policy.rs crates/checkpoint/src/snapshot.rs crates/checkpoint/src/store.rs

crates/checkpoint/src/lib.rs:
crates/checkpoint/src/checkpointer.rs:
crates/checkpoint/src/policy.rs:
crates/checkpoint/src/snapshot.rs:
crates/checkpoint/src/store.rs:
