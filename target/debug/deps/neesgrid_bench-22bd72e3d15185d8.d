/root/repo/target/debug/deps/neesgrid_bench-22bd72e3d15185d8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/neesgrid_bench-22bd72e3d15185d8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
