/root/repo/target/debug/deps/neesgrid_analyzer-767af44fd96525c6.d: crates/analyzer/src/lib.rs crates/analyzer/src/checker.rs crates/analyzer/src/lexer.rs crates/analyzer/src/report.rs crates/analyzer/src/rules.rs

/root/repo/target/debug/deps/neesgrid_analyzer-767af44fd96525c6: crates/analyzer/src/lib.rs crates/analyzer/src/checker.rs crates/analyzer/src/lexer.rs crates/analyzer/src/report.rs crates/analyzer/src/rules.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/checker.rs:
crates/analyzer/src/lexer.rs:
crates/analyzer/src/report.rs:
crates/analyzer/src/rules.rs:
