/root/repo/target/debug/deps/neesgrid_analyzer-701f58ed7ad75dec.d: crates/analyzer/src/lib.rs crates/analyzer/src/checker.rs crates/analyzer/src/lexer.rs crates/analyzer/src/report.rs crates/analyzer/src/rules.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_analyzer-701f58ed7ad75dec.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/checker.rs crates/analyzer/src/lexer.rs crates/analyzer/src/report.rs crates/analyzer/src/rules.rs Cargo.toml

crates/analyzer/src/lib.rs:
crates/analyzer/src/checker.rs:
crates/analyzer/src/lexer.rs:
crates/analyzer/src/report.rs:
crates/analyzer/src/rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
