/root/repo/target/debug/deps/fault_tolerance_ablation-93fe89ee876ef659.d: tests/fault_tolerance_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerance_ablation-93fe89ee876ef659.rmeta: tests/fault_tolerance_ablation.rs Cargo.toml

tests/fault_tolerance_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
