/root/repo/target/debug/deps/neesgrid_ogsi-f28a6c35ec2fa040.d: crates/ogsi/src/lib.rs crates/ogsi/src/container.rs crates/ogsi/src/dedup.rs crates/ogsi/src/fault.rs crates/ogsi/src/lifetime.rs crates/ogsi/src/rpc.rs crates/ogsi/src/sde.rs crates/ogsi/src/service.rs

/root/repo/target/debug/deps/libneesgrid_ogsi-f28a6c35ec2fa040.rlib: crates/ogsi/src/lib.rs crates/ogsi/src/container.rs crates/ogsi/src/dedup.rs crates/ogsi/src/fault.rs crates/ogsi/src/lifetime.rs crates/ogsi/src/rpc.rs crates/ogsi/src/sde.rs crates/ogsi/src/service.rs

/root/repo/target/debug/deps/libneesgrid_ogsi-f28a6c35ec2fa040.rmeta: crates/ogsi/src/lib.rs crates/ogsi/src/container.rs crates/ogsi/src/dedup.rs crates/ogsi/src/fault.rs crates/ogsi/src/lifetime.rs crates/ogsi/src/rpc.rs crates/ogsi/src/sde.rs crates/ogsi/src/service.rs

crates/ogsi/src/lib.rs:
crates/ogsi/src/container.rs:
crates/ogsi/src/dedup.rs:
crates/ogsi/src/fault.rs:
crates/ogsi/src/lifetime.rs:
crates/ogsi/src/rpc.rs:
crates/ogsi/src/sde.rs:
crates/ogsi/src/service.rs:
