/root/repo/target/debug/deps/neesgrid-0b53e3915684be44.d: src/lib.rs

/root/repo/target/debug/deps/neesgrid-0b53e3915684be44: src/lib.rs

src/lib.rs:
