/root/repo/target/debug/deps/fig02_plugin_backends-8c713465d5e6ae09.d: crates/bench/benches/fig02_plugin_backends.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_plugin_backends-8c713465d5e6ae09.rmeta: crates/bench/benches/fig02_plugin_backends.rs Cargo.toml

crates/bench/benches/fig02_plugin_backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
