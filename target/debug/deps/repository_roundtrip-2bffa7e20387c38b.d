/root/repo/target/debug/deps/repository_roundtrip-2bffa7e20387c38b.d: tests/repository_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/librepository_roundtrip-2bffa7e20387c38b.rmeta: tests/repository_roundtrip.rs Cargo.toml

tests/repository_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
