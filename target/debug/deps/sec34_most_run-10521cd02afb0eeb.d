/root/repo/target/debug/deps/sec34_most_run-10521cd02afb0eeb.d: crates/bench/benches/sec34_most_run.rs

/root/repo/target/debug/deps/sec34_most_run-10521cd02afb0eeb: crates/bench/benches/sec34_most_run.rs

crates/bench/benches/sec34_most_run.rs:
