/root/repo/target/debug/deps/neesgrid_structsim-b67db4bc74964c59.d: crates/structsim/src/lib.rs crates/structsim/src/element.rs crates/structsim/src/groundmotion.rs crates/structsim/src/integrate.rs crates/structsim/src/linalg.rs crates/structsim/src/material.rs crates/structsim/src/model.rs crates/structsim/src/psd.rs crates/structsim/src/substructure.rs

/root/repo/target/debug/deps/libneesgrid_structsim-b67db4bc74964c59.rlib: crates/structsim/src/lib.rs crates/structsim/src/element.rs crates/structsim/src/groundmotion.rs crates/structsim/src/integrate.rs crates/structsim/src/linalg.rs crates/structsim/src/material.rs crates/structsim/src/model.rs crates/structsim/src/psd.rs crates/structsim/src/substructure.rs

/root/repo/target/debug/deps/libneesgrid_structsim-b67db4bc74964c59.rmeta: crates/structsim/src/lib.rs crates/structsim/src/element.rs crates/structsim/src/groundmotion.rs crates/structsim/src/integrate.rs crates/structsim/src/linalg.rs crates/structsim/src/material.rs crates/structsim/src/model.rs crates/structsim/src/psd.rs crates/structsim/src/substructure.rs

crates/structsim/src/lib.rs:
crates/structsim/src/element.rs:
crates/structsim/src/groundmotion.rs:
crates/structsim/src/integrate.rs:
crates/structsim/src/linalg.rs:
crates/structsim/src/material.rs:
crates/structsim/src/model.rs:
crates/structsim/src/psd.rs:
crates/structsim/src/substructure.rs:
