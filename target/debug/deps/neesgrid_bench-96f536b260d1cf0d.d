/root/repo/target/debug/deps/neesgrid_bench-96f536b260d1cf0d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libneesgrid_bench-96f536b260d1cf0d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libneesgrid_bench-96f536b260d1cf0d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
