/root/repo/target/debug/deps/neesgrid_most-2038570431eeb1fe.d: crates/most/src/lib.rs crates/most/src/config.rs crates/most/src/field_test.rs crates/most/src/frame_model.rs crates/most/src/mini.rs crates/most/src/report.rs crates/most/src/runner.rs crates/most/src/scenarios.rs

/root/repo/target/debug/deps/libneesgrid_most-2038570431eeb1fe.rlib: crates/most/src/lib.rs crates/most/src/config.rs crates/most/src/field_test.rs crates/most/src/frame_model.rs crates/most/src/mini.rs crates/most/src/report.rs crates/most/src/runner.rs crates/most/src/scenarios.rs

/root/repo/target/debug/deps/libneesgrid_most-2038570431eeb1fe.rmeta: crates/most/src/lib.rs crates/most/src/config.rs crates/most/src/field_test.rs crates/most/src/frame_model.rs crates/most/src/mini.rs crates/most/src/report.rs crates/most/src/runner.rs crates/most/src/scenarios.rs

crates/most/src/lib.rs:
crates/most/src/config.rs:
crates/most/src/field_test.rs:
crates/most/src/frame_model.rs:
crates/most/src/mini.rs:
crates/most/src/report.rs:
crates/most/src/runner.rs:
crates/most/src/scenarios.rs:
