/root/repo/target/debug/deps/checkpoint_resume-5e7d69199d380c6a.d: tests/checkpoint_resume.rs

/root/repo/target/debug/deps/checkpoint_resume-5e7d69199d380c6a: tests/checkpoint_resume.rs

tests/checkpoint_resume.rs:
