/root/repo/target/debug/deps/neesgrid_apparatus-236bd9c4b7ce6fa5.d: crates/apparatus/src/lib.rs crates/apparatus/src/actuator.rs crates/apparatus/src/control_system.rs crates/apparatus/src/integration.rs crates/apparatus/src/robot.rs crates/apparatus/src/sensors.rs crates/apparatus/src/specimen.rs crates/apparatus/src/stepper.rs crates/apparatus/src/xpc.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_apparatus-236bd9c4b7ce6fa5.rmeta: crates/apparatus/src/lib.rs crates/apparatus/src/actuator.rs crates/apparatus/src/control_system.rs crates/apparatus/src/integration.rs crates/apparatus/src/robot.rs crates/apparatus/src/sensors.rs crates/apparatus/src/specimen.rs crates/apparatus/src/stepper.rs crates/apparatus/src/xpc.rs Cargo.toml

crates/apparatus/src/lib.rs:
crates/apparatus/src/actuator.rs:
crates/apparatus/src/control_system.rs:
crates/apparatus/src/integration.rs:
crates/apparatus/src/robot.rs:
crates/apparatus/src/sensors.rs:
crates/apparatus/src/specimen.rs:
crates/apparatus/src/stepper.rs:
crates/apparatus/src/xpc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
