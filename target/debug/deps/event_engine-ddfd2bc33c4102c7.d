/root/repo/target/debug/deps/event_engine-ddfd2bc33c4102c7.d: tests/event_engine.rs

/root/repo/target/debug/deps/event_engine-ddfd2bc33c4102c7: tests/event_engine.rs

tests/event_engine.rs:
