/root/repo/target/debug/deps/fault_tolerance_ablation-3d5fbf8a8fb832da.d: tests/fault_tolerance_ablation.rs

/root/repo/target/debug/deps/fault_tolerance_ablation-3d5fbf8a8fb832da: tests/fault_tolerance_ablation.rs

tests/fault_tolerance_ablation.rs:
