/root/repo/target/debug/deps/neesgrid_coordinator-bc75d5a2a006f0b9.d: crates/coordinator/src/lib.rs crates/coordinator/src/builder.rs crates/coordinator/src/coordinator.rs crates/coordinator/src/log.rs crates/coordinator/src/policy.rs crates/coordinator/src/remote.rs

/root/repo/target/debug/deps/neesgrid_coordinator-bc75d5a2a006f0b9: crates/coordinator/src/lib.rs crates/coordinator/src/builder.rs crates/coordinator/src/coordinator.rs crates/coordinator/src/log.rs crates/coordinator/src/policy.rs crates/coordinator/src/remote.rs

crates/coordinator/src/lib.rs:
crates/coordinator/src/builder.rs:
crates/coordinator/src/coordinator.rs:
crates/coordinator/src/log.rs:
crates/coordinator/src/policy.rs:
crates/coordinator/src/remote.rs:
