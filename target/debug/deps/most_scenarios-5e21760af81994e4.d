/root/repo/target/debug/deps/most_scenarios-5e21760af81994e4.d: tests/most_scenarios.rs

/root/repo/target/debug/deps/most_scenarios-5e21760af81994e4: tests/most_scenarios.rs

tests/most_scenarios.rs:
