/root/repo/target/debug/deps/neesgrid-848a7e212526a2fd.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid-848a7e212526a2fd.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
