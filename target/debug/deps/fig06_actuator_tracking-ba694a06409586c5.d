/root/repo/target/debug/deps/fig06_actuator_tracking-ba694a06409586c5.d: crates/bench/benches/fig06_actuator_tracking.rs

/root/repo/target/debug/deps/fig06_actuator_tracking-ba694a06409586c5: crates/bench/benches/fig06_actuator_tracking.rs

crates/bench/benches/fig06_actuator_tracking.rs:
