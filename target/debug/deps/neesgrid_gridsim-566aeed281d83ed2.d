/root/repo/target/debug/deps/neesgrid_gridsim-566aeed281d83ed2.d: crates/gridsim/src/lib.rs crates/gridsim/src/event.rs crates/gridsim/src/fault.rs crates/gridsim/src/latency.rs crates/gridsim/src/message.rs crates/gridsim/src/network.rs crates/gridsim/src/node.rs crates/gridsim/src/stats.rs crates/gridsim/src/time.rs

/root/repo/target/debug/deps/neesgrid_gridsim-566aeed281d83ed2: crates/gridsim/src/lib.rs crates/gridsim/src/event.rs crates/gridsim/src/fault.rs crates/gridsim/src/latency.rs crates/gridsim/src/message.rs crates/gridsim/src/network.rs crates/gridsim/src/node.rs crates/gridsim/src/stats.rs crates/gridsim/src/time.rs

crates/gridsim/src/lib.rs:
crates/gridsim/src/event.rs:
crates/gridsim/src/fault.rs:
crates/gridsim/src/latency.rs:
crates/gridsim/src/message.rs:
crates/gridsim/src/network.rs:
crates/gridsim/src/node.rs:
crates/gridsim/src/stats.rs:
crates/gridsim/src/time.rs:
