/root/repo/target/debug/deps/neesgrid_gridsim-a74f54625a1503b2.d: crates/gridsim/src/lib.rs crates/gridsim/src/event.rs crates/gridsim/src/fault.rs crates/gridsim/src/latency.rs crates/gridsim/src/message.rs crates/gridsim/src/network.rs crates/gridsim/src/node.rs crates/gridsim/src/stats.rs crates/gridsim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_gridsim-a74f54625a1503b2.rmeta: crates/gridsim/src/lib.rs crates/gridsim/src/event.rs crates/gridsim/src/fault.rs crates/gridsim/src/latency.rs crates/gridsim/src/message.rs crates/gridsim/src/network.rs crates/gridsim/src/node.rs crates/gridsim/src/stats.rs crates/gridsim/src/time.rs Cargo.toml

crates/gridsim/src/lib.rs:
crates/gridsim/src/event.rs:
crates/gridsim/src/fault.rs:
crates/gridsim/src/latency.rs:
crates/gridsim/src/message.rs:
crates/gridsim/src/network.rs:
crates/gridsim/src/node.rs:
crates/gridsim/src/stats.rs:
crates/gridsim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
