/root/repo/target/debug/deps/fig05_mspsds_step-83d5d873e30afefb.d: crates/bench/benches/fig05_mspsds_step.rs

/root/repo/target/debug/deps/fig05_mspsds_step-83d5d873e30afefb: crates/bench/benches/fig05_mspsds_step.rs

crates/bench/benches/fig05_mspsds_step.rs:
