/root/repo/target/debug/deps/event_engine-f6bbbd260a757b17.d: tests/event_engine.rs Cargo.toml

/root/repo/target/debug/deps/libevent_engine-f6bbbd260a757b17.rmeta: tests/event_engine.rs Cargo.toml

tests/event_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
