/root/repo/target/debug/deps/neesgrid-698c7a180b21585a.d: src/lib.rs

/root/repo/target/debug/deps/libneesgrid-698c7a180b21585a.rlib: src/lib.rs

/root/repo/target/debug/deps/libneesgrid-698c7a180b21585a.rmeta: src/lib.rs

src/lib.rs:
