/root/repo/target/debug/deps/most_scenarios-0fbbb305b85a1e48.d: tests/most_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libmost_scenarios-0fbbb305b85a1e48.rmeta: tests/most_scenarios.rs Cargo.toml

tests/most_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
