/root/repo/target/debug/deps/neesgrid_bench-32bbe89882a0ee98.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_bench-32bbe89882a0ee98.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
