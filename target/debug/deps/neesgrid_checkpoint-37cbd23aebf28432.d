/root/repo/target/debug/deps/neesgrid_checkpoint-37cbd23aebf28432.d: crates/checkpoint/src/lib.rs crates/checkpoint/src/checkpointer.rs crates/checkpoint/src/policy.rs crates/checkpoint/src/snapshot.rs crates/checkpoint/src/store.rs

/root/repo/target/debug/deps/libneesgrid_checkpoint-37cbd23aebf28432.rlib: crates/checkpoint/src/lib.rs crates/checkpoint/src/checkpointer.rs crates/checkpoint/src/policy.rs crates/checkpoint/src/snapshot.rs crates/checkpoint/src/store.rs

/root/repo/target/debug/deps/libneesgrid_checkpoint-37cbd23aebf28432.rmeta: crates/checkpoint/src/lib.rs crates/checkpoint/src/checkpointer.rs crates/checkpoint/src/policy.rs crates/checkpoint/src/snapshot.rs crates/checkpoint/src/store.rs

crates/checkpoint/src/lib.rs:
crates/checkpoint/src/checkpointer.rs:
crates/checkpoint/src/policy.rs:
crates/checkpoint/src/snapshot.rs:
crates/checkpoint/src/store.rs:
