/root/repo/target/debug/deps/neesgrid_ntcp-eba1771ba26613ee.d: crates/ntcp/src/lib.rs crates/ntcp/src/client.rs crates/ntcp/src/msg.rs crates/ntcp/src/plugin.rs crates/ntcp/src/server.rs crates/ntcp/src/transaction.rs

/root/repo/target/debug/deps/neesgrid_ntcp-eba1771ba26613ee: crates/ntcp/src/lib.rs crates/ntcp/src/client.rs crates/ntcp/src/msg.rs crates/ntcp/src/plugin.rs crates/ntcp/src/server.rs crates/ntcp/src/transaction.rs

crates/ntcp/src/lib.rs:
crates/ntcp/src/client.rs:
crates/ntcp/src/msg.rs:
crates/ntcp/src/plugin.rs:
crates/ntcp/src/server.rs:
crates/ntcp/src/transaction.rs:
