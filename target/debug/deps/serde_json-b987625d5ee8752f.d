/root/repo/target/debug/deps/serde_json-b987625d5ee8752f.d: crates/shims/serde_json/src/lib.rs crates/shims/serde_json/src/parse.rs crates/shims/serde_json/src/print.rs

/root/repo/target/debug/deps/libserde_json-b987625d5ee8752f.rmeta: crates/shims/serde_json/src/lib.rs crates/shims/serde_json/src/parse.rs crates/shims/serde_json/src/print.rs

crates/shims/serde_json/src/lib.rs:
crates/shims/serde_json/src/parse.rs:
crates/shims/serde_json/src/print.rs:
