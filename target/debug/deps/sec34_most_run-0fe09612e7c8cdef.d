/root/repo/target/debug/deps/sec34_most_run-0fe09612e7c8cdef.d: crates/bench/benches/sec34_most_run.rs

/root/repo/target/debug/deps/sec34_most_run-0fe09612e7c8cdef: crates/bench/benches/sec34_most_run.rs

crates/bench/benches/sec34_most_run.rs:
