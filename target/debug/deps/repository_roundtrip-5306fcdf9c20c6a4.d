/root/repo/target/debug/deps/repository_roundtrip-5306fcdf9c20c6a4.d: tests/repository_roundtrip.rs

/root/repo/target/debug/deps/repository_roundtrip-5306fcdf9c20c6a4: tests/repository_roundtrip.rs

tests/repository_roundtrip.rs:
