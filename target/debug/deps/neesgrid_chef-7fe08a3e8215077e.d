/root/repo/target/debug/deps/neesgrid_chef-7fe08a3e8215077e.d: crates/chef/src/lib.rs crates/chef/src/chat.rs crates/chef/src/notebook.rs crates/chef/src/portal.rs crates/chef/src/session.rs crates/chef/src/telepresence.rs crates/chef/src/viewer.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_chef-7fe08a3e8215077e.rmeta: crates/chef/src/lib.rs crates/chef/src/chat.rs crates/chef/src/notebook.rs crates/chef/src/portal.rs crates/chef/src/session.rs crates/chef/src/telepresence.rs crates/chef/src/viewer.rs Cargo.toml

crates/chef/src/lib.rs:
crates/chef/src/chat.rs:
crates/chef/src/notebook.rs:
crates/chef/src/portal.rs:
crates/chef/src/session.rs:
crates/chef/src/telepresence.rs:
crates/chef/src/viewer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
