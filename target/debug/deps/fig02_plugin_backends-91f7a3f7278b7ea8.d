/root/repo/target/debug/deps/fig02_plugin_backends-91f7a3f7278b7ea8.d: crates/bench/benches/fig02_plugin_backends.rs

/root/repo/target/debug/deps/fig02_plugin_backends-91f7a3f7278b7ea8: crates/bench/benches/fig02_plugin_backends.rs

crates/bench/benches/fig02_plugin_backends.rs:
