/root/repo/target/debug/deps/neesgrid_coordinator-a76f9a837f4b8899.d: crates/coordinator/src/lib.rs crates/coordinator/src/builder.rs crates/coordinator/src/coordinator.rs crates/coordinator/src/log.rs crates/coordinator/src/policy.rs crates/coordinator/src/remote.rs

/root/repo/target/debug/deps/libneesgrid_coordinator-a76f9a837f4b8899.rlib: crates/coordinator/src/lib.rs crates/coordinator/src/builder.rs crates/coordinator/src/coordinator.rs crates/coordinator/src/log.rs crates/coordinator/src/policy.rs crates/coordinator/src/remote.rs

/root/repo/target/debug/deps/libneesgrid_coordinator-a76f9a837f4b8899.rmeta: crates/coordinator/src/lib.rs crates/coordinator/src/builder.rs crates/coordinator/src/coordinator.rs crates/coordinator/src/log.rs crates/coordinator/src/policy.rs crates/coordinator/src/remote.rs

crates/coordinator/src/lib.rs:
crates/coordinator/src/builder.rs:
crates/coordinator/src/coordinator.rs:
crates/coordinator/src/log.rs:
crates/coordinator/src/policy.rs:
crates/coordinator/src/remote.rs:
