/root/repo/target/debug/deps/neesgrid-b09d1fd1648ffb51.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid-b09d1fd1648ffb51.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
