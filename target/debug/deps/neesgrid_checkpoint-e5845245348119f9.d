/root/repo/target/debug/deps/neesgrid_checkpoint-e5845245348119f9.d: crates/checkpoint/src/lib.rs crates/checkpoint/src/checkpointer.rs crates/checkpoint/src/policy.rs crates/checkpoint/src/snapshot.rs crates/checkpoint/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_checkpoint-e5845245348119f9.rmeta: crates/checkpoint/src/lib.rs crates/checkpoint/src/checkpointer.rs crates/checkpoint/src/policy.rs crates/checkpoint/src/snapshot.rs crates/checkpoint/src/store.rs Cargo.toml

crates/checkpoint/src/lib.rs:
crates/checkpoint/src/checkpointer.rs:
crates/checkpoint/src/policy.rs:
crates/checkpoint/src/snapshot.rs:
crates/checkpoint/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
