/root/repo/target/debug/deps/neesgrid_gsi-52f8bc4240f24874.d: crates/gsi/src/lib.rs crates/gsi/src/auth.rs crates/gsi/src/cas.rs crates/gsi/src/credential.rs crates/gsi/src/identity.rs crates/gsi/src/policy.rs crates/gsi/src/sim_crypto.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_gsi-52f8bc4240f24874.rmeta: crates/gsi/src/lib.rs crates/gsi/src/auth.rs crates/gsi/src/cas.rs crates/gsi/src/credential.rs crates/gsi/src/identity.rs crates/gsi/src/policy.rs crates/gsi/src/sim_crypto.rs Cargo.toml

crates/gsi/src/lib.rs:
crates/gsi/src/auth.rs:
crates/gsi/src/cas.rs:
crates/gsi/src/credential.rs:
crates/gsi/src/identity.rs:
crates/gsi/src/policy.rs:
crates/gsi/src/sim_crypto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
