/root/repo/target/debug/deps/sec50_realtime_sweep-c2870a387844588c.d: crates/bench/benches/sec50_realtime_sweep.rs

/root/repo/target/debug/deps/sec50_realtime_sweep-c2870a387844588c: crates/bench/benches/sec50_realtime_sweep.rs

crates/bench/benches/sec50_realtime_sweep.rs:
