/root/repo/target/debug/deps/neesgrid_coordinator-3af86eb955d2ee4f.d: crates/coordinator/src/lib.rs crates/coordinator/src/builder.rs crates/coordinator/src/coordinator.rs crates/coordinator/src/log.rs crates/coordinator/src/policy.rs crates/coordinator/src/remote.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_coordinator-3af86eb955d2ee4f.rmeta: crates/coordinator/src/lib.rs crates/coordinator/src/builder.rs crates/coordinator/src/coordinator.rs crates/coordinator/src/log.rs crates/coordinator/src/policy.rs crates/coordinator/src/remote.rs Cargo.toml

crates/coordinator/src/lib.rs:
crates/coordinator/src/builder.rs:
crates/coordinator/src/coordinator.rs:
crates/coordinator/src/log.rs:
crates/coordinator/src/policy.rs:
crates/coordinator/src/remote.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
