/root/repo/target/debug/deps/fig08_dataviewer-03eecbd591ebc11e.d: crates/bench/benches/fig08_dataviewer.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_dataviewer-03eecbd591ebc11e.rmeta: crates/bench/benches/fig08_dataviewer.rs Cargo.toml

crates/bench/benches/fig08_dataviewer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
