/root/repo/target/debug/deps/neesgrid-9cfc8242d4b72e87.d: src/lib.rs

/root/repo/target/debug/deps/neesgrid-9cfc8242d4b72e87: src/lib.rs

src/lib.rs:
