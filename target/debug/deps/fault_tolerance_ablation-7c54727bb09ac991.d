/root/repo/target/debug/deps/fault_tolerance_ablation-7c54727bb09ac991.d: tests/fault_tolerance_ablation.rs

/root/repo/target/debug/deps/fault_tolerance_ablation-7c54727bb09ac991: tests/fault_tolerance_ablation.rs

tests/fault_tolerance_ablation.rs:
