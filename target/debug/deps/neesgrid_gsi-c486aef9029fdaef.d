/root/repo/target/debug/deps/neesgrid_gsi-c486aef9029fdaef.d: crates/gsi/src/lib.rs crates/gsi/src/auth.rs crates/gsi/src/cas.rs crates/gsi/src/credential.rs crates/gsi/src/identity.rs crates/gsi/src/policy.rs crates/gsi/src/sim_crypto.rs

/root/repo/target/debug/deps/libneesgrid_gsi-c486aef9029fdaef.rlib: crates/gsi/src/lib.rs crates/gsi/src/auth.rs crates/gsi/src/cas.rs crates/gsi/src/credential.rs crates/gsi/src/identity.rs crates/gsi/src/policy.rs crates/gsi/src/sim_crypto.rs

/root/repo/target/debug/deps/libneesgrid_gsi-c486aef9029fdaef.rmeta: crates/gsi/src/lib.rs crates/gsi/src/auth.rs crates/gsi/src/cas.rs crates/gsi/src/credential.rs crates/gsi/src/identity.rs crates/gsi/src/policy.rs crates/gsi/src/sim_crypto.rs

crates/gsi/src/lib.rs:
crates/gsi/src/auth.rs:
crates/gsi/src/cas.rs:
crates/gsi/src/credential.rs:
crates/gsi/src/identity.rs:
crates/gsi/src/policy.rs:
crates/gsi/src/sim_crypto.rs:
