/root/repo/target/debug/deps/neesgrid-a3d8eccb59832567.d: src/lib.rs

/root/repo/target/debug/deps/libneesgrid-a3d8eccb59832567.rlib: src/lib.rs

/root/repo/target/debug/deps/libneesgrid-a3d8eccb59832567.rmeta: src/lib.rs

src/lib.rs:
