/root/repo/target/debug/deps/neesgrid_daq-cfb72d8618d80edf.d: crates/daq/src/lib.rs crates/daq/src/channel.rs crates/daq/src/filedrop.rs crates/daq/src/nsds.rs crates/daq/src/sampler.rs crates/daq/src/timeseries.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_daq-cfb72d8618d80edf.rmeta: crates/daq/src/lib.rs crates/daq/src/channel.rs crates/daq/src/filedrop.rs crates/daq/src/nsds.rs crates/daq/src/sampler.rs crates/daq/src/timeseries.rs Cargo.toml

crates/daq/src/lib.rs:
crates/daq/src/channel.rs:
crates/daq/src/filedrop.rs:
crates/daq/src/nsds.rs:
crates/daq/src/sampler.rs:
crates/daq/src/timeseries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
