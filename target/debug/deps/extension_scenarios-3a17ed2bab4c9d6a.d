/root/repo/target/debug/deps/extension_scenarios-3a17ed2bab4c9d6a.d: tests/extension_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libextension_scenarios-3a17ed2bab4c9d6a.rmeta: tests/extension_scenarios.rs Cargo.toml

tests/extension_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
