/root/repo/target/debug/deps/neesgrid_chef-ab98bb6a2d41c616.d: crates/chef/src/lib.rs crates/chef/src/chat.rs crates/chef/src/notebook.rs crates/chef/src/portal.rs crates/chef/src/session.rs crates/chef/src/telepresence.rs crates/chef/src/viewer.rs

/root/repo/target/debug/deps/libneesgrid_chef-ab98bb6a2d41c616.rlib: crates/chef/src/lib.rs crates/chef/src/chat.rs crates/chef/src/notebook.rs crates/chef/src/portal.rs crates/chef/src/session.rs crates/chef/src/telepresence.rs crates/chef/src/viewer.rs

/root/repo/target/debug/deps/libneesgrid_chef-ab98bb6a2d41c616.rmeta: crates/chef/src/lib.rs crates/chef/src/chat.rs crates/chef/src/notebook.rs crates/chef/src/portal.rs crates/chef/src/session.rs crates/chef/src/telepresence.rs crates/chef/src/viewer.rs

crates/chef/src/lib.rs:
crates/chef/src/chat.rs:
crates/chef/src/notebook.rs:
crates/chef/src/portal.rs:
crates/chef/src/session.rs:
crates/chef/src/telepresence.rs:
crates/chef/src/viewer.rs:
