/root/repo/target/debug/deps/sec51_n_site_scaling-77964f69c62fdace.d: crates/bench/benches/sec51_n_site_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libsec51_n_site_scaling-77964f69c62fdace.rmeta: crates/bench/benches/sec51_n_site_scaling.rs Cargo.toml

crates/bench/benches/sec51_n_site_scaling.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
