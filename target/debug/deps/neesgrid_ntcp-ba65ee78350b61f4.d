/root/repo/target/debug/deps/neesgrid_ntcp-ba65ee78350b61f4.d: crates/ntcp/src/lib.rs crates/ntcp/src/client.rs crates/ntcp/src/msg.rs crates/ntcp/src/plugin.rs crates/ntcp/src/server.rs crates/ntcp/src/transaction.rs Cargo.toml

/root/repo/target/debug/deps/libneesgrid_ntcp-ba65ee78350b61f4.rmeta: crates/ntcp/src/lib.rs crates/ntcp/src/client.rs crates/ntcp/src/msg.rs crates/ntcp/src/plugin.rs crates/ntcp/src/server.rs crates/ntcp/src/transaction.rs Cargo.toml

crates/ntcp/src/lib.rs:
crates/ntcp/src/client.rs:
crates/ntcp/src/msg.rs:
crates/ntcp/src/plugin.rs:
crates/ntcp/src/server.rs:
crates/ntcp/src/transaction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
