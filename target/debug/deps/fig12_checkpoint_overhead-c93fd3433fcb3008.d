/root/repo/target/debug/deps/fig12_checkpoint_overhead-c93fd3433fcb3008.d: crates/bench/benches/fig12_checkpoint_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_checkpoint_overhead-c93fd3433fcb3008.rmeta: crates/bench/benches/fig12_checkpoint_overhead.rs Cargo.toml

crates/bench/benches/fig12_checkpoint_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
