/root/repo/target/debug/examples/soil_structure-c226be3b60651bce.d: examples/soil_structure.rs Cargo.toml

/root/repo/target/debug/examples/libsoil_structure-c226be3b60651bce.rmeta: examples/soil_structure.rs Cargo.toml

examples/soil_structure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
