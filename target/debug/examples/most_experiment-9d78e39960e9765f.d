/root/repo/target/debug/examples/most_experiment-9d78e39960e9765f.d: examples/most_experiment.rs Cargo.toml

/root/repo/target/debug/examples/libmost_experiment-9d78e39960e9765f.rmeta: examples/most_experiment.rs Cargo.toml

examples/most_experiment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
