/root/repo/target/debug/examples/quickstart-bc4410b03779ff40.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bc4410b03779ff40: examples/quickstart.rs

examples/quickstart.rs:
