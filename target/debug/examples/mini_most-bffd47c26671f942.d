/root/repo/target/debug/examples/mini_most-bffd47c26671f942.d: examples/mini_most.rs Cargo.toml

/root/repo/target/debug/examples/libmini_most-bffd47c26671f942.rmeta: examples/mini_most.rs Cargo.toml

examples/mini_most.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
