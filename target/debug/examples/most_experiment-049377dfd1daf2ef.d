/root/repo/target/debug/examples/most_experiment-049377dfd1daf2ef.d: examples/most_experiment.rs

/root/repo/target/debug/examples/most_experiment-049377dfd1daf2ef: examples/most_experiment.rs

examples/most_experiment.rs:
