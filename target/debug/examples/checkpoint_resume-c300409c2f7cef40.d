/root/repo/target/debug/examples/checkpoint_resume-c300409c2f7cef40.d: examples/checkpoint_resume.rs Cargo.toml

/root/repo/target/debug/examples/libcheckpoint_resume-c300409c2f7cef40.rmeta: examples/checkpoint_resume.rs Cargo.toml

examples/checkpoint_resume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
