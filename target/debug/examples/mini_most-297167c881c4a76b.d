/root/repo/target/debug/examples/mini_most-297167c881c4a76b.d: examples/mini_most.rs

/root/repo/target/debug/examples/mini_most-297167c881c4a76b: examples/mini_most.rs

examples/mini_most.rs:
