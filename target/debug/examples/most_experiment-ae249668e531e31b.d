/root/repo/target/debug/examples/most_experiment-ae249668e531e31b.d: examples/most_experiment.rs

/root/repo/target/debug/examples/most_experiment-ae249668e531e31b: examples/most_experiment.rs

examples/most_experiment.rs:
