/root/repo/target/debug/examples/soil_structure-c15a65208cb8d303.d: examples/soil_structure.rs

/root/repo/target/debug/examples/soil_structure-c15a65208cb8d303: examples/soil_structure.rs

examples/soil_structure.rs:
