/root/repo/target/debug/examples/field_test-dd0d89d90b224358.d: examples/field_test.rs

/root/repo/target/debug/examples/field_test-dd0d89d90b224358: examples/field_test.rs

examples/field_test.rs:
