/root/repo/target/debug/examples/soil_structure-6c0d0b1c019df8bf.d: examples/soil_structure.rs

/root/repo/target/debug/examples/soil_structure-6c0d0b1c019df8bf: examples/soil_structure.rs

examples/soil_structure.rs:
