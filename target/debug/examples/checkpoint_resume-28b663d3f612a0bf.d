/root/repo/target/debug/examples/checkpoint_resume-28b663d3f612a0bf.d: examples/checkpoint_resume.rs

/root/repo/target/debug/examples/checkpoint_resume-28b663d3f612a0bf: examples/checkpoint_resume.rs

examples/checkpoint_resume.rs:
