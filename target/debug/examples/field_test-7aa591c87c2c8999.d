/root/repo/target/debug/examples/field_test-7aa591c87c2c8999.d: examples/field_test.rs Cargo.toml

/root/repo/target/debug/examples/libfield_test-7aa591c87c2c8999.rmeta: examples/field_test.rs Cargo.toml

examples/field_test.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
