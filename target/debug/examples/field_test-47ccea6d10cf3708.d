/root/repo/target/debug/examples/field_test-47ccea6d10cf3708.d: examples/field_test.rs

/root/repo/target/debug/examples/field_test-47ccea6d10cf3708: examples/field_test.rs

examples/field_test.rs:
