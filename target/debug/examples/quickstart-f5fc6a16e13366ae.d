/root/repo/target/debug/examples/quickstart-f5fc6a16e13366ae.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-f5fc6a16e13366ae.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
