/root/repo/target/debug/examples/mini_most-5801e5f7c32f66ef.d: examples/mini_most.rs

/root/repo/target/debug/examples/mini_most-5801e5f7c32f66ef: examples/mini_most.rs

examples/mini_most.rs:
