/root/repo/target/debug/examples/quickstart-b6206d65b9d89536.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b6206d65b9d89536: examples/quickstart.rs

examples/quickstart.rs:
