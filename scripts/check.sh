#!/usr/bin/env bash
# Full verification gate: tier-1 (build + tests) plus formatting and lints.
#
#   scripts/check.sh          # everything
#   scripts/check.sh --quick  # lints + debug tests only (skip release build)
#
# Tier-1 (ROADMAP.md) is `cargo build --release && cargo test -q`; this
# script is a superset and is what a PR should pass before merging.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $quick -eq 0 ]]; then
    echo "==> cargo build --release (tier-1)"
    cargo build --release

    echo "==> analyzer lint (workspace invariants + baseline ratchet)"
    # Prints the violation-count summary line used for trend tracking; the
    # committed baseline fails the gate on any new violation or new pragma.
    cargo run -q --release -p neesgrid-analyzer -- lint --baseline analyzer-baseline.json

    echo "==> analyzer check-ntcp (exhaustive schedule checker)"
    cargo run -q --release -p neesgrid-analyzer -- check-ntcp

    echo "==> analyzer check-portal (exhaustive scheduler checker)"
    cargo run -q --release -p neesgrid-analyzer -- check-portal
else
    # The whole --quick analyzer stage (lint + both checkers at reduced
    # budgets) carries a 10-second wall-clock budget so it stays a
    # pre-commit-friendly gate. The binary is built outside the window.
    cargo build -q -p neesgrid-analyzer
    analyzer_started=$(date +%s)

    echo "==> analyzer lint (workspace invariants + baseline ratchet)"
    ./target/debug/neesgrid-analyzer lint --baseline analyzer-baseline.json

    echo "==> analyzer check-ntcp (reduced budgets for --quick)"
    ./target/debug/neesgrid-analyzer check-ntcp --dup-budget 1 --drop-budget 1

    echo "==> analyzer check-portal (reduced budgets for --quick)"
    ./target/debug/neesgrid-analyzer check-portal --submissions 3 --steps 2 \
        --kill-budget 1 --cancel-budget 1

    analyzer_elapsed=$(( $(date +%s) - analyzer_started ))
    if (( analyzer_elapsed > 10 )); then
        echo "analyzer --quick stage took ${analyzer_elapsed}s (budget 10s)" >&2
        exit 1
    fi
    echo "==> analyzer --quick stage done in ${analyzer_elapsed}s (budget 10s)"

    echo "==> N=8 event-engine smoke (determinism + virtual-time retries)"
    cargo test -q --test event_engine

    echo "==> trace-determinism smoke (same-seed byte-identical telemetry)"
    cargo test -q --test telemetry_trace same_seed

    echo "==> portal smoke (wire API, crash recovery, tenant isolation)"
    cargo test -q --test portal_service

    echo "==> archive smoke (striped resume, replica failover, artifact fetch)"
    cargo test -q --test archive_transfer

    # Small grid (2 scenarios × few seeds) through the portal: dedup,
    # corpus digests, and same-seed byte-identity in well under 10s.
    echo "==> campaign smoke (DSL sweep, signature dedup, corpus determinism)"
    cargo test -q --test campaign_engine same_seed_sweep_is_byte_identical
    cargo test -q --test campaign_engine seeded_duplicate_failures_collapse_to_one_signature
fi

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo build --benches (harness compiles)"
cargo build --workspace --benches

echo "All checks passed."
