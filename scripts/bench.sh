#!/usr/bin/env bash
# Benchmark gate: the MOST run benchmarks, the N-site scaling sweep, and
# the multi-tenant portal load run.
#
#   scripts/bench.sh            # sec34 MOST + sec51 scaling + portal_load
#   scripts/bench.sh --all      # every bench target in the harness
#
# sec51 writes steps/second for N = 3, 8, 16, 64 to BENCH_scaling.json at
# the repo root (and asserts 64-site double-run determinism); portal_load
# drives 10,000 tenants through the portal service and writes
# experiments/sec + p99 submission→first-step latency to BENCH_portal.json
# (asserting zero cross-tenant leaks). archive_ingest replicates striped
# captures while the 64-site run shares the engine and writes ingest
# throughput + dedup counts to BENCH_archive.json (asserting the MOST
# history stays bit-identical). campaign_sweep expands a 240-cell DSL
# scenario matrix through the portal and writes runs/sec, unique failure
# signatures, and the corpus dedup ratio to BENCH_campaign.json
# (asserting a same-seed re-sweep is byte-identical). The analyzer stage
# records both exhaustive checkers' schedule counts and wall time to
# BENCH_analyzer.json.

set -euo pipefail
cd "$(dirname "$0")/.."

all=0
[[ "${1:-}" == "--all" ]] && all=1

echo "==> sec34_most_run (§3.4 scenarios)"
cargo bench -p neesgrid-bench --bench sec34_most_run

echo "==> sec51_n_site_scaling (N = 3, 8, 16, 64 → BENCH_scaling.json)"
cargo bench -p neesgrid-bench --bench sec51_n_site_scaling

echo "==> portal_load (10k tenants → BENCH_portal.json)"
cargo bench -p neesgrid-bench --bench portal_load

echo "==> archive_ingest (striped ingest under 64-site load → BENCH_archive.json)"
cargo bench -p neesgrid-bench --bench archive_ingest

echo "==> campaign_sweep (240-cell scenario matrix → BENCH_campaign.json)"
cargo bench -p neesgrid-bench --bench campaign_sweep

echo "==> analyzer checkers (schedule counts → BENCH_analyzer.json)"
cargo run -q --release -p neesgrid-analyzer -- bench --out BENCH_analyzer.json

if [[ $all -eq 1 ]]; then
    echo "==> full bench suite"
    cargo bench -p neesgrid-bench
fi

echo "Benchmarks done."
