//! # neesgrid — umbrella crate
//!
//! A Rust reproduction of the NEESgrid distributed hybrid earthquake-
//! engineering experiment framework described in *"Distributed Hybrid
//! Earthquake Engineering Experiments: Experiences with a Ground-Shaking
//! Grid Application"* (Pearlman et al., HPDC-13, 2004).
//!
//! This crate re-exports every subsystem crate under one roof so examples,
//! integration tests, and downstream users can depend on a single package:
//!
//! * [`gridsim`] — virtual WAN, virtual time, deterministic fault injection
//! * [`gsi`] — simulated Grid Security Infrastructure + community authz
//! * [`ogsi`] — OGSI-style grid-service container (SDEs, soft state)
//! * [`ntcp`] — the NEESgrid Teleoperation Control Protocol (the paper's
//!   primary contribution)
//! * [`structsim`] — structural dynamics, pseudo-dynamic substructure testing
//! * [`apparatus`] — emulated servo-hydraulic rigs, sensors, specimens
//! * [`daq`] — data acquisition + NSDS streaming
//! * [`repo`] — NMDS metadata, NFMS file management, GridFTP-sim, ingestion
//! * [`archive`] — content-addressed experiment archive: dedup block
//!   store, striped virtual-link transfers, replica placement & failover
//! * [`coordinator`] — the MS-PSDS simulation coordinator
//! * [`checkpoint`] — checkpoint & resume: checksummed snapshots so a run
//!   killed mid-experiment (the step-1493 failure) restarts and finishes
//! * [`portal`] — the multi-tenant experiment service: wire API,
//!   admission control + quotas, worker-pool scheduling, streaming
//!   observers, and checkpoint-based crash recovery
//! * [`chef`] — collaboration portal client (chat, notebook, data
//!   viewer, cameras) speaking the portal wire API
//! * [`most`] — the MOST and Mini-MOST experiments end-to-end
//! * [`telemetry`] — virtual-time tracing, metrics, and the flight
//!   recorder whose post-mortem dump explains failures like step 1493
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for a minimal hybrid experiment: one NTCP
//! server with a simulation plugin, driven through propose/execute/cancel.

pub use neesgrid_apparatus as apparatus;
pub use neesgrid_archive as archive;
pub use neesgrid_campaign as campaign;
pub use neesgrid_checkpoint as checkpoint;
pub use neesgrid_chef as chef;
pub use neesgrid_coordinator as coordinator;
pub use neesgrid_daq as daq;
pub use neesgrid_gridsim as gridsim;
pub use neesgrid_gsi as gsi;
pub use neesgrid_most as most;
pub use neesgrid_ntcp as ntcp;
pub use neesgrid_ogsi as ogsi;
pub use neesgrid_portal as portal;
pub use neesgrid_repo as repo;
pub use neesgrid_structsim as structsim;
pub use neesgrid_telemetry as telemetry;
